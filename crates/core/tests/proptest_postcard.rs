//! Property-based tests of the Postcard optimizer on randomized instances.
//!
//! The optimizer's arithmetic is never trusted: every produced plan is
//! re-validated against the paper's constraints by `postcard-net`'s
//! independent checker, and cost claims are verified against recomputed
//! ledgers and dominance relations.

use postcard_core::{
    build_structural_postcard_problem, solve_postcard, solve_postcard_warm_with,
    solve_postcard_with, DeltaFormulation, PostcardConfig, PostcardError,
};
use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random complete network + batch with generous capacity (always
/// feasible: every file can trickle over its direct link).
fn instance(seed: u64, num_dcs: usize, num_files: usize) -> (Network, Vec<TransferRequest>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = Network::complete_with_prices(num_dcs, 500.0, |_, _| rng.gen_range(1.0..=10.0));
    let files = (0..num_files)
        .map(|k| {
            let src = rng.gen_range(0..num_dcs);
            let mut dst = rng.gen_range(0..num_dcs);
            while dst == src {
                dst = rng.gen_range(0..num_dcs);
            }
            TransferRequest::new(
                FileId(k as u64),
                DcId(src),
                DcId(dst),
                rng.gen_range(5.0..=80.0),
                rng.gen_range(1..=4),
                0,
            )
        })
        .collect();
    (network, files)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every optimal plan satisfies all of Eqs. (7)–(10).
    #[test]
    fn plans_are_always_valid(seed in 0u64..5000, nf in 1usize..5, nd in 3usize..6) {
        let (network, files) = instance(seed, nd, nf);
        let ledger = TrafficLedger::new(nd);
        let sol = solve_postcard(&network, &files, &ledger).expect("generous capacity");
        let violations = sol.plan.validate(&network, &files, |_, _, _| 0.0);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// The claimed objective equals the recomputed bill after committing.
    #[test]
    fn claimed_cost_matches_committed_ledger(seed in 0u64..5000, nf in 1usize..4) {
        let (network, files) = instance(seed, 4, nf);
        let ledger = TrafficLedger::new(4);
        let sol = solve_postcard(&network, &files, &ledger).expect("generous capacity");
        let mut after = ledger.clone();
        sol.plan.apply_to_ledger(&mut after);
        let bill = after.cost_per_slot(&network);
        prop_assert!(
            (bill - sol.cost_per_slot).abs() < 1e-5 * (1.0 + bill),
            "claimed {} vs recomputed {}",
            sol.cost_per_slot,
            bill
        );
    }

    /// Adding a file never lowers the bill (monotonicity in load).
    #[test]
    fn cost_is_monotone_in_files(seed in 0u64..5000) {
        let (network, files) = instance(seed, 4, 3);
        let ledger = TrafficLedger::new(4);
        let all = solve_postcard(&network, &files, &ledger).expect("feasible").cost_per_slot;
        let fewer =
            solve_postcard(&network, &files[..2], &ledger).expect("feasible").cost_per_slot;
        prop_assert!(fewer <= all + 1e-6, "fewer files cost more: {fewer} vs {all}");
    }

    /// Scaling all file sizes by λ ∈ (0, 1] scales the optimal bill by
    /// exactly λ (the LP is homogeneous when starting from an empty ledger).
    #[test]
    fn cost_scales_linearly_with_sizes(seed in 0u64..5000, lambda in 0.1f64..1.0) {
        let (network, files) = instance(seed, 4, 2);
        let ledger = TrafficLedger::new(4);
        let base = solve_postcard(&network, &files, &ledger).expect("feasible").cost_per_slot;
        let scaled_files: Vec<TransferRequest> = files
            .iter()
            .map(|f| TransferRequest::new(f.id, f.src, f.dst, f.size_gb * lambda, f.deadline_slots, f.release_slot))
            .collect();
        let scaled =
            solve_postcard(&network, &scaled_files, &ledger).expect("feasible").cost_per_slot;
        prop_assert!(
            (scaled - lambda * base).abs() < 1e-4 * (1.0 + base),
            "λ = {lambda}: {scaled} vs {}",
            lambda * base
        );
    }

    /// Relay storage can only help: the ablated solver is never cheaper.
    #[test]
    fn relay_storage_never_hurts(seed in 0u64..5000, nf in 1usize..4) {
        let (network, files) = instance(seed, 4, nf);
        let ledger = TrafficLedger::new(4);
        let full = solve_postcard(&network, &files, &ledger).expect("feasible").cost_per_slot;
        let cfg = PostcardConfig { allow_relay_storage: false, ..Default::default() };
        let ablated = solve_postcard_with(&network, &files, &ledger, &cfg)
            .expect("direct trickle remains feasible")
            .cost_per_slot;
        prop_assert!(full <= ablated + 1e-6, "full {full} > ablated {ablated}");
    }

    /// Warm-starting from the basis of a *perturbed* sibling problem (same
    /// shape, resized files, shifted release slot) must reproduce the cold
    /// objective exactly: the warm path may only change how many pivots the
    /// solver spends, never where it lands.
    #[test]
    fn warm_start_from_perturbed_basis_matches_cold_objective(
        seed in 0u64..5000,
        nf in 1usize..5,
        scale in 0.7f64..1.4,
    ) {
        let (network, files) = instance(seed, 4, nf);
        let ledger = TrafficLedger::new(4);
        let cfg = PostcardConfig::default();
        let donor = solve_postcard_with(&network, &files, &ledger, &cfg)
            .expect("generous capacity");
        let shifted: Vec<TransferRequest> = files
            .iter()
            .map(|f| TransferRequest::new(
                f.id, f.src, f.dst, f.size_gb * scale, f.deadline_slots, f.release_slot + 1,
            ))
            .collect();
        let cold = solve_postcard_with(&network, &shifted, &ledger, &cfg).expect("feasible");
        let warm =
            solve_postcard_warm_with(&network, &shifted, &ledger, &cfg, donor.basis.as_ref())
                .expect("feasible");
        prop_assert!(
            (warm.cost_per_slot - cold.cost_per_slot).abs() < 1e-6 * (1.0 + cold.cost_per_slot),
            "warm {} vs cold {}",
            warm.cost_per_slot,
            cold.cost_per_slot
        );
        let violations = warm.plan.validate(&network, &shifted, |_, _, _| 0.0);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// A standing `DeltaFormulation` advanced across K same-shaped slots
    /// must hold a model that is index-for-index identical — variable
    /// bounds, constraint relations, coefficients, and right-hand sides —
    /// to a structural build assembled from scratch for the final slot's
    /// batch and ledger. Exact bit equality: the delta path may not drift.
    #[test]
    fn standing_model_after_k_advances_equals_scratch_build(
        seed in 0u64..2000,
        k in 2usize..6,
        nd in 3usize..5,
    ) {
        let (network, files) = instance(seed, nd, 2);
        let cfg = PostcardConfig::default();
        let mut delta = DeltaFormulation::new(cfg.clone());
        let mut ledger = TrafficLedger::new(64);
        let mut final_state = None;
        for slot in 0..k as u64 {
            let batch: Vec<TransferRequest> = files
                .iter()
                .map(|f| TransferRequest::new(
                    FileId(f.id.0 + 100 * slot),
                    f.src,
                    f.dst,
                    f.size_gb,
                    f.deadline_slots,
                    slot,
                ))
                .collect();
            let before = ledger.clone();
            let sol = delta.solve(&network, &batch, &before).expect("generous capacity");
            sol.plan.apply_to_ledger(&mut ledger);
            final_state = Some((batch, before));
        }
        prop_assert_eq!(delta.rebuilds(), 1);
        prop_assert_eq!(delta.delta_hits(), k as u64 - 1);
        let (batch, before) = final_state.unwrap();
        let (scratch, _) =
            build_structural_postcard_problem(&network, &batch, &before, &cfg).unwrap();
        let standing = delta.standing_problem().unwrap();
        let (sm, fm) = (&standing.model, &scratch.model);
        prop_assert_eq!(sm.num_vars(), fm.num_vars());
        prop_assert_eq!(sm.num_constraints(), fm.num_constraints());
        for v in sm.variables() {
            let (slo, shi) = sm.bounds(v);
            let (flo, fhi) = fm.bounds(v);
            prop_assert_eq!(slo.to_bits(), flo.to_bits(), "lower bound of {}", fm.var_name(v));
            prop_assert_eq!(shi.to_bits(), fhi.to_bits(), "upper bound of {}", fm.var_name(v));
        }
        for ((_, sc), (_, fc)) in sm.constraints().zip(fm.constraints()) {
            prop_assert_eq!(sc.relation(), fc.relation());
            prop_assert_eq!(sc.rhs().to_bits(), fc.rhs().to_bits(), "rhs {} vs {}", sc.rhs(), fc.rhs());
            let sterms: Vec<(usize, u64)> =
                sc.expr().iter().map(|(v, c)| (v.index(), c.to_bits())).collect();
            let fterms: Vec<(usize, u64)> =
                fc.expr().iter().map(|(v, c)| (v.index(), c.to_bits())).collect();
            prop_assert_eq!(sterms, fterms);
        }
        let sobj: Vec<(usize, u64)> =
            sm.objective_expr().iter().map(|(v, c)| (v.index(), c.to_bits())).collect();
        let fobj: Vec<(usize, u64)> =
            fm.objective_expr().iter().map(|(v, c)| (v.index(), c.to_bits())).collect();
        prop_assert_eq!(sobj, fobj);
    }

    /// Uniform price scaling scales the optimum and preserves the plan's
    /// feasibility.
    #[test]
    fn price_scaling_invariance(seed in 0u64..5000, mu in 0.5f64..4.0) {
        let (network, files) = instance(seed, 4, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let scaled_net = Network::complete_with_prices(4, 500.0, |_, _| {
            mu * rng.gen_range(1.0..=10.0)
        });
        let ledger = TrafficLedger::new(4);
        let base = solve_postcard(&network, &files, &ledger).expect("feasible").cost_per_slot;
        let scaled =
            solve_postcard(&scaled_net, &files, &ledger).expect("feasible").cost_per_slot;
        prop_assert!(
            (scaled - mu * base).abs() < 1e-4 * (1.0 + scaled.abs()),
            "μ = {mu}: {scaled} vs {}",
            mu * base
        );
    }
}

/// An infeasible instance (deadline 1, capacity below size, no alternative
/// route wide enough) errors rather than returning a bogus plan.
#[test]
fn structurally_infeasible_instances_error() {
    let network = Network::complete(2, 1.0, 5.0);
    let file = TransferRequest::new(FileId(0), DcId(0), DcId(1), 50.0, 1, 0);
    let ledger = TrafficLedger::new(2);
    assert_eq!(solve_postcard(&network, &[file], &ledger).unwrap_err(), PostcardError::Infeasible);
}
