//! The online controller (paper Sec. III).
//!
//! Inter-datacenter traffic cannot be predicted more than seconds ahead, so
//! Postcard runs *online*: at each slot `t` the files released at `t` are
//! scheduled given full knowledge of all earlier decisions — which live in
//! the [`TrafficLedger`] as committed per-slot volumes (including volumes
//! committed into *future* slots by earlier plans).
//!
//! The controller also implements **admission control**: schedulers are
//! all-or-nothing per batch, so when a whole batch is infeasible the
//! controller retries file-by-file (in arrival order) and rejects only the
//! files that genuinely do not fit. The paper assumes feasible workloads and
//! does not discuss admission; rejections are surfaced in [`StepReport`] so
//! experiments can verify they are rare and identical across approaches or
//! account for them.

use crate::error::PostcardError;
use crate::scheduler::{Decision, Scheduler};
use postcard_net::{FileId, Network, TrafficLedger, TransferRequest};
use serde::{Deserialize, Serialize};

/// What happened in one controller step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The slot that was scheduled.
    pub slot: u64,
    /// Files fully admitted and committed.
    pub accepted: Vec<FileId>,
    /// Files rejected (no feasible service even alone).
    pub rejected: Vec<FileId>,
    /// The provider's bill per slot (Σ a_ij · X_ij) after this step.
    pub cost_per_slot: f64,
}

/// The complete mutable state of an [`OnlineController`], detached from its
/// scheduler and network so service runtimes can checkpoint and restore it.
///
/// The decision log is deliberately excluded: it is a CLI export aid, can
/// be arbitrarily large, and a restored controller continues with an empty
/// log without affecting any scheduling decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Committed per-slot volumes and running peaks.
    pub ledger: TrafficLedger,
    /// Bill per slot after every step taken so far.
    pub cost_history: Vec<f64>,
    /// Files admitted so far.
    pub total_accepted: usize,
    /// Files rejected so far.
    pub total_rejected: usize,
    /// Volume admitted so far (GB).
    pub accepted_volume: f64,
    /// Volume rejected so far (GB).
    pub rejected_volume: f64,
}

/// Drives a [`Scheduler`] slot by slot, maintaining the committed ledger.
#[derive(Debug)]
pub struct OnlineController<S> {
    scheduler: S,
    network: Network,
    ledger: TrafficLedger,
    cost_history: Vec<f64>,
    total_accepted: usize,
    total_rejected: usize,
    accepted_volume: f64,
    rejected_volume: f64,
    keep_decisions: bool,
    decisions: Vec<(u64, Decision)>,
}

impl<S: Scheduler> OnlineController<S> {
    /// Creates a controller over `network` with an empty ledger.
    pub fn new(network: Network, scheduler: S) -> Self {
        let ledger = TrafficLedger::new(network.num_dcs());
        Self {
            scheduler,
            network,
            ledger,
            cost_history: Vec::new(),
            total_accepted: 0,
            total_rejected: 0,
            accepted_volume: 0.0,
            rejected_volume: 0.0,
            keep_decisions: false,
            decisions: Vec::new(),
        }
    }

    /// Enables the decision log: every committed [`Decision`] is retained
    /// and can be read back with [`OnlineController::decisions`] (used by
    /// the CLI to export plans).
    pub fn with_decision_log(mut self) -> Self {
        self.keep_decisions = true;
        self
    }

    /// The committed decisions per slot (empty unless
    /// [`OnlineController::with_decision_log`] was used).
    pub fn decisions(&self) -> &[(u64, Decision)] {
        &self.decisions
    }

    /// The scheduler's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// The scheduler itself (e.g. to read its [`crate::SolveStats`]).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the scheduler (e.g. to re-arm fault injection).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// The committed traffic so far.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// The network being controlled.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network (service runtimes apply link
    /// degradations here).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Snapshots the controller's complete mutable state (see
    /// [`ControllerState`] for what is excluded).
    pub fn export_state(&self) -> ControllerState {
        ControllerState {
            ledger: self.ledger.clone(),
            cost_history: self.cost_history.clone(),
            total_accepted: self.total_accepted,
            total_rejected: self.total_rejected,
            accepted_volume: self.accepted_volume,
            rejected_volume: self.rejected_volume,
        }
    }

    /// Rebuilds a controller from a snapshotted state, a network, and a
    /// scheduler. Stepping the result continues exactly where
    /// [`OnlineController::export_state`] left off (the decision log starts
    /// empty).
    pub fn from_state(network: Network, scheduler: S, state: ControllerState) -> Self {
        Self {
            scheduler,
            network,
            ledger: state.ledger,
            cost_history: state.cost_history,
            total_accepted: state.total_accepted,
            total_rejected: state.total_rejected,
            accepted_volume: state.accepted_volume,
            rejected_volume: state.rejected_volume,
            keep_decisions: false,
            decisions: Vec::new(),
        }
    }

    /// Bill per slot after the most recent step (0 before any step).
    pub fn cost_per_slot(&self) -> f64 {
        self.cost_history.last().copied().unwrap_or(0.0)
    }

    /// Bill per slot after every step so far.
    pub fn cost_history(&self) -> &[f64] {
        &self.cost_history
    }

    /// `(accepted, rejected)` file counts so far.
    pub fn admission_counts(&self) -> (usize, usize) {
        (self.total_accepted, self.total_rejected)
    }

    /// `(accepted, rejected)` volumes in GB so far.
    pub fn admission_volumes(&self) -> (f64, f64) {
        (self.accepted_volume, self.rejected_volume)
    }

    /// Schedules the batch of files released at `slot` and commits the
    /// decision.
    ///
    /// # Errors
    ///
    /// Propagates non-[`PostcardError::Infeasible`] scheduler errors
    /// (infeasibility is handled by per-file admission instead).
    ///
    /// # Panics
    ///
    /// Panics if a file's release slot differs from `slot` — batches must be
    /// formed per slot.
    pub fn step(
        &mut self,
        slot: u64,
        files: &[TransferRequest],
    ) -> Result<StepReport, PostcardError> {
        for f in files {
            assert_eq!(f.release_slot, slot, "batch must contain only slot-{slot} releases");
        }
        let mut accepted = Vec::new();
        let mut rejected = Vec::new();

        match self.scheduler.schedule(&self.network, files, &self.ledger) {
            Ok(decision) => {
                self.commit(&decision, files);
                if self.keep_decisions {
                    self.decisions.push((slot, decision));
                }
                accepted.extend(files.iter().map(|f| f.id));
            }
            Err(PostcardError::Infeasible) => {
                // Per-file admission in arrival order.
                for f in files {
                    let batch = [*f];
                    match self.scheduler.schedule(&self.network, &batch, &self.ledger) {
                        Ok(decision) => {
                            self.commit(&decision, &batch);
                            if self.keep_decisions {
                                self.decisions.push((slot, decision));
                            }
                            accepted.push(f.id);
                        }
                        Err(PostcardError::Infeasible) => rejected.push(f.id),
                        Err(e) => return Err(e),
                    }
                }
            }
            Err(e) => return Err(e),
        }

        self.total_accepted += accepted.len();
        self.total_rejected += rejected.len();
        for f in files {
            if accepted.contains(&f.id) {
                self.accepted_volume += f.size_gb;
            } else {
                self.rejected_volume += f.size_gb;
            }
        }
        let cost = self.ledger.cost_per_slot(&self.network);
        self.cost_history.push(cost);
        Ok(StepReport { slot, accepted, rejected, cost_per_slot: cost })
    }

    /// Commits externally reconciled per-shard decisions as this slot's
    /// single controller step.
    ///
    /// The sharded runtime solves per-shard subproblems in parallel and
    /// merges them *outside* the controller (validating each decision
    /// against the growing central ledger); this entry point applies the
    /// merged result — decisions in their fixed reconciliation order — and
    /// updates the cost history and admission accounting exactly like
    /// [`OnlineController::step`] does, so a sharded slot and an unsharded
    /// slot leave identical controller state shapes behind.
    ///
    /// Every decision is debug-validated against the ledger state in front
    /// of it, which re-checks the reconciler's ordering: a decision that
    /// over-commits a link on top of an earlier shard's traffic fails the
    /// assertion in debug builds.
    pub fn commit_reconciled(
        &mut self,
        slot: u64,
        commits: &[(Vec<TransferRequest>, Decision)],
        accepted: Vec<FileId>,
        rejected: Vec<FileId>,
        accepted_volume: f64,
        rejected_volume: f64,
    ) -> StepReport {
        for (files, decision) in commits {
            self.commit(decision, files);
            if self.keep_decisions {
                self.decisions.push((slot, decision.clone()));
            }
        }
        self.total_accepted += accepted.len();
        self.total_rejected += rejected.len();
        self.accepted_volume += accepted_volume;
        self.rejected_volume += rejected_volume;
        let cost = self.ledger.cost_per_slot(&self.network);
        self.cost_history.push(cost);
        StepReport { slot, accepted, rejected, cost_per_slot: cost }
    }

    fn commit(&mut self, decision: &Decision, files: &[TransferRequest]) {
        match decision {
            Decision::Plan(plan) => {
                debug_assert!(
                    {
                        let ledger = &self.ledger;
                        let network = &self.network;
                        plan.validate(network, files, |i, j, s| ledger.volume(i, j, s)).is_empty()
                    },
                    "scheduler {} produced an invalid plan",
                    self.scheduler.name()
                );
                plan.apply_to_ledger(&mut self.ledger);
            }
            Decision::Rates(rates) => {
                debug_assert!(
                    {
                        let ledger = &self.ledger;
                        let network = &self.network;
                        rates.validate(network, files, |i, j, s| ledger.volume(i, j, s)).is_empty()
                    },
                    "scheduler {} produced an invalid assignment",
                    self.scheduler.name()
                );
                rates.apply_to_ledger(files, &mut self.ledger);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{DirectScheduler, FlowLpScheduler, PostcardScheduler};
    use postcard_net::{DcId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 100.0)
            .link(d(1), d(0), 1.0, 100.0)
            .link(d(0), d(2), 3.0, 100.0)
            .build()
    }

    #[test]
    fn postcard_controller_runs_multi_slot() {
        let mut ctl = OnlineController::new(net(), PostcardScheduler::new());
        let f0 = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let r0 = ctl.step(0, &[f0]).unwrap();
        assert_eq!(r0.accepted, vec![FileId(1)]);
        assert!(r0.rejected.is_empty());
        assert!((r0.cost_per_slot - 12.0).abs() < 1e-5);

        // A later file sees the committed traffic.
        let f1 = TransferRequest::new(FileId(2), d(1), d(2), 6.0, 3, 5);
        let r1 = ctl.step(5, &[f1]).unwrap();
        assert_eq!(r1.accepted, vec![FileId(2)]);
        // The second file reuses the already-paid peaks: cost unchanged.
        assert!((r1.cost_per_slot - 12.0).abs() < 1e-5, "{}", r1.cost_per_slot);
        assert_eq!(ctl.cost_history().len(), 2);
        assert_eq!(ctl.admission_counts(), (2, 0));
    }

    #[test]
    fn admission_rejects_only_unservable_files() {
        // Capacity 2/slot on the single link: a 10-GB 1-slot file can never
        // fit; a 2-GB one can.
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut ctl = OnlineController::new(net, PostcardScheduler::new());
        let big = TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0);
        let small = TransferRequest::new(FileId(2), d(0), d(1), 2.0, 1, 0);
        let r = ctl.step(0, &[big, small]).unwrap();
        assert_eq!(r.rejected, vec![FileId(1)]);
        assert_eq!(r.accepted, vec![FileId(2)]);
        assert_eq!(ctl.admission_volumes(), (2.0, 10.0));
    }

    #[test]
    fn flow_controller_commits_rates() {
        let mut ctl = OnlineController::new(net(), FlowLpScheduler::new());
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let r = ctl.step(0, &[f]).unwrap();
        assert_eq!(r.accepted.len(), 1);
        // Rates commit 3 slots of traffic: ledger horizon reaches slot 3.
        assert_eq!(ctl.ledger().horizon(), 3);
        // Flow LP routes via the cheap relay: 2·1 + 2·3 = 8 per slot.
        assert!((r.cost_per_slot - 8.0).abs() < 1e-5, "{}", r.cost_per_slot);
    }

    #[test]
    fn direct_controller_matches_fig1a() {
        let mut ctl = OnlineController::new(net(), DirectScheduler);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let r = ctl.step(0, &[f]).unwrap();
        assert!((r.cost_per_slot - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "batch must contain only slot-3 releases")]
    fn wrong_slot_batch_panics() {
        let mut ctl = OnlineController::new(net(), DirectScheduler);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let _ = ctl.step(3, &[f]);
    }

    #[test]
    fn commit_reconciled_matches_a_plain_step() {
        // A reconciled commit of the same decision the scheduler would make
        // must leave the controller in exactly the state step() produces.
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let mut stepped = OnlineController::new(net(), PostcardScheduler::new());
        let report = stepped.step(0, &[f]).unwrap();

        let mut scheduler = PostcardScheduler::new();
        let decision = scheduler.schedule(&net(), &[f], &TrafficLedger::new(3)).expect("feasible");
        let mut merged = OnlineController::new(net(), PostcardScheduler::new());
        let merged_report =
            merged.commit_reconciled(0, &[(vec![f], decision)], vec![f.id], vec![], f.size_gb, 0.0);

        assert_eq!(merged_report.accepted, report.accepted);
        assert_eq!(merged_report.cost_per_slot.to_bits(), report.cost_per_slot.to_bits());
        assert_eq!(merged.export_state(), stepped.export_state());
    }

    #[test]
    fn empty_step_keeps_cost() {
        let mut ctl = OnlineController::new(net(), PostcardScheduler::new());
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        ctl.step(0, &[f]).unwrap();
        let before = ctl.cost_per_slot();
        let r = ctl.step(1, &[]).unwrap();
        assert_eq!(r.cost_per_slot, before);
    }
}
