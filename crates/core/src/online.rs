//! The online controller (paper Sec. III).
//!
//! Inter-datacenter traffic cannot be predicted more than seconds ahead, so
//! Postcard runs *online*: at each slot `t` the files released at `t` are
//! scheduled given full knowledge of all earlier decisions — which live in
//! the [`TrafficLedger`] as committed per-slot volumes (including volumes
//! committed into *future* slots by earlier plans).
//!
//! The controller also implements **admission control**: schedulers are
//! all-or-nothing per batch, so when a whole batch is infeasible the
//! controller retries file-by-file (in arrival order) and rejects only the
//! files that genuinely do not fit. The paper assumes feasible workloads and
//! does not discuss admission; rejections are surfaced in [`StepReport`] so
//! experiments can verify they are rare and identical across approaches or
//! account for them.

use crate::error::PostcardError;
use crate::scheduler::{Decision, Scheduler};
use postcard_net::{ChargingScheme, FileId, Network, TrafficLedger, TransferRequest};
use serde::{Deserialize, Serialize};

/// What happened in one controller step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The slot that was scheduled.
    pub slot: u64,
    /// Files fully admitted and committed.
    pub accepted: Vec<FileId>,
    /// Files rejected (no feasible service even alone).
    pub rejected: Vec<FileId>,
    /// The provider's bill per slot (Σ a_ij · X_ij) after this step.
    pub cost_per_slot: f64,
}

/// The complete mutable state of an [`OnlineController`], detached from its
/// scheduler and network so service runtimes can checkpoint and restore it.
///
/// The decision log is deliberately excluded: it is a CLI export aid, can
/// be arbitrarily large, and a restored controller continues with an empty
/// log without affecting any scheduling decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Committed per-slot volumes and running peaks.
    pub ledger: TrafficLedger,
    /// Bill per slot after every step taken so far.
    pub cost_history: Vec<f64>,
    /// Files admitted so far.
    pub total_accepted: usize,
    /// Files rejected so far.
    pub total_rejected: usize,
    /// Volume admitted so far (GB).
    pub accepted_volume: f64,
    /// Volume rejected so far (GB).
    pub rejected_volume: f64,
}

/// Drives a [`Scheduler`] slot by slot, maintaining the committed ledger.
#[derive(Debug)]
pub struct OnlineController<S> {
    scheduler: S,
    network: Network,
    ledger: TrafficLedger,
    cost_history: Vec<f64>,
    total_accepted: usize,
    total_rejected: usize,
    accepted_volume: f64,
    rejected_volume: f64,
    keep_decisions: bool,
    decisions: Vec<(u64, Decision)>,
    /// How the cost history prices the ledger. Not part of
    /// [`ControllerState`]: the scheme is run configuration (like the
    /// scheduler), re-supplied on restore by whoever rebuilds the
    /// controller.
    charging: ChargingScheme,
}

impl<S: Scheduler> OnlineController<S> {
    /// Creates a controller over `network` with an empty ledger.
    pub fn new(network: Network, scheduler: S) -> Self {
        let ledger = TrafficLedger::new(network.num_dcs());
        Self {
            scheduler,
            network,
            ledger,
            cost_history: Vec::new(),
            total_accepted: 0,
            total_rejected: 0,
            accepted_volume: 0.0,
            rejected_volume: 0.0,
            keep_decisions: false,
            decisions: Vec::new(),
            charging: ChargingScheme::MaxPerSlot,
        }
    }

    /// Enables the decision log: every committed [`Decision`] is retained
    /// and can be read back with [`OnlineController::decisions`] (used by
    /// the CLI to export plans).
    pub fn with_decision_log(mut self) -> Self {
        self.keep_decisions = true;
        self
    }

    /// Prices the cost history under `scheme` instead of the default
    /// [`ChargingScheme::MaxPerSlot`]. Under `MaxPerSlot` every cost value
    /// is bit-identical to what the controller always produced.
    pub fn with_charging(mut self, scheme: ChargingScheme) -> Self {
        self.charging = scheme;
        self
    }

    /// The charging scheme pricing the cost history.
    pub fn charging(&self) -> ChargingScheme {
        self.charging
    }

    /// The committed decisions per slot (empty unless
    /// [`OnlineController::with_decision_log`] was used).
    pub fn decisions(&self) -> &[(u64, Decision)] {
        &self.decisions
    }

    /// The scheduler's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// The scheduler itself (e.g. to read its [`crate::SolveStats`]).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the scheduler (e.g. to re-arm fault injection).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// The committed traffic so far.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    /// The network being controlled.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network (service runtimes apply link
    /// degradations here).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Snapshots the controller's complete mutable state (see
    /// [`ControllerState`] for what is excluded).
    pub fn export_state(&self) -> ControllerState {
        ControllerState {
            ledger: self.ledger.clone(),
            cost_history: self.cost_history.clone(),
            total_accepted: self.total_accepted,
            total_rejected: self.total_rejected,
            accepted_volume: self.accepted_volume,
            rejected_volume: self.rejected_volume,
        }
    }

    /// Rebuilds a controller from a snapshotted state, a network, and a
    /// scheduler. Stepping the result continues exactly where
    /// [`OnlineController::export_state`] left off (the decision log starts
    /// empty).
    pub fn from_state(network: Network, scheduler: S, state: ControllerState) -> Self {
        Self {
            scheduler,
            network,
            ledger: state.ledger,
            cost_history: state.cost_history,
            total_accepted: state.total_accepted,
            total_rejected: state.total_rejected,
            accepted_volume: state.accepted_volume,
            rejected_volume: state.rejected_volume,
            keep_decisions: false,
            decisions: Vec::new(),
            charging: ChargingScheme::MaxPerSlot,
        }
    }

    /// Bill per slot after the most recent step (0 before any step).
    pub fn cost_per_slot(&self) -> f64 {
        self.cost_history.last().copied().unwrap_or(0.0)
    }

    /// Bill per slot after every step so far.
    pub fn cost_history(&self) -> &[f64] {
        &self.cost_history
    }

    /// `(accepted, rejected)` file counts so far.
    pub fn admission_counts(&self) -> (usize, usize) {
        (self.total_accepted, self.total_rejected)
    }

    /// `(accepted, rejected)` volumes in GB so far.
    pub fn admission_volumes(&self) -> (f64, f64) {
        (self.accepted_volume, self.rejected_volume)
    }

    /// Schedules the batch of files released at `slot` and commits the
    /// decision.
    ///
    /// # Errors
    ///
    /// Propagates non-[`PostcardError::Infeasible`] scheduler errors
    /// (infeasibility is handled by per-file admission instead).
    ///
    /// # Panics
    ///
    /// Panics if a file's release slot differs from `slot` — batches must be
    /// formed per slot.
    pub fn step(
        &mut self,
        slot: u64,
        files: &[TransferRequest],
    ) -> Result<StepReport, PostcardError> {
        for f in files {
            assert_eq!(f.release_slot, slot, "batch must contain only slot-{slot} releases");
        }
        let mut accepted = Vec::new();
        let mut rejected = Vec::new();

        match self.scheduler.schedule(&self.network, files, &self.ledger) {
            Ok(decision) => {
                self.commit(&decision, files);
                if self.keep_decisions {
                    self.decisions.push((slot, decision));
                }
                accepted.extend(files.iter().map(|f| f.id));
            }
            Err(PostcardError::Infeasible) => {
                // Per-file admission in arrival order.
                for f in files {
                    let batch = [*f];
                    match self.scheduler.schedule(&self.network, &batch, &self.ledger) {
                        Ok(decision) => {
                            self.commit(&decision, &batch);
                            if self.keep_decisions {
                                self.decisions.push((slot, decision));
                            }
                            accepted.push(f.id);
                        }
                        Err(PostcardError::Infeasible) => rejected.push(f.id),
                        Err(e) => return Err(e),
                    }
                }
            }
            Err(e) => return Err(e),
        }

        self.total_accepted += accepted.len();
        self.total_rejected += rejected.len();
        // `accepted` is a subsequence of `files` in arrival order in both
        // paths above (the batch path takes every id, the per-file path
        // pushes while iterating `files`), so a single positional cursor
        // replaces the per-file `accepted.contains(..)` linear scan that
        // made this loop O(batch²) on the 10³–10⁵-request batches the ALAP
        // path admits — and it keeps the float accumulation order identical.
        let mut cursor = 0;
        for f in files {
            if accepted.get(cursor) == Some(&f.id) {
                cursor += 1;
                self.accepted_volume += f.size_gb;
            } else {
                self.rejected_volume += f.size_gb;
            }
        }
        let cost = self.ledger.cost_per_slot_scheme(&self.network, self.charging);
        self.cost_history.push(cost);
        Ok(StepReport { slot, accepted, rejected, cost_per_slot: cost })
    }

    /// Commits externally reconciled per-shard decisions as this slot's
    /// single controller step.
    ///
    /// The sharded runtime solves per-shard subproblems in parallel and
    /// merges them *outside* the controller (validating each decision
    /// against the growing central ledger); this entry point applies the
    /// merged result — decisions in their fixed reconciliation order — and
    /// updates the cost history and admission accounting exactly like
    /// [`OnlineController::step`] does, so a sharded slot and an unsharded
    /// slot leave identical controller state shapes behind.
    ///
    /// Every decision is debug-validated against the ledger state in front
    /// of it, which re-checks the reconciler's ordering: a decision that
    /// over-commits a link on top of an earlier shard's traffic fails the
    /// assertion in debug builds.
    pub fn commit_reconciled(
        &mut self,
        slot: u64,
        commits: &[(Vec<TransferRequest>, Decision)],
        accepted: Vec<FileId>,
        rejected: Vec<FileId>,
        accepted_volume: f64,
        rejected_volume: f64,
    ) -> StepReport {
        for (files, decision) in commits {
            self.commit(decision, files);
            if self.keep_decisions {
                self.decisions.push((slot, decision.clone()));
            }
        }
        self.total_accepted += accepted.len();
        self.total_rejected += rejected.len();
        self.accepted_volume += accepted_volume;
        self.rejected_volume += rejected_volume;
        let cost = self.ledger.cost_per_slot_scheme(&self.network, self.charging);
        self.cost_history.push(cost);
        StepReport { slot, accepted, rejected, cost_per_slot: cost }
    }

    fn commit(&mut self, decision: &Decision, files: &[TransferRequest]) {
        match decision {
            Decision::Plan(plan) => {
                debug_assert!(
                    {
                        let ledger = &self.ledger;
                        let network = &self.network;
                        plan.validate(network, files, |i, j, s| ledger.volume(i, j, s)).is_empty()
                    },
                    "scheduler {} produced an invalid plan",
                    self.scheduler.name()
                );
                plan.apply_to_ledger(&mut self.ledger);
            }
            Decision::Rates(rates) => {
                debug_assert!(
                    {
                        let ledger = &self.ledger;
                        let network = &self.network;
                        rates.validate(network, files, |i, j, s| ledger.volume(i, j, s)).is_empty()
                    },
                    "scheduler {} produced an invalid assignment",
                    self.scheduler.name()
                );
                rates.apply_to_ledger(files, &mut self.ledger);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{DirectScheduler, FlowLpScheduler, PostcardScheduler};
    use postcard_net::{DcId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 100.0)
            .link(d(1), d(0), 1.0, 100.0)
            .link(d(0), d(2), 3.0, 100.0)
            .build()
    }

    #[test]
    fn postcard_controller_runs_multi_slot() {
        let mut ctl = OnlineController::new(net(), PostcardScheduler::new());
        let f0 = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let r0 = ctl.step(0, &[f0]).unwrap();
        assert_eq!(r0.accepted, vec![FileId(1)]);
        assert!(r0.rejected.is_empty());
        assert!((r0.cost_per_slot - 12.0).abs() < 1e-5);

        // A later file sees the committed traffic.
        let f1 = TransferRequest::new(FileId(2), d(1), d(2), 6.0, 3, 5);
        let r1 = ctl.step(5, &[f1]).unwrap();
        assert_eq!(r1.accepted, vec![FileId(2)]);
        // The second file reuses the already-paid peaks: cost unchanged.
        assert!((r1.cost_per_slot - 12.0).abs() < 1e-5, "{}", r1.cost_per_slot);
        assert_eq!(ctl.cost_history().len(), 2);
        assert_eq!(ctl.admission_counts(), (2, 0));
    }

    #[test]
    fn admission_rejects_only_unservable_files() {
        // Capacity 2/slot on the single link: a 10-GB 1-slot file can never
        // fit; a 2-GB one can.
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut ctl = OnlineController::new(net, PostcardScheduler::new());
        let big = TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0);
        let small = TransferRequest::new(FileId(2), d(0), d(1), 2.0, 1, 0);
        let r = ctl.step(0, &[big, small]).unwrap();
        assert_eq!(r.rejected, vec![FileId(1)]);
        assert_eq!(r.accepted, vec![FileId(2)]);
        assert_eq!(ctl.admission_volumes(), (2.0, 10.0));
    }

    #[test]
    fn admission_volumes_with_interleaved_rejections() {
        // Rejections interleaved between acceptances exercise the positional
        // cursor over `accepted`: every file must be attributed to exactly
        // one side, in arrival order.
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 4.0).build();
        let mut ctl = OnlineController::new(net, PostcardScheduler::new());
        let batch = [
            TransferRequest::new(FileId(1), d(0), d(1), 50.0, 1, 0), // too big
            TransferRequest::new(FileId(2), d(0), d(1), 2.0, 1, 0),
            TransferRequest::new(FileId(3), d(0), d(1), 60.0, 1, 0), // too big
            TransferRequest::new(FileId(4), d(0), d(1), 2.0, 1, 0),
        ];
        let r = ctl.step(0, &batch).unwrap();
        assert_eq!(r.accepted, vec![FileId(2), FileId(4)]);
        assert_eq!(r.rejected, vec![FileId(1), FileId(3)]);
        assert_eq!(ctl.admission_counts(), (2, 2));
        assert_eq!(ctl.admission_volumes(), (4.0, 110.0));
    }

    #[test]
    fn percentile_charging_prices_cost_history() {
        // Direct scheduling of a 3-slot transfer elevates 3 slots; under
        // p50 over a 6-slot window (charged rank 3) the bill charges the
        // per-slot rate, under MaxPerSlot it charges the peak — same ledger.
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let mut max_ctl = OnlineController::new(net(), DirectScheduler);
        let max_cost = max_ctl.step(0, &[f]).unwrap().cost_per_slot;
        let scheme = ChargingScheme::Percentile { q: 50.0, window_slots: 6 };
        let mut p_ctl = OnlineController::new(net(), DirectScheduler).with_charging(scheme);
        let p_cost = p_ctl.step(0, &[f]).unwrap().cost_per_slot;
        // Direct spreads 6 GB over 3 of 6 window slots → the p50 rank
        // (3rd of 6 sorted) lands on an idle slot and the bill is free,
        // while MaxPerSlot charges the 2 GB peak at price 10.
        assert!((max_cost - 20.0).abs() < 1e-9);
        assert_eq!(p_cost, 0.0);
        // With q=100 and a window covering the horizon the scheme-priced
        // history is bit-identical to MaxPerSlot.
        let wide = ChargingScheme::Percentile { q: 100.0, window_slots: 64 };
        let mut wide_ctl = OnlineController::new(net(), DirectScheduler).with_charging(wide);
        let wide_cost = wide_ctl.step(0, &[f]).unwrap().cost_per_slot;
        assert_eq!(wide_cost.to_bits(), max_cost.to_bits());
    }

    #[test]
    fn flow_controller_commits_rates() {
        let mut ctl = OnlineController::new(net(), FlowLpScheduler::new());
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let r = ctl.step(0, &[f]).unwrap();
        assert_eq!(r.accepted.len(), 1);
        // Rates commit 3 slots of traffic: ledger horizon reaches slot 3.
        assert_eq!(ctl.ledger().horizon(), 3);
        // Flow LP routes via the cheap relay: 2·1 + 2·3 = 8 per slot.
        assert!((r.cost_per_slot - 8.0).abs() < 1e-5, "{}", r.cost_per_slot);
    }

    #[test]
    fn direct_controller_matches_fig1a() {
        let mut ctl = OnlineController::new(net(), DirectScheduler);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let r = ctl.step(0, &[f]).unwrap();
        assert!((r.cost_per_slot - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "batch must contain only slot-3 releases")]
    fn wrong_slot_batch_panics() {
        let mut ctl = OnlineController::new(net(), DirectScheduler);
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let _ = ctl.step(3, &[f]);
    }

    #[test]
    fn commit_reconciled_matches_a_plain_step() {
        // A reconciled commit of the same decision the scheduler would make
        // must leave the controller in exactly the state step() produces.
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        let mut stepped = OnlineController::new(net(), PostcardScheduler::new());
        let report = stepped.step(0, &[f]).unwrap();

        let mut scheduler = PostcardScheduler::new();
        let decision = scheduler.schedule(&net(), &[f], &TrafficLedger::new(3)).expect("feasible");
        let mut merged = OnlineController::new(net(), PostcardScheduler::new());
        let merged_report =
            merged.commit_reconciled(0, &[(vec![f], decision)], vec![f.id], vec![], f.size_gb, 0.0);

        assert_eq!(merged_report.accepted, report.accepted);
        assert_eq!(merged_report.cost_per_slot.to_bits(), report.cost_per_slot.to_bits());
        assert_eq!(merged.export_state(), stepped.export_state());
    }

    #[test]
    fn empty_step_keeps_cost() {
        let mut ctl = OnlineController::new(net(), PostcardScheduler::new());
        let f = TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0);
        ctl.step(0, &[f]).unwrap();
        let before = ctl.cost_per_slot();
        let r = ctl.step(1, &[]).unwrap();
        assert_eq!(r.cost_per_slot, before);
    }
}
