//! Incremental slot-over-slot formulation: the standing Postcard LP.
//!
//! The online loop solves a structurally identical LP every slot: recurring
//! batches have the same shape (per-file source, destination, and deadline
//! window *relative to the batch release*), the network is fixed, and only
//! the ledger state — residual capacities, committed volumes, prior peaks —
//! moves. Rebuilding the model, its standard form, and the solver state
//! from scratch each slot therefore wastes almost all of its work.
//!
//! [`DeltaFormulation`] keeps one *standing* problem alive instead and
//! advances it slot-over-slot:
//!
//! 1. **Retire + append layers by rebasing.** The time-expanded graph's
//!    layers are homogeneous, so retiring the expired layer and appending
//!    one new layer is realized as [`postcard_net::TimeExpandedGraph::rebase`]: arc `k`
//!    keeps its [`postcard_net::ArcId`] and simply *becomes* the same
//!    relative link-slot of the new window. Variable ids are slot-stable by
//!    construction, which keeps exported bases valid.
//! 2. **Rewrite ledger-dependent RHS and bounds only.** The structural
//!    build ([`crate::build_structural_postcard_problem`]) guarantees the
//!    row/column layout is ledger-independent and reports which rows carry
//!    ledger state ([`crate::PostcardRows`]); the advance rewrites exactly
//!    those (capacity residuals, envelope `−used`, release sizes) plus the
//!    charged-volume floors, then refreshes the prepared standard form in
//!    place.
//! 3. **Re-solve with the dual simplex.** RHS/bound edits leave the
//!    previous optimal basis dual feasible, so the warm solve resumes with
//!    dual pivots from the standing basis, in the standing
//!    [`SolverWorkspace`]'s allocations.
//!
//! Any shape change — different batch structure, a bound
//! reclassification the refresh rejects — falls back to a full rebuild
//! (counted in [`DeltaFormulation::rebuilds`]), so the fast path is only
//! ever an accelerator: optima match cold solves to solver tolerance.

use crate::error::PostcardError;
use crate::formulation::{
    build_structural_postcard_problem, solve_postcard_with, PostcardConfig, PostcardProblem,
    PostcardRows, PostcardSolution,
};
use postcard_lp::{Basis, PreparedLp, SolverWorkspace};
use postcard_net::{DcId, Network, TrafficLedger, TransferRequest};

/// The batch/network shape a standing model was built for. Two solves may
/// share a standing model iff their signatures are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShapeSignature {
    num_dcs: usize,
    /// Directed links with exact price bits (prices enter the objective,
    /// which a refresh never rewrites).
    links: Vec<(usize, usize, u64)>,
    /// Per file, in batch order: source, destination, window start relative
    /// to the batch release, window length.
    files: Vec<(usize, usize, u64, u64)>,
    allow_relay_storage: bool,
}

impl ShapeSignature {
    fn of(network: &Network, files: &[TransferRequest], config: &PostcardConfig) -> Self {
        let t0 = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
        Self {
            num_dcs: network.num_dcs(),
            links: network.links().map(|l| (l.from.0, l.to.0, l.price.to_bits())).collect(),
            files: files
                .iter()
                .map(|f| (f.src.0, f.dst.0, f.first_slot() - t0, f.last_slot() - f.first_slot()))
                .collect(),
            allow_relay_storage: config.allow_relay_storage,
        }
    }
}

/// Everything that survives from one slot's solve to the next.
#[derive(Debug, Clone)]
struct Standing {
    problem: PostcardProblem,
    rows: PostcardRows,
    prepared: PreparedLp,
    basis: Option<Basis>,
    signature: ShapeSignature,
}

/// What [`DeltaFormulation::prepare_slot`] decided to do for the slot —
/// the model-building phase's outcome, reported so callers (benchmarks,
/// metrics) can attribute the following solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPrep {
    /// Empty batch: nothing was built, the solve is trivial.
    Trivial,
    /// The standing model was advanced in place (graph rebased, RHS and
    /// bounds rewritten); the solve resumes from the inherited basis.
    Delta,
    /// The standing model was (re)built from scratch; the solve is cold.
    Rebuild,
}

/// A stateful Postcard solver that advances a standing LP slot-over-slot
/// instead of rebuilding it (see the module docs).
///
/// Drive it with [`DeltaFormulation::solve`] once per slot;
/// [`DeltaFormulation::delta_hits`] / [`DeltaFormulation::rebuilds`] report
/// how often the fast path applied.
#[derive(Debug, Clone, Default)]
pub struct DeltaFormulation {
    config: PostcardConfig,
    standing: Option<Standing>,
    ws: SolverWorkspace,
    pending: Option<SlotPrep>,
    delta_hits: u64,
    rebuilds: u64,
    last_delta_hit: bool,
}

impl DeltaFormulation {
    /// A fresh formulation; the first non-empty solve builds the standing
    /// model.
    pub fn new(config: PostcardConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// Solves the Postcard problem for `files`, advancing the standing
    /// model when the batch shape matches and rebuilding it otherwise.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::solve_postcard`].
    pub fn solve(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<PostcardSolution, PostcardError> {
        self.prepare_slot(network, files, ledger)?;
        self.solve_prepared(network, files, ledger)
    }

    /// The model-building phase of one slot: advances the standing model in
    /// place when the batch shape matches (graph rebase, RHS/bound rewrite,
    /// standard-form refresh), rebuilds it from scratch otherwise, and
    /// reports which of the two happened. Follow with
    /// [`DeltaFormulation::solve_prepared`] — the split exists so callers
    /// can time the two phases separately.
    ///
    /// # Errors
    ///
    /// Only rebuilds can fail (malformed instances); an advance is
    /// infallible.
    pub fn prepare_slot(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<SlotPrep, PostcardError> {
        self.last_delta_hit = false;
        let prep = if files.is_empty() {
            // Trivial slot: nothing to advance, keep the standing model.
            SlotPrep::Trivial
        } else {
            let signature = ShapeSignature::of(network, files, &self.config);
            let advanced = match self.standing.as_mut() {
                Some(standing) if standing.signature == signature => {
                    let t0 = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
                    advance(standing, network, files, ledger, t0);
                    // A `false` refresh means the mutation reclassified a
                    // bound (can't happen for peak floors, but stay safe):
                    // fall through to the rebuild.
                    standing.prepared.refresh(&standing.problem.model)
                }
                _ => false,
            };
            if advanced {
                SlotPrep::Delta
            } else {
                self.build(network, files, ledger, signature)?;
                SlotPrep::Rebuild
            }
        };
        self.pending = Some(prep);
        Ok(prep)
    }

    /// The solve phase of one slot: runs the (dual-)simplex on whatever
    /// [`DeltaFormulation::prepare_slot`] left standing — warm from the
    /// inherited basis after an advance, cold after a rebuild — and maps
    /// the solution back to a transfer plan.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::solve_postcard`].
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding `prepare_slot` for this slot.
    pub fn solve_prepared(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<PostcardSolution, PostcardError> {
        // postcard-analyze: allow(PA102) — calling the solve phase without
        // the build phase is a caller bug, not a recoverable state.
        let prep = self.pending.take().expect("prepare_slot must precede solve_prepared");
        if prep == SlotPrep::Trivial {
            return solve_postcard_with(network, files, ledger, &self.config);
        }
        // postcard-analyze: allow(PA102) — prepare_slot always leaves a
        // standing model for non-trivial preps.
        let standing = self.standing.as_mut().expect("prepare_slot left a standing model");
        let sol = standing.prepared.solve_warm(
            &standing.problem.model,
            &self.config.simplex,
            standing.basis.as_ref(),
            &mut self.ws,
        )?;
        let out = standing.problem.map_solution(&sol)?;
        if out.basis.is_some() {
            standing.basis.clone_from(&out.basis);
        }
        if prep == SlotPrep::Delta {
            self.delta_hits += 1;
            self.last_delta_hit = true;
        } else {
            self.rebuilds += 1;
        }
        Ok(out)
    }

    /// Full rebuild of the standing model: structural assembly plus a fresh
    /// standard form, with no basis (the next solve is cold).
    fn build(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
        signature: ShapeSignature,
    ) -> Result<(), PostcardError> {
        self.standing = None;
        let (problem, rows) =
            build_structural_postcard_problem(network, files, ledger, &self.config)?;
        let prepared = problem.model.prepare().map_err(PostcardError::from)?;
        self.standing = Some(Standing { problem, rows, prepared, basis: None, signature });
        Ok(())
    }

    /// Solves that advanced the standing model in place.
    pub fn delta_hits(&self) -> u64 {
        self.delta_hits
    }

    /// Solves that had to (re)build the standing model from scratch.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether the most recent [`DeltaFormulation::solve`] took the delta
    /// path (`false` for rebuilds and trivial empty-batch solves).
    pub fn last_was_delta(&self) -> bool {
        self.last_delta_hit
    }

    /// The standing problem, if one exists (`None` before the first
    /// non-empty solve). Exposed so tests can check that a chain of slot
    /// advances leaves the model identical to a from-scratch build.
    pub fn standing_problem(&self) -> Option<&PostcardProblem> {
        self.standing.as_ref().map(|s| &s.problem)
    }

    /// The basis the next solve will warm-start from (the previous slot's
    /// optimum; `None` before the first successful solve or right after a
    /// rebuild). Exposed so benchmarks can seed a from-scratch rebuild of
    /// the same slot with the identical basis and compare the two model
    /// paths solve-for-solve.
    pub fn standing_basis(&self) -> Option<&Basis> {
        self.standing.as_ref().and_then(|s| s.basis.as_ref())
    }

    /// Seeds the standing model's warm-start basis, as if a previous solve
    /// had exported it. Returns `false` (and changes nothing) without a
    /// standing model. The solver validates any seeded basis and falls back
    /// to a cold solve if it cannot seed the problem, so a wrong basis can
    /// cost pivots but never correctness.
    pub fn seed_basis(&mut self, basis: Basis) -> bool {
        match self.standing.as_mut() {
            Some(standing) => {
                standing.basis = Some(basis);
                true
            }
            None => false,
        }
    }
}

/// Advances `standing` to the window starting at `t0`: rebases the graph
/// and rewrites every ledger-dependent RHS and bound. The model is mutated
/// only through `set_rhs`/`set_bounds`, which is exactly the contract
/// [`PreparedLp::refresh`] requires.
fn advance(
    standing: &mut Standing,
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    t0: u64,
) {
    let rows = &standing.rows;
    let problem = &mut standing.problem;
    problem.graph.rebase(t0);
    // The batch identities (file ids, sizes) changed even though the shape
    // did not; the mapping back to a plan reads them from here.
    problem.files = files.to_vec();
    let (model, graph) = (&mut problem.model, &problem.graph);
    for &(row, arc_id) in &rows.cap_rows {
        let arc = graph.arc(arc_id);
        model.set_rhs(row, ledger.residual(network, arc.from, arc.to, arc.slot).max(0.0));
    }
    for &(row, arc_id) in &rows.env_rows {
        let arc = graph.arc(arc_id);
        model.set_rhs(row, -ledger.volume(arc.from, arc.to, arc.slot));
    }
    for &(row, k) in &rows.release_rows {
        model.set_rhs(row, files[k].size_gb);
    }
    for (&(i, j), &x) in &problem.xvars {
        model.set_bounds(x, ledger.peak(DcId(i), DcId(j)), f64::INFINITY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::build_postcard_problem;
    use postcard_net::{FileId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// The paper's Fig. 1 network (see `formulation.rs`).
    fn fig1_net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 8.0)
            .link(d(1), d(0), 1.0, 8.0)
            .link(d(0), d(2), 3.0, 8.0)
            .build()
    }

    fn batch(slot: u64, size: f64) -> Vec<TransferRequest> {
        vec![TransferRequest::new(FileId(slot), d(1), d(2), size, 3, slot)]
    }

    #[test]
    fn structural_build_matches_pruned_build_optimum() {
        let net = fig1_net();
        let cfg = PostcardConfig::default();
        let mut ledger = TrafficLedger::new(8);
        // Saturate one link-slot so the pruned build actually prunes.
        ledger.record(d(1), d(2), 0, 8.0);
        let files = batch(0, 6.0);
        let pruned = build_postcard_problem(&net, &files, &ledger, &cfg).unwrap();
        let (structural, rows) =
            build_structural_postcard_problem(&net, &files, &ledger, &cfg).unwrap();
        assert!(!rows.cap_rows.is_empty());
        assert_eq!(rows.release_rows.len(), 1);
        let a = pruned.solve(&cfg.simplex).unwrap();
        let b = structural.solve(&cfg.simplex).unwrap();
        assert!(
            (a.cost_per_slot - b.cost_per_slot).abs() < 1e-9,
            "pruned {} vs structural {}",
            a.cost_per_slot,
            b.cost_per_slot
        );
    }

    #[test]
    fn delta_advances_match_cold_solves_over_many_slots() {
        let net = fig1_net();
        let cfg = PostcardConfig::default();
        let mut delta = DeltaFormulation::new(cfg.clone());
        let mut ledger = TrafficLedger::new(64);
        for slot in 0..12u64 {
            let files = batch(slot, 4.0 + (slot % 3) as f64);
            let cold = solve_postcard_with(&net, &files, &ledger, &cfg).unwrap();
            let inc = delta.solve(&net, &files, &ledger).unwrap();
            assert!(
                (inc.cost_per_slot - cold.cost_per_slot).abs() < 1e-9,
                "slot {slot}: delta {} vs cold {}",
                inc.cost_per_slot,
                cold.cost_per_slot
            );
            assert!(inc.plan.is_valid(&net, &files, |from, to, s| ledger.volume(from, to, s)));
            inc.plan.apply_to_ledger(&mut ledger);
        }
        assert_eq!(delta.rebuilds(), 1, "one cold build, then deltas");
        assert_eq!(delta.delta_hits(), 11);
        assert!(delta.last_was_delta());
    }

    #[test]
    fn shape_change_triggers_rebuild_and_recovers() {
        let net = fig1_net();
        let cfg = PostcardConfig::default();
        let mut delta = DeltaFormulation::new(cfg.clone());
        let ledger = TrafficLedger::new(32);
        delta.solve(&net, &batch(0, 6.0), &ledger).unwrap();
        // Two files instead of one: different shape, must rebuild.
        let two = vec![
            TransferRequest::new(FileId(10), d(1), d(2), 3.0, 3, 1),
            TransferRequest::new(FileId(11), d(1), d(2), 3.0, 3, 1),
        ];
        let cold = solve_postcard_with(&net, &two, &ledger, &cfg).unwrap();
        let inc = delta.solve(&net, &two, &ledger).unwrap();
        assert!((inc.cost_per_slot - cold.cost_per_slot).abs() < 1e-9);
        assert!(!delta.last_was_delta());
        assert_eq!(delta.rebuilds(), 2);
        // The new shape becomes the standing one.
        let two_later: Vec<TransferRequest> = two
            .iter()
            .map(|f| TransferRequest::new(FileId(f.id.0 + 10), f.src, f.dst, f.size_gb, 3, 2))
            .collect();
        delta.solve(&net, &two_later, &ledger).unwrap();
        assert!(delta.last_was_delta());
    }

    #[test]
    fn empty_batch_is_trivial_and_keeps_the_standing_model() {
        let net = fig1_net();
        let mut delta = DeltaFormulation::new(PostcardConfig::default());
        let ledger = TrafficLedger::new(32);
        delta.solve(&net, &batch(0, 6.0), &ledger).unwrap();
        let sol = delta.solve(&net, &[], &ledger).unwrap();
        assert!(sol.plan.is_empty());
        assert!(!delta.last_was_delta());
        assert_eq!(delta.rebuilds(), 1);
        // The standing model survives the trivial slot.
        delta.solve(&net, &batch(1, 6.0), &ledger).unwrap();
        assert!(delta.last_was_delta());
    }

    #[test]
    fn delta_detects_infeasibility_like_cold() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let mut delta = DeltaFormulation::new(PostcardConfig::default());
        let mut ledger = TrafficLedger::new(32);
        let ok = vec![TransferRequest::new(FileId(0), d(0), d(1), 3.0, 2, 0)];
        delta.solve(&net, &ok, &ledger).unwrap().plan.apply_to_ledger(&mut ledger);
        // Same shape, but the residual cannot carry 10 GB in 2 slots.
        let too_big = vec![TransferRequest::new(FileId(1), d(0), d(1), 10.0, 2, 1)];
        let err = delta.solve(&net, &too_big, &ledger).unwrap_err();
        assert_eq!(err, PostcardError::Infeasible);
        // The standing model is still usable afterwards.
        let ok2 = vec![TransferRequest::new(FileId(2), d(0), d(1), 2.0, 2, 1)];
        let sol = delta.solve(&net, &ok2, &ledger).unwrap();
        assert!(sol.plan.is_valid(&net, &ok2, |from, to, s| ledger.volume(from, to, s)));
    }
}
