//! The Postcard LP on the time-expanded graph (paper Eq. 6–10).
//!
//! For a batch of files `K(t)` and the committed traffic in the ledger, the
//! problem is:
//!
//! ```text
//! min   Σ_{i,j} a_ij · X_ij                                           (6)
//! s.t.  Σ_k M_ijn^k ≤ c_ijn                    ∀ transit arcs          (7)
//!       conservation per file per node-layer                           (8)
//!       M_ijn^k ≥ 0                                                    (9)
//!       M_ijn^k = 0 outside file k's window                           (10)
//!       X_ij ≥ X_ij(t−1)                     (charged volume floor)
//!       X_ij ≥ usage_ij(n) + Σ_k M_ijn^k     ∀ horizon slots n
//! ```
//!
//! The last two rows are the *exact* linearization of the paper's
//! `X_ij(t) = max(X_ij(t−1), max_n Σ_k M_ij^k(n))`: because `a_ij ≥ 0` and
//! `X_ij` is minimized, it settles on the max. The result is an LP whose
//! optimum equals the paper's convex program's.
//!
//! Constraint (10) is enforced *structurally*: variables only exist for arcs
//! inside a file's `[release, release + T_k)` window, and arcs of the final
//! window slot that do not point at the destination get no variable either —
//! so delivery-by-deadline is implied by conservation (a telescoping sum
//! pushes all `F_k` across the last layer, where only destination-bound arcs
//! exist).

use crate::error::PostcardError;
use postcard_lp::{Basis, ConstraintId, LinExpr, Model, Sense, SimplexOptions, Status, Variable};
use postcard_net::{
    ArcId, ArcKind, Network, TimeExpandedGraph, TimeNode, TrafficLedger, TransferPlan,
    TransferRequest,
};
use std::collections::BTreeMap;

/// Tuning knobs for [`solve_postcard_with`].
#[derive(Debug, Clone)]
pub struct PostcardConfig {
    /// When `false`, storage arcs at *intermediate* datacenters are removed
    /// (arcs at the source and destination remain, so files may still be
    /// paced at the source and rest at the destination). This is the
    /// "source-scheduling-only" ablation benchmarked in `ablations.rs`.
    pub allow_relay_storage: bool,
    /// Options passed to the simplex solver.
    pub simplex: SimplexOptions,
    /// When `true`, stateful drivers ([`crate::PostcardScheduler`]) carry the
    /// optimal basis from one solve into the next as a warm start. Solves
    /// whose dimensions changed fall back to a cold phase-1 automatically, so
    /// this only ever trades time for nothing — it never changes results.
    pub warm_start: bool,
    /// When `true`, stateful drivers keep a standing
    /// [`crate::DeltaFormulation`] alive across slots: same-shaped recurring
    /// batches advance the standing model in place (graph rebase + RHS/bound
    /// refresh) and re-solve with the dual simplex from the previous basis
    /// instead of rebuilding the LP from scratch. Shape changes fall back to
    /// a full rebuild automatically, so results never differ from cold
    /// solves beyond degenerate-optimum tie-breaking.
    pub incremental: bool,
}

impl Default for PostcardConfig {
    fn default() -> Self {
        Self {
            allow_relay_storage: true,
            simplex: SimplexOptions::default(),
            warm_start: false,
            incremental: false,
        }
    }
}

/// The result of a Postcard solve.
#[derive(Debug, Clone)]
pub struct PostcardSolution {
    /// The optimal routing/scheduling decision `M_ij^k(n)`.
    pub plan: TransferPlan,
    /// Optimal `Σ a_ij · X_ij` — the provider's bill per slot after
    /// committing this plan (the paper's objective without the constant `I`
    /// factor).
    pub cost_per_slot: f64,
    /// Optimal charged volumes `X_ij` per link.
    pub charged: BTreeMap<(usize, usize), f64>,
    /// Simplex pivots used.
    pub lp_iterations: usize,
    /// How many of those pivots were dual-simplex pivots (non-zero only on
    /// warm re-solves that resumed from a dual-feasible basis).
    pub dual_iterations: usize,
    /// The optimal basis of the underlying LP, exported so the next solve of
    /// a same-shaped problem can warm-start (`None` for trivial solves).
    pub basis: Option<Basis>,
}

/// Solves the Postcard problem with default configuration.
///
/// # Errors
///
/// [`PostcardError::Infeasible`] when the batch cannot be delivered within
/// deadlines under the ledger's residual capacities;
/// [`PostcardError::UnknownDatacenter`] for malformed requests;
/// [`PostcardError::Lp`] on solver failure.
pub fn solve_postcard(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
) -> Result<PostcardSolution, PostcardError> {
    solve_postcard_with(network, files, ledger, &PostcardConfig::default())
}

/// Solves the Postcard problem with explicit configuration.
///
/// # Errors
///
/// Same contract as [`solve_postcard`].
pub fn solve_postcard_with(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    config: &PostcardConfig,
) -> Result<PostcardSolution, PostcardError> {
    if files.is_empty() {
        return Ok(PostcardSolution {
            plan: TransferPlan::new(),
            cost_per_slot: ledger.cost_per_slot(network),
            charged: network
                .links()
                .map(|l| ((l.from.0, l.to.0), ledger.peak(l.from, l.to)))
                .collect(),
            lp_iterations: 0,
            dual_iterations: 0,
            basis: None,
        });
    }
    build_postcard_problem(network, files, ledger, config)?.solve(&config.simplex)
}

/// Solves the Postcard problem with explicit configuration, attempting to
/// warm-start the simplex from `warm` (a basis exported by a previous
/// [`PostcardSolution`]). A stale or mismatched basis silently degrades to a
/// cold solve; results are identical either way.
///
/// # Errors
///
/// Same contract as [`solve_postcard`].
pub fn solve_postcard_warm_with(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    config: &PostcardConfig,
    warm: Option<&Basis>,
) -> Result<PostcardSolution, PostcardError> {
    if files.is_empty() {
        return solve_postcard_with(network, files, ledger, config);
    }
    build_postcard_problem(network, files, ledger, config)?.solve_warm(&config.simplex, warm)
}

/// The assembled (but unsolved) Postcard LP: the model plus the bookkeeping
/// linking LP variables back to time-expanded arcs and links.
///
/// Produced by [`build_postcard_problem`] and consumed by
/// [`PostcardProblem::solve`]; `postcard-analyze` inspects it structurally
/// (deadline windows, storage-arc shape, conservation degree) *before* —
/// or instead of — solving.
#[derive(Debug, Clone)]
pub struct PostcardProblem {
    /// The LP (Eq. 6–10 plus the charged-volume linearization).
    pub model: Model,
    /// The time-expanded graph the model was built over.
    pub graph: TimeExpandedGraph,
    /// The batch the problem was built for (in batch order).
    pub files: Vec<TransferRequest>,
    /// Per file (batch order): the arc variables `M_ij^k(n)` that exist
    /// (constraint 10 is enforced by *absence* — see the module docs).
    pub mvars: Vec<BTreeMap<ArcId, Variable>>,
    /// Charged-volume variable `X_ij` per directed link `(i, j)`.
    pub xvars: BTreeMap<(usize, usize), Variable>,
}

impl PostcardProblem {
    /// Solves the assembled LP and maps the optimum back to a transfer plan.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve_postcard`].
    pub fn solve(&self, options: &SimplexOptions) -> Result<PostcardSolution, PostcardError> {
        self.solve_warm(options, None)
    }

    /// Solves the assembled LP, warm-starting from `warm` when possible.
    ///
    /// # Errors
    ///
    /// Same contract as [`solve_postcard`].
    pub fn solve_warm(
        &self,
        options: &SimplexOptions,
        warm: Option<&Basis>,
    ) -> Result<PostcardSolution, PostcardError> {
        let sol = self.model.solve_warm(options, warm)?;
        self.map_solution(&sol)
    }

    /// Maps an LP solution of [`PostcardProblem::model`] back to a transfer
    /// plan. Exposed so drivers that solve the model through another path
    /// (the standing [`crate::DeltaFormulation`]) share the exact mapping.
    ///
    /// # Errors
    ///
    /// [`PostcardError::Infeasible`] when the LP was infeasible.
    pub fn map_solution(
        &self,
        sol: &postcard_lp::Solution,
    ) -> Result<PostcardSolution, PostcardError> {
        match sol.status() {
            Status::Optimal => {
                let mut plan = TransferPlan::new();
                for (k, f) in self.files.iter().enumerate() {
                    for (&id, &v) in &self.mvars[k] {
                        let value = sol.value(v);
                        if value > 1e-9 {
                            let arc = self.graph.arc(id);
                            plan.add(f.id, arc.slot, arc.from, arc.to, value);
                        }
                    }
                }
                let charged: BTreeMap<(usize, usize), f64> =
                    self.xvars.iter().map(|(&k, &x)| (k, sol.value(x))).collect();
                Ok(PostcardSolution {
                    plan,
                    cost_per_slot: sol.objective(),
                    charged,
                    lp_iterations: sol.iterations(),
                    dual_iterations: sol.dual_iterations(),
                    basis: sol.basis().cloned(),
                })
            }
            Status::Infeasible => Err(PostcardError::Infeasible),
            Status::Unbounded => unreachable!("objective is bounded below by prior peaks"),
        }
    }
}

/// Row bookkeeping for a *structurally built* Postcard LP (see
/// [`build_structural_postcard_problem`]): the constraint ids whose
/// right-hand sides depend on the ledger, so a standing model can be
/// advanced to a new slot by rewriting only those RHS values.
#[derive(Debug, Clone, Default)]
pub struct PostcardRows {
    /// Capacity rows (Eq. 7): `(row, arc)` with RHS = clamped residual
    /// capacity of the arc's link at the arc's slot.
    pub cap_rows: Vec<(ConstraintId, ArcId)>,
    /// Charged-volume envelope rows: `(row, arc)` with RHS = `−used`, the
    /// ledger traffic already committed on the arc's link-slot.
    pub env_rows: Vec<(ConstraintId, ArcId)>,
    /// Release rows of conservation (Eq. 8): `(row, file index)` with
    /// RHS = the file's size. All other conservation RHS are identically 0.
    pub release_rows: Vec<(ConstraintId, usize)>,
}

/// Assembles the Postcard LP for `files` against the residual capacities and
/// prior peaks recorded in `ledger`, without solving it.
///
/// An empty batch yields a trivial problem (a one-slot expansion, only the
/// charged-volume variables, no constraints).
///
/// # Errors
///
/// [`PostcardError::UnknownDatacenter`] for malformed requests;
/// [`PostcardError::Infeasible`] when a file's source has no usable outgoing
/// arc at its release slot (structural infeasibility detected during
/// assembly).
pub fn build_postcard_problem(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    config: &PostcardConfig,
) -> Result<PostcardProblem, PostcardError> {
    assemble(network, files, ledger, config, false).map(|(p, _)| p)
}

/// Assembles the Postcard LP in *structural* form: the variable and row
/// layout depends only on the network and the batch **shape** (per-file
/// source, destination, and window position relative to the batch start) —
/// never on ledger state. Residual capacities, committed volumes, and prior
/// peaks enter exclusively through right-hand sides and variable bounds,
/// reported in the returned [`PostcardRows`].
///
/// Compared to [`build_postcard_problem`] this keeps variables on saturated
/// arcs (their capacity row pins them to 0 instead), so the optimum is
/// identical while the model shape is stable slot-over-slot: the standing
/// [`crate::DeltaFormulation`] rebases the graph, rewrites the bookkept RHS,
/// and re-solves on the previous basis.
///
/// # Errors
///
/// Same contract as [`build_postcard_problem`].
pub fn build_structural_postcard_problem(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    config: &PostcardConfig,
) -> Result<(PostcardProblem, PostcardRows), PostcardError> {
    assemble(network, files, ledger, config, true)
}

fn assemble(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    config: &PostcardConfig,
    structural: bool,
) -> Result<(PostcardProblem, PostcardRows), PostcardError> {
    for f in files {
        for dc in [f.src, f.dst] {
            if dc.index() >= network.num_dcs() {
                return Err(PostcardError::UnknownDatacenter {
                    dc: dc.index(),
                    num_dcs: network.num_dcs(),
                });
            }
        }
    }
    let t0 = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
    let t_end = files.iter().map(|f| f.last_slot()).max().unwrap_or(t0);
    let horizon = (t_end - t0 + 1) as usize;
    // Structural mode keeps the network's static capacities on the arcs —
    // residuals reach the LP only through capacity-row RHS — so the graph
    // (and with it the variable layout) is ledger-independent.
    let graph = if structural {
        TimeExpandedGraph::new(network, t0, horizon)
    } else {
        TimeExpandedGraph::with_residual(network, t0, horizon, |l, slot| {
            Some(ledger.residual(network, l.from, l.to, slot))
        })
    };

    let mut m = Model::new(Sense::Minimize);
    let mut rows = PostcardRows::default();

    // Per-file arc variables, created only where constraint (10) allows.
    let mut mvars: Vec<BTreeMap<ArcId, Variable>> = Vec::with_capacity(files.len());
    for f in files {
        let mut per_arc = BTreeMap::new();
        for (id, arc) in graph.arcs_usable_by(f) {
            if !structural && arc.kind == ArcKind::Transit && arc.capacity <= 0.0 {
                continue; // saturated link-slot: no variable needed
            }
            if arc.slot == f.last_slot() && arc.to != f.dst {
                continue; // final slot must deliver into the destination
            }
            if arc.kind == ArcKind::Transit && (arc.to == f.src || arc.from == f.dst) {
                // Flow re-entering the source or leaving the destination can
                // always be trimmed from an optimal solution (trim the path
                // at its first destination arrival / last source departure
                // and bridge with free storage arcs), so these variables are
                // pruned for speed without affecting the optimum.
                continue;
            }
            if !config.allow_relay_storage
                && arc.kind == ArcKind::Storage
                && arc.from != f.src
                && arc.from != f.dst
            {
                continue; // ablation: no storage at intermediate relays
            }
            let v = m.add_var(
                format!("M[{}][{}->{}@{}]", f.id, arc.from.0, arc.to.0, arc.slot),
                0.0,
                f64::INFINITY,
            );
            per_arc.insert(id, v);
        }
        mvars.push(per_arc);
    }

    // Charged-volume variables with the prior peak as floor, and the
    // objective (6).
    let mut xvars = BTreeMap::new();
    let mut obj = LinExpr::new();
    for link in network.links() {
        let x = m.add_var(
            format!("X[{}->{}]", link.from.0, link.to.0),
            ledger.peak(link.from, link.to),
            f64::INFINITY,
        );
        xvars.insert((link.from.0, link.to.0), x);
        obj.add_term(x, link.price);
    }
    m.set_objective(obj);

    // Capacity (7) and charged-volume envelopes, per transit arc.
    for (id, arc) in graph.arcs() {
        if arc.kind != ArcKind::Transit {
            continue;
        }
        let mut load = LinExpr::new();
        for per_arc in &mvars {
            if let Some(&v) = per_arc.get(&id) {
                load.add_term(v, 1.0);
            }
        }
        if load.is_empty() {
            continue;
        }
        let cap = if structural {
            // The arc carries the static capacity; the residual is RHS-only
            // state (clamped like `with_residual` clamps), so a saturated
            // slot reads `load ≤ 0` instead of having no variables.
            ledger.residual(network, arc.from, arc.to, arc.slot).max(0.0)
        } else {
            arc.capacity
        };
        let cap_row = m.leq(load.clone(), cap);
        rows.cap_rows.push((cap_row, id));
        let used = ledger.volume(arc.from, arc.to, arc.slot);
        let mut env = load;
        env.add_term(xvars[&(arc.from.0, arc.to.0)], -1.0);
        let env_row = m.leq(env, -used);
        rows.env_rows.push((env_row, id));
    }

    // Conservation (8), per file per node per window layer.
    for (k, f) in files.iter().enumerate() {
        for slot in f.first_slot()..=f.last_slot() {
            for dc in network.dcs() {
                let node = TimeNode { dc, layer: slot };
                let mut expr = LinExpr::new();
                for (id, _) in graph.arcs_out(node) {
                    if let Some(&v) = mvars[k].get(&id) {
                        expr.add_term(v, 1.0);
                    }
                }
                if slot > f.first_slot() {
                    for (id, _) in graph.arcs_in(node) {
                        if let Some(&v) = mvars[k].get(&id) {
                            expr.add_term(v, -1.0);
                        }
                    }
                }
                let release = slot == f.first_slot() && dc == f.src;
                let rhs = if release { f.size_gb } else { 0.0 };
                if expr.is_empty() {
                    // postcard-analyze: allow(PA101) — rhs is 0.0 or a size.
                    if rhs != 0.0 {
                        // The source has no usable outgoing arcs at release:
                        // structurally infeasible.
                        return Err(PostcardError::Infeasible);
                    }
                    continue;
                }
                let row = m.eq(expr, rhs);
                if release {
                    rows.release_rows.push((row, k));
                }
            }
        }
    }

    Ok((PostcardProblem { model: m, graph, files: files.to_vec(), mvars, xvars }, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, FileId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// The paper's Fig. 1 network: D2 →(10) D3 direct, relay D2 →(1) D1 →(3)
    /// D3 (indices D1=0, D2=1, D3=2), ample capacity.
    fn fig1_net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 1000.0)
            .link(d(1), d(0), 1.0, 1000.0)
            .link(d(0), d(2), 3.0, 1000.0)
            .build()
    }

    #[test]
    fn fig1_motivating_example_reaches_cost_12() {
        // 6 MB within 15 minutes = 3 slots. Paper: direct costs 20/slot,
        // routed+scheduled costs 12/slot (Fig. 1(b)). Postcard must find 12.
        let net = fig1_net();
        let files = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)];
        let ledger = TrafficLedger::new(3);
        let sol = solve_postcard(&net, &files, &ledger).unwrap();
        assert!((sol.cost_per_slot - 12.0).abs() < 1e-5, "cost = {}", sol.cost_per_slot);
        let v = sol.plan.validate(&net, &files, |_, _, _| 0.0);
        assert!(v.is_empty(), "{v:?}");
        // The plan stores half the file somewhere (pipelining).
        assert!(sol.plan.total_holdover() > 0.0);
    }

    #[test]
    fn single_slot_deadline_forces_direct() {
        let net = fig1_net();
        let files = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 1, 0)];
        let ledger = TrafficLedger::new(3);
        let sol = solve_postcard(&net, &files, &ledger).unwrap();
        // One slot: the whole 6 must cross D2→D3 directly: cost 60.
        assert!((sol.cost_per_slot - 60.0).abs() < 1e-5, "cost = {}", sol.cost_per_slot);
        assert_eq!(sol.plan.volume(FileId(1), 0, d(1), d(2)), 6.0);
    }

    #[test]
    fn infeasible_when_capacity_too_small() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let files = [TransferRequest::new(FileId(1), d(0), d(1), 10.0, 2, 0)];
        let ledger = TrafficLedger::new(2);
        assert_eq!(solve_postcard(&net, &files, &ledger).unwrap_err(), PostcardError::Infeasible);
    }

    #[test]
    fn feasible_when_deadline_allows_draining() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let files = [TransferRequest::new(FileId(1), d(0), d(1), 10.0, 5, 0)];
        let ledger = TrafficLedger::new(2);
        let sol = solve_postcard(&net, &files, &ledger).unwrap();
        assert!(sol.plan.is_valid(&net, &files, |_, _, _| 0.0));
        // 2 GB per slot for 5 slots; charged volume 2, price 1.
        assert!((sol.cost_per_slot - 2.0).abs() < 1e-6);
    }

    #[test]
    fn already_paid_link_reused_for_free() {
        let net = fig1_net();
        let mut ledger = TrafficLedger::new(3);
        // Direct link D2→D3 already charged at 2 GB/slot in the past.
        ledger.record(d(1), d(2), 100, 2.0);
        let files = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)];
        let sol = solve_postcard(&net, &files, &ledger).unwrap();
        // Sending 2/slot over the paid direct link adds nothing: total bill
        // stays 10·2 = 20.
        assert!((sol.cost_per_slot - 20.0).abs() < 1e-5, "cost = {}", sol.cost_per_slot);
        assert!(sol.plan.is_valid(&net, &files, |_, _, _| 0.0));
    }

    #[test]
    fn respects_residual_capacity_from_ledger() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 4.0).build();
        let mut ledger = TrafficLedger::new(2);
        // 3 of 4 GB/slot already committed in slot 0.
        ledger.record(d(0), d(1), 0, 3.0);
        let files = [TransferRequest::new(FileId(1), d(0), d(1), 4.0, 2, 0)];
        let sol = solve_postcard(&net, &files, &ledger).unwrap();
        // Only 1 fits in slot 0, the other 3 must go in slot 1.
        let v01 = sol.plan.volume(FileId(1), 0, d(0), d(1));
        assert!(v01 <= 1.0 + 1e-6, "slot-0 volume {v01}");
        assert!(sol.plan.is_valid(&net, &files, |from, to, slot| {
            if from == d(0) && to == d(1) && slot == 0 {
                3.0
            } else {
                0.0
            }
        }));
    }

    #[test]
    fn two_files_share_cheap_link_across_time() {
        // Fig. 3's mechanism in miniature: an urgent file pays for a cheap
        // link; a patient file time-shifts onto the paid slots for free.
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 5.0).build();
        let files = [
            TransferRequest::new(FileId(1), d(0), d(1), 5.0, 1, 0), // urgent
            TransferRequest::new(FileId(2), d(0), d(1), 10.0, 3, 0), // patient
        ];
        let ledger = TrafficLedger::new(2);
        let sol = solve_postcard(&net, &files, &ledger).unwrap();
        assert!(sol.plan.is_valid(&net, &files, |_, _, _| 0.0));
        // Slot 0 is full with the urgent file; the patient file uses slots
        // 1–2 at 5 GB each: peak stays 5, cost 5.
        assert!((sol.cost_per_slot - 5.0).abs() < 1e-5, "cost = {}", sol.cost_per_slot);
    }

    #[test]
    fn ablation_without_relay_storage_costs_more_or_equal() {
        let net = fig1_net();
        let files = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)];
        let ledger = TrafficLedger::new(3);
        let full = solve_postcard(&net, &files, &ledger).unwrap();
        let cfg = PostcardConfig { allow_relay_storage: false, ..Default::default() };
        let no_relay = solve_postcard_with(&net, &files, &ledger, &cfg).unwrap();
        assert!(no_relay.cost_per_slot >= full.cost_per_slot - 1e-7);
        assert!(no_relay.plan.is_valid(&net, &files, |_, _, _| 0.0));
    }

    #[test]
    fn empty_batch_returns_current_bill() {
        let net = fig1_net();
        let mut ledger = TrafficLedger::new(3);
        ledger.record(d(1), d(2), 0, 3.0);
        let sol = solve_postcard(&net, &[], &ledger).unwrap();
        assert!((sol.cost_per_slot - 30.0).abs() < 1e-9);
        assert!(sol.plan.is_empty());
    }

    #[test]
    fn unknown_datacenter_rejected() {
        let net = fig1_net();
        let files = [TransferRequest::new(FileId(1), d(0), d(7), 1.0, 1, 0)];
        let ledger = TrafficLedger::new(3);
        assert!(matches!(
            solve_postcard(&net, &files, &ledger),
            Err(PostcardError::UnknownDatacenter { dc: 7, .. })
        ));
    }

    #[test]
    fn build_problem_exposes_structure_and_solves_identically() {
        let net = fig1_net();
        let files = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)];
        let ledger = TrafficLedger::new(3);
        let p = build_postcard_problem(&net, &files, &ledger, &PostcardConfig::default()).unwrap();
        assert_eq!(p.mvars.len(), 1);
        assert_eq!(p.xvars.len(), net.num_links());
        // Every arc variable's slot lies inside the file's window (Eq. 10).
        for &id in p.mvars[0].keys() {
            assert!(files[0].active_in(p.graph.arc(id).slot));
        }
        // Solving the assembled problem matches the one-shot API.
        let a = p.solve(&SimplexOptions::default()).unwrap();
        let b = solve_postcard(&net, &files, &ledger).unwrap();
        assert!((a.cost_per_slot - b.cost_per_slot).abs() < 1e-9);
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn build_problem_accepts_empty_batch() {
        let net = fig1_net();
        let ledger = TrafficLedger::new(3);
        let p = build_postcard_problem(&net, &[], &ledger, &PostcardConfig::default()).unwrap();
        assert!(p.mvars.is_empty());
        assert_eq!(p.model.num_constraints(), 0);
        assert_eq!(p.xvars.len(), net.num_links());
    }

    #[test]
    fn warm_started_resolve_matches_cold() {
        // Solve, commit the plan to the ledger, then solve the next slot's
        // same-shaped batch warm from the exported basis: objectives must
        // agree with a cold solve to 1e-6 and the warm path must pivot less
        // (here: not more).
        let net = fig1_net();
        let cfg = PostcardConfig::default();
        let ledger = TrafficLedger::new(8);
        let first = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)];
        let sol0 = solve_postcard_with(&net, &first, &ledger, &cfg).unwrap();
        assert!(sol0.basis.is_some());

        let mut ledger2 = ledger.clone();
        sol0.plan.apply_to_ledger(&mut ledger2);
        let second = [TransferRequest::new(FileId(2), d(1), d(2), 6.0, 3, 3)];
        let cold = solve_postcard_with(&net, &second, &ledger2, &cfg).unwrap();
        let warm =
            solve_postcard_warm_with(&net, &second, &ledger2, &cfg, sol0.basis.as_ref()).unwrap();
        assert!(
            (warm.cost_per_slot - cold.cost_per_slot).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.cost_per_slot,
            cold.cost_per_slot
        );
        assert!(warm.lp_iterations <= cold.lp_iterations);
        assert!(warm.basis.is_some());
    }

    #[test]
    fn warm_start_with_mismatched_basis_degrades_to_cold() {
        let net = fig1_net();
        let cfg = PostcardConfig::default();
        let ledger = TrafficLedger::new(4);
        // A basis from a 1-slot problem cannot fit the 3-slot problem.
        let small = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 1, 0)];
        let stale = solve_postcard_with(&net, &small, &ledger, &cfg).unwrap().basis;
        let files = [TransferRequest::new(FileId(2), d(1), d(2), 6.0, 3, 0)];
        let cold = solve_postcard_with(&net, &files, &ledger, &cfg).unwrap();
        let warm = solve_postcard_warm_with(&net, &files, &ledger, &cfg, stale.as_ref()).unwrap();
        assert!((warm.cost_per_slot - cold.cost_per_slot).abs() < 1e-9);
        assert_eq!(warm.plan, cold.plan);
    }

    #[test]
    fn charged_volumes_match_plan_peaks() {
        let net = fig1_net();
        let files = [TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)];
        let ledger = TrafficLedger::new(3);
        let sol = solve_postcard(&net, &files, &ledger).unwrap();
        for link in net.links() {
            let x = sol.charged[&(link.from.0, link.to.0)];
            let peak = sol.plan.link_peak(link.from, link.to);
            assert!(x >= peak - 1e-6, "X[{}->{}] = {x} < plan peak {peak}", link.from, link.to);
        }
    }
}
