//! Bulk transfers over leftover bandwidth (paper Sec. VI, problem 11).
//!
//! NetStitcher-style scenario: backups and migrations should ride bandwidth
//! that costs nothing extra — either capacity under the already-charged peak
//! (`X_ij` headroom), or any residual capacity at all when the operator does
//! not mind the bill. The objective is to maximize the delivered volume
//! within each file's deadline; store-and-forward is what makes night-valley
//! stitching across time zones possible.

use crate::error::PostcardError;
use postcard_lp::{LinExpr, Model, Sense, SimplexOptions, Status, Variable};
use postcard_net::{
    ArcId, ArcKind, FileId, Network, TimeExpandedGraph, TimeNode, TrafficLedger, TransferPlan,
    TransferRequest,
};
use std::collections::BTreeMap;

/// Which capacity a bulk transfer may consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkCapacityMode {
    /// Only bandwidth that is simultaneously unused *and* under the link's
    /// already-charged peak — transfers are free under the 100-th percentile
    /// scheme (the paper's "leftover bandwidth ... already paid" setting).
    PaidLeftoverOnly,
    /// Any residual capacity (the operator accepts possible extra charges).
    AnyResidual,
}

/// Result of [`solve_bulk_max_transfer`].
#[derive(Debug, Clone)]
pub struct BulkSolution {
    /// The slotted store-and-forward plan moving the delivered volumes.
    pub plan: TransferPlan,
    /// Delivered volume per file (`0 ≤ delivered ≤ F_k`).
    pub delivered: BTreeMap<FileId, f64>,
    /// Total delivered volume (the objective).
    pub total_delivered: f64,
}

impl BulkSolution {
    /// The file requests rewritten to their delivered sizes (files with
    /// negligible delivery dropped) — pass these to
    /// [`TransferPlan::validate`] to check the plan.
    pub fn delivered_requests(&self, files: &[TransferRequest]) -> Vec<TransferRequest> {
        files
            .iter()
            .filter_map(|f| {
                let y = self.delivered.get(&f.id).copied().unwrap_or(0.0);
                (y > 1e-6).then(|| {
                    TransferRequest::new(f.id, f.src, f.dst, y, f.deadline_slots, f.release_slot)
                })
            })
            .collect()
    }
}

/// Maximizes the bulk volume delivered within deadlines using only the
/// allowed capacity (see [`BulkCapacityMode`]).
///
/// # Errors
///
/// [`PostcardError::UnknownDatacenter`] for malformed requests;
/// [`PostcardError::Lp`] on solver failure. The problem is never infeasible
/// (delivering nothing is allowed).
pub fn solve_bulk_max_transfer(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    mode: BulkCapacityMode,
) -> Result<BulkSolution, PostcardError> {
    for f in files {
        for dc in [f.src, f.dst] {
            if dc.index() >= network.num_dcs() {
                return Err(PostcardError::UnknownDatacenter {
                    dc: dc.index(),
                    num_dcs: network.num_dcs(),
                });
            }
        }
    }
    if files.is_empty() {
        return Ok(BulkSolution {
            plan: TransferPlan::new(),
            delivered: BTreeMap::new(),
            total_delivered: 0.0,
        });
    }
    let t0 = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
    let t_end = files.iter().map(|f| f.last_slot()).max().unwrap_or(t0);
    let horizon = (t_end - t0 + 1) as usize;
    let graph = TimeExpandedGraph::with_residual(network, t0, horizon, |l, slot| {
        let residual = ledger.residual(network, l.from, l.to, slot);
        Some(match mode {
            BulkCapacityMode::AnyResidual => residual,
            BulkCapacityMode::PaidLeftoverOnly => {
                let headroom =
                    (ledger.peak(l.from, l.to) - ledger.volume(l.from, l.to, slot)).max(0.0);
                residual.min(headroom)
            }
        })
    });

    let mut m = Model::new(Sense::Maximize);
    let mut mvars: Vec<BTreeMap<ArcId, Variable>> = Vec::with_capacity(files.len());
    for f in files {
        let mut per_arc = BTreeMap::new();
        for (id, arc) in graph.arcs_usable_by(f) {
            if arc.kind == ArcKind::Transit && arc.capacity <= 0.0 {
                continue;
            }
            if arc.slot == f.last_slot() && arc.to != f.dst {
                continue;
            }
            if arc.kind == ArcKind::Transit && (arc.to == f.src || arc.from == f.dst) {
                continue; // prunable without affecting the optimum (see formulation.rs)
            }
            let v = m.add_var(
                format!("M[{}][{}->{}@{}]", f.id, arc.from.0, arc.to.0, arc.slot),
                0.0,
                f64::INFINITY,
            );
            per_arc.insert(id, v);
        }
        mvars.push(per_arc);
    }
    // Delivered-volume variables and the objective.
    let yvars: Vec<Variable> =
        files.iter().map(|f| m.add_var(format!("y[{}]", f.id), 0.0, f.size_gb)).collect();
    let mut obj = LinExpr::new();
    for &y in &yvars {
        obj.add_term(y, 1.0);
    }
    m.set_objective(obj);

    // Capacity per transit arc.
    for (id, arc) in graph.arcs() {
        if arc.kind != ArcKind::Transit {
            continue;
        }
        let mut load = LinExpr::new();
        for per_arc in &mvars {
            if let Some(&v) = per_arc.get(&id) {
                load.add_term(v, 1.0);
            }
        }
        if !load.is_empty() {
            m.leq(load, arc.capacity);
        }
    }

    // Conservation with variable delivery: the source emits exactly `y_k`.
    for (k, f) in files.iter().enumerate() {
        for slot in f.first_slot()..=f.last_slot() {
            for dc in network.dcs() {
                let node = TimeNode { dc, layer: slot };
                let mut expr = LinExpr::new();
                for (id, _) in graph.arcs_out(node) {
                    if let Some(&v) = mvars[k].get(&id) {
                        expr.add_term(v, 1.0);
                    }
                }
                if slot > f.first_slot() {
                    for (id, _) in graph.arcs_in(node) {
                        if let Some(&v) = mvars[k].get(&id) {
                            expr.add_term(v, -1.0);
                        }
                    }
                }
                if slot == f.first_slot() && dc == f.src {
                    expr.add_term(yvars[k], -1.0);
                }
                if !expr.is_empty() {
                    m.eq(expr, 0.0);
                }
            }
        }
    }

    let sol = m.solve_with(&SimplexOptions::default())?;
    match sol.status() {
        Status::Optimal => {
            let mut plan = TransferPlan::new();
            for (k, f) in files.iter().enumerate() {
                for (&id, &v) in &mvars[k] {
                    let value = sol.value(v);
                    if value > 1e-9 {
                        let arc = graph.arc(id);
                        plan.add(f.id, arc.slot, arc.from, arc.to, value);
                    }
                }
            }
            let delivered: BTreeMap<FileId, f64> =
                files.iter().zip(&yvars).map(|(f, &y)| (f.id, sol.value(y).max(0.0))).collect();
            Ok(BulkSolution { plan, total_delivered: delivered.values().sum(), delivered })
        }
        Status::Infeasible => unreachable!("delivering nothing is always feasible"),
        Status::Unbounded => unreachable!("deliveries are bounded by file sizes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// Two-hop chain D0 → D1 → D2, capacity 4 per slot each hop.
    fn chain() -> Network {
        NetworkBuilder::new(3).link(d(0), d(1), 2.0, 4.0).link(d(1), d(2), 2.0, 4.0).build()
    }

    #[test]
    fn delivers_everything_when_capacity_allows() {
        let net = chain();
        let ledger = TrafficLedger::new(3);
        let f = TransferRequest::new(FileId(1), d(0), d(2), 6.0, 3, 0);
        let sol =
            solve_bulk_max_transfer(&net, &[f], &ledger, BulkCapacityMode::AnyResidual).unwrap();
        assert!((sol.total_delivered - 6.0).abs() < 1e-6);
        let served = sol.delivered_requests(&[f]);
        assert!(sol.plan.is_valid(&net, &served, |_, _, _| 0.0));
    }

    #[test]
    fn partial_delivery_when_capacity_tight() {
        let net = chain();
        let ledger = TrafficLedger::new(3);
        // 2 slots × 4 GB bottleneck, but store-and-forward pipelining costs a
        // slot on the second hop: only slot-0 departures can reach D2 by the
        // deadline, so 4 GB arrive.
        let f = TransferRequest::new(FileId(1), d(0), d(2), 20.0, 2, 0);
        let sol =
            solve_bulk_max_transfer(&net, &[f], &ledger, BulkCapacityMode::AnyResidual).unwrap();
        assert!((sol.total_delivered - 4.0).abs() < 1e-6, "{}", sol.total_delivered);
        let served = sol.delivered_requests(&[f]);
        assert!(sol.plan.is_valid(&net, &served, |_, _, _| 0.0));
    }

    #[test]
    fn paid_leftover_mode_moves_nothing_on_unpaid_links() {
        let net = chain();
        let ledger = TrafficLedger::new(3); // nothing charged yet
        let f = TransferRequest::new(FileId(1), d(0), d(2), 6.0, 3, 0);
        let sol = solve_bulk_max_transfer(&net, &[f], &ledger, BulkCapacityMode::PaidLeftoverOnly)
            .unwrap();
        assert!(sol.total_delivered.abs() < 1e-9);
        assert!(sol.plan.is_empty());
    }

    #[test]
    fn paid_leftover_mode_rides_the_paid_valley() {
        let net = chain();
        let mut ledger = TrafficLedger::new(3);
        // Both hops charged at 3 GB/slot by past peak traffic; the file's
        // window is idle.
        ledger.record(d(0), d(1), 100, 3.0);
        ledger.record(d(1), d(2), 100, 3.0);
        let f = TransferRequest::new(FileId(1), d(0), d(2), 20.0, 3, 0);
        let sol = solve_bulk_max_transfer(&net, &[f], &ledger, BulkCapacityMode::PaidLeftoverOnly)
            .unwrap();
        // Hop 1 usable in slots 0–1 (departures reaching D2 by slot 2):
        // 2 × 3 = 6 GB delivered, entirely free.
        assert!((sol.total_delivered - 6.0).abs() < 1e-6, "{}", sol.total_delivered);
        let served = sol.delivered_requests(&[f]);
        assert!(sol.plan.is_valid(&net, &served, |_, _, _| 0.0));
        // Confirm the bill is unchanged after committing.
        let before = ledger.cost_per_slot(&net);
        let mut after = ledger.clone();
        sol.plan.apply_to_ledger(&mut after);
        assert!((after.cost_per_slot(&net) - before).abs() < 1e-9);
    }

    #[test]
    fn multiple_files_share_leftover_fairly_by_volume() {
        let net = chain();
        let mut ledger = TrafficLedger::new(3);
        ledger.record(d(0), d(1), 100, 4.0);
        ledger.record(d(1), d(2), 100, 4.0);
        let f1 = TransferRequest::new(FileId(1), d(0), d(2), 4.0, 3, 0);
        let f2 = TransferRequest::new(FileId(2), d(0), d(2), 4.0, 3, 0);
        let sol =
            solve_bulk_max_transfer(&net, &[f1, f2], &ledger, BulkCapacityMode::PaidLeftoverOnly)
                .unwrap();
        // Hop-1 leftover in slots 0–1 totals 8: both files fit.
        assert!((sol.total_delivered - 8.0).abs() < 1e-6, "{}", sol.total_delivered);
    }

    #[test]
    fn empty_batch_trivial() {
        let net = chain();
        let sol = solve_bulk_max_transfer(
            &net,
            &[],
            &TrafficLedger::new(3),
            BulkCapacityMode::AnyResidual,
        )
        .unwrap();
        assert_eq!(sol.total_delivered, 0.0);
    }
}
