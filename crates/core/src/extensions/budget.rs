//! Budget-constrained transfer maximization (paper Sec. VI, second
//! extension).
//!
//! During peak hours more files wait than the provider's traffic budget can
//! carry. The problem: maximize the volume delivered within deadlines while
//! keeping the bill `Σ a_ij · X_ij` at or under a budget — a convex problem
//! in the paper, an LP here thanks to the same `max`-linearization used by
//! the main formulation.

use crate::error::PostcardError;
use postcard_lp::{LinExpr, Model, Sense, SimplexOptions, Status, Variable};
use postcard_net::{
    ArcId, ArcKind, FileId, Network, TimeExpandedGraph, TimeNode, TrafficLedger, TransferPlan,
    TransferRequest,
};
use std::collections::BTreeMap;

/// Result of [`solve_budget_constrained`].
#[derive(Debug, Clone)]
pub struct BudgetSolution {
    /// The slotted store-and-forward plan.
    pub plan: TransferPlan,
    /// Delivered volume per file.
    pub delivered: BTreeMap<FileId, f64>,
    /// Total delivered volume (the objective).
    pub total_delivered: f64,
    /// The bill per slot after this plan (≤ the budget).
    pub cost_per_slot: f64,
}

impl BudgetSolution {
    /// The requests rewritten to delivered sizes (see
    /// [`crate::extensions::bulk::BulkSolution::delivered_requests`]).
    pub fn delivered_requests(&self, files: &[TransferRequest]) -> Vec<TransferRequest> {
        files
            .iter()
            .filter_map(|f| {
                let y = self.delivered.get(&f.id).copied().unwrap_or(0.0);
                (y > 1e-6).then(|| {
                    TransferRequest::new(f.id, f.src, f.dst, y, f.deadline_slots, f.release_slot)
                })
            })
            .collect()
    }
}

/// Maximizes delivered volume subject to `Σ a_ij · X_ij ≤ budget_per_slot`.
///
/// Note the sunk-cost floor: `X_ij ≥ X_ij(t−1)`, so a budget below the
/// *current* bill makes the problem infeasible — the bill cannot shrink.
///
/// # Errors
///
/// [`PostcardError::Infeasible`] when `budget_per_slot` is below the current
/// bill; [`PostcardError::UnknownDatacenter`] / [`PostcardError::Lp`] as in
/// [`crate::solve_postcard`].
pub fn solve_budget_constrained(
    network: &Network,
    files: &[TransferRequest],
    ledger: &TrafficLedger,
    budget_per_slot: f64,
) -> Result<BudgetSolution, PostcardError> {
    for f in files {
        for dc in [f.src, f.dst] {
            if dc.index() >= network.num_dcs() {
                return Err(PostcardError::UnknownDatacenter {
                    dc: dc.index(),
                    num_dcs: network.num_dcs(),
                });
            }
        }
    }
    let current_bill = ledger.cost_per_slot(network);
    if budget_per_slot < current_bill - 1e-9 {
        return Err(PostcardError::Infeasible);
    }
    if files.is_empty() {
        return Ok(BudgetSolution {
            plan: TransferPlan::new(),
            delivered: BTreeMap::new(),
            total_delivered: 0.0,
            cost_per_slot: current_bill,
        });
    }
    let t0 = files.iter().map(|f| f.first_slot()).min().unwrap_or(0);
    let t_end = files.iter().map(|f| f.last_slot()).max().unwrap_or(t0);
    let horizon = (t_end - t0 + 1) as usize;
    let graph = TimeExpandedGraph::with_residual(network, t0, horizon, |l, slot| {
        Some(ledger.residual(network, l.from, l.to, slot))
    });

    let mut m = Model::new(Sense::Maximize);
    let mut mvars: Vec<BTreeMap<ArcId, Variable>> = Vec::with_capacity(files.len());
    for f in files {
        let mut per_arc = BTreeMap::new();
        for (id, arc) in graph.arcs_usable_by(f) {
            if arc.kind == ArcKind::Transit && arc.capacity <= 0.0 {
                continue;
            }
            if arc.slot == f.last_slot() && arc.to != f.dst {
                continue;
            }
            if arc.kind == ArcKind::Transit && (arc.to == f.src || arc.from == f.dst) {
                continue; // prunable without affecting the optimum (see formulation.rs)
            }
            let v = m.add_var(
                format!("M[{}][{}->{}@{}]", f.id, arc.from.0, arc.to.0, arc.slot),
                0.0,
                f64::INFINITY,
            );
            per_arc.insert(id, v);
        }
        mvars.push(per_arc);
    }
    let yvars: Vec<Variable> =
        files.iter().map(|f| m.add_var(format!("y[{}]", f.id), 0.0, f.size_gb)).collect();
    let mut obj = LinExpr::new();
    for &y in &yvars {
        obj.add_term(y, 1.0);
    }
    m.set_objective(obj);

    // Charged volumes with floors, and the budget row.
    let mut xvars = BTreeMap::new();
    let mut bill = LinExpr::new();
    for link in network.links() {
        let x = m.add_var(
            format!("X[{}->{}]", link.from.0, link.to.0),
            ledger.peak(link.from, link.to),
            f64::INFINITY,
        );
        xvars.insert((link.from.0, link.to.0), x);
        bill.add_term(x, link.price);
    }
    m.leq(bill, budget_per_slot);

    // Capacity + envelopes per transit arc.
    for (id, arc) in graph.arcs() {
        if arc.kind != ArcKind::Transit {
            continue;
        }
        let mut load = LinExpr::new();
        for per_arc in &mvars {
            if let Some(&v) = per_arc.get(&id) {
                load.add_term(v, 1.0);
            }
        }
        if load.is_empty() {
            continue;
        }
        m.leq(load.clone(), arc.capacity);
        let used = ledger.volume(arc.from, arc.to, arc.slot);
        let mut env = load;
        env.add_term(xvars[&(arc.from.0, arc.to.0)], -1.0);
        m.leq(env, -used);
    }

    // Conservation with variable delivery.
    for (k, f) in files.iter().enumerate() {
        for slot in f.first_slot()..=f.last_slot() {
            for dc in network.dcs() {
                let node = TimeNode { dc, layer: slot };
                let mut expr = LinExpr::new();
                for (id, _) in graph.arcs_out(node) {
                    if let Some(&v) = mvars[k].get(&id) {
                        expr.add_term(v, 1.0);
                    }
                }
                if slot > f.first_slot() {
                    for (id, _) in graph.arcs_in(node) {
                        if let Some(&v) = mvars[k].get(&id) {
                            expr.add_term(v, -1.0);
                        }
                    }
                }
                if slot == f.first_slot() && dc == f.src {
                    expr.add_term(yvars[k], -1.0);
                }
                if !expr.is_empty() {
                    m.eq(expr, 0.0);
                }
            }
        }
    }

    let sol = m.solve_with(&SimplexOptions::default())?;
    // Lexicographic second pass: among all maximum-delivery solutions, pick
    // one with the smallest bill (the maximizer itself has no pressure to
    // spread load below the budget).
    let sol = if sol.status() == Status::Optimal {
        let total = sol.objective();
        let mut m2 = m.clone();
        let mut sum_y = LinExpr::new();
        for &y in &yvars {
            sum_y.add_term(y, 1.0);
        }
        m2.geq(sum_y, total - 1e-9 * (1.0 + total));
        m2.set_sense(Sense::Minimize);
        let mut bill2 = LinExpr::new();
        for link in network.links() {
            bill2.add_term(xvars[&(link.from.0, link.to.0)], link.price);
        }
        m2.set_objective(bill2);
        let sol2 = m2.solve_with(&SimplexOptions::default())?;
        if sol2.status() == Status::Optimal {
            sol2
        } else {
            sol
        }
    } else {
        sol
    };
    match sol.status() {
        Status::Optimal => {
            let mut plan = TransferPlan::new();
            for (k, f) in files.iter().enumerate() {
                for (&id, &v) in &mvars[k] {
                    let value = sol.value(v);
                    if value > 1e-9 {
                        let arc = graph.arc(id);
                        plan.add(f.id, arc.slot, arc.from, arc.to, value);
                    }
                }
            }
            let delivered: BTreeMap<FileId, f64> =
                files.iter().zip(&yvars).map(|(f, &y)| (f.id, sol.value(y).max(0.0))).collect();
            // The bill at the optimum: X variables sit at their binding
            // levels, but a maximizer has no pressure to push them down, so
            // recompute the *true* bill from the plan peaks and floors.
            let cost_per_slot = network
                .links()
                .map(|l| {
                    let peak = ledger.peak(l.from, l.to);
                    let mut max_load = peak;
                    for slot in t0..=t_end {
                        let load = ledger.volume(l.from, l.to, slot)
                            + plan.link_slot_total(l.from, l.to, slot);
                        max_load = max_load.max(load);
                    }
                    l.price * max_load
                })
                .sum();
            Ok(BudgetSolution {
                plan,
                total_delivered: delivered.values().sum(),
                delivered,
                cost_per_slot,
            })
        }
        Status::Infeasible => Err(PostcardError::Infeasible),
        Status::Unbounded => unreachable!("deliveries bounded by file sizes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn pair(price: f64, cap: f64) -> Network {
        NetworkBuilder::new(2).link(d(0), d(1), price, cap).build()
    }

    #[test]
    fn generous_budget_delivers_everything() {
        let net = pair(2.0, 10.0);
        let f = TransferRequest::new(FileId(1), d(0), d(1), 12.0, 3, 0);
        let sol = solve_budget_constrained(&net, &[f], &TrafficLedger::new(2), 1000.0).unwrap();
        assert!((sol.total_delivered - 12.0).abs() < 1e-5);
        // Best bill: 4 GB/slot × $2 = 8.
        assert!((sol.cost_per_slot - 8.0).abs() < 1e-6, "{}", sol.cost_per_slot);
        let served = sol.delivered_requests(&[f]);
        assert!(sol.plan.is_valid(&net, &served, |_, _, _| 0.0));
    }

    #[test]
    fn tight_budget_caps_delivery() {
        let net = pair(2.0, 10.0);
        let f = TransferRequest::new(FileId(1), d(0), d(1), 12.0, 3, 0);
        // Budget 4 ⇒ peak ≤ 2 GB/slot ⇒ at most 6 GB over 3 slots.
        let sol = solve_budget_constrained(&net, &[f], &TrafficLedger::new(2), 4.0).unwrap();
        assert!((sol.total_delivered - 6.0).abs() < 1e-5, "{}", sol.total_delivered);
        assert!(sol.cost_per_slot <= 4.0 + 1e-6);
    }

    #[test]
    fn zero_budget_delivers_nothing_on_fresh_network() {
        let net = pair(2.0, 10.0);
        let f = TransferRequest::new(FileId(1), d(0), d(1), 12.0, 3, 0);
        let sol = solve_budget_constrained(&net, &[f], &TrafficLedger::new(2), 0.0).unwrap();
        assert!(sol.total_delivered.abs() < 1e-9);
    }

    #[test]
    fn budget_below_sunk_bill_is_infeasible() {
        let net = pair(2.0, 10.0);
        let mut ledger = TrafficLedger::new(2);
        ledger.record(d(0), d(1), 5, 5.0); // bill = 10
        let f = TransferRequest::new(FileId(1), d(0), d(1), 1.0, 1, 0);
        assert_eq!(
            solve_budget_constrained(&net, &[f], &ledger, 5.0).unwrap_err(),
            PostcardError::Infeasible
        );
    }

    #[test]
    fn sunk_bill_carries_free_capacity() {
        let net = pair(2.0, 10.0);
        let mut ledger = TrafficLedger::new(2);
        // Paid peak 3 GB/slot in the past: bill 6 is sunk.
        ledger.record(d(0), d(1), 100, 3.0);
        let f = TransferRequest::new(FileId(1), d(0), d(1), 12.0, 3, 0);
        // Budget exactly the sunk bill: only free (under-peak) capacity
        // usable ⇒ 3 GB/slot × 3 slots = 9 GB.
        let sol = solve_budget_constrained(&net, &[f], &ledger, 6.0).unwrap();
        assert!((sol.total_delivered - 9.0).abs() < 1e-5, "{}", sol.total_delivered);
        assert!((sol.cost_per_slot - 6.0).abs() < 1e-6);
    }

    #[test]
    fn budget_spent_on_cheapest_route() {
        // Two links: cheap relay vs expensive direct; budget forces the
        // relay to be preferred.
        let net = NetworkBuilder::new(3)
            .link(d(0), d(1), 1.0, 10.0)
            .link(d(1), d(2), 1.0, 10.0)
            .link(d(0), d(2), 10.0, 10.0)
            .build();
        let f = TransferRequest::new(FileId(1), d(0), d(2), 10.0, 3, 0);
        let sol = solve_budget_constrained(&net, &[f], &TrafficLedger::new(3), 10.0).unwrap();
        // Relay at 5 GB/slot costs 2·5 = 10: exactly in budget, all 10 GB
        // delivered (send 5+5 on hop 1 in slots 0-1, etc.).
        assert!((sol.total_delivered - 10.0).abs() < 1e-5, "{}", sol.total_delivered);
        assert!(sol.cost_per_slot <= 10.0 + 1e-6);
    }
}
