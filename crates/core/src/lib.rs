//! # postcard-core — the Postcard optimizer
//!
//! The paper's primary contribution: minimizing inter-datacenter traffic
//! costs with **store-and-forward** at intermediate datacenters, formulated
//! on a time-expanded graph (paper Sec. V) and solved as a linear program.
//!
//! * [`solve_postcard`] — builds and solves the static traffic-allocation
//!   problem (Eq. 6–10) for a batch of files, returning a validated
//!   [`postcard_net::TransferPlan`];
//! * [`Scheduler`] — the common interface the online controller drives;
//!   implementations cover Postcard itself, the storage-free flow-based
//!   baselines from [`postcard_flow`], and a naive direct-path sender;
//! * [`OnlineController`] — the per-slot loop of Sec. III: files arrive,
//!   the scheduler decides, decisions are committed to the traffic ledger
//!   and constrain all later slots;
//! * [`extensions`] — the Sec. VI problems: bulk transfers over leftover
//!   bandwidth (problem 11, NetStitcher-like) and budget-constrained
//!   transfer maximization.
//!
//! The `max(·)` in the paper's objective is linearized exactly (see
//! `DESIGN.md`), so the convex program the authors solved with MATLAB
//! `fmincon` is solved here by [`postcard_lp`]'s simplex with identical
//! optima.
//!
//! # Example
//!
//! The paper's Fig. 1: a 6 MB file, an expensive direct link, and a cheap
//! two-hop relay. Postcard finds the 12-per-slot plan:
//!
//! ```
//! use postcard_core::solve_postcard;
//! use postcard_net::{DcId, FileId, NetworkBuilder, TrafficLedger, TransferRequest};
//!
//! # fn main() -> Result<(), postcard_core::PostcardError> {
//! let network = NetworkBuilder::new(3)
//!     .link(DcId(1), DcId(2), 10.0, 1000.0)
//!     .link(DcId(1), DcId(0), 1.0, 1000.0)
//!     .link(DcId(0), DcId(2), 3.0, 1000.0)
//!     .build();
//! let file = TransferRequest::new(FileId(1), DcId(1), DcId(2), 6.0, 3, 0);
//! let solution = solve_postcard(&network, &[file], &TrafficLedger::new(3))?;
//! assert!((solution.cost_per_slot - 12.0).abs() < 1e-4);
//! assert!(solution.plan.is_valid(&network, &[file], |_, _, _| 0.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod delta;
mod error;
pub mod extensions;
mod formulation;
mod headroom;
mod online;
mod scheduler;

pub use delta::{DeltaFormulation, SlotPrep};
pub use error::PostcardError;
pub use formulation::{
    build_postcard_problem, build_structural_postcard_problem, solve_postcard,
    solve_postcard_warm_with, solve_postcard_with, PostcardConfig, PostcardProblem, PostcardRows,
    PostcardSolution,
};
pub use headroom::HeadroomScheduler;
pub use online::{ControllerState, OnlineController, StepReport};
pub use scheduler::{
    Decision, DirectScheduler, FlowLpScheduler, GreedyScheduler, PostcardScheduler, Scheduler,
    SolveStats, TwoPhaseScheduler,
};
