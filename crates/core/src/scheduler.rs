//! The scheduler interface driven by the online controller, and its five
//! implementations: Postcard, the three storage-free flow baselines, and a
//! naive direct-path sender.

use crate::delta::DeltaFormulation;
use crate::error::PostcardError;
use crate::formulation::{solve_postcard_warm_with, PostcardConfig};
use postcard_flow::{
    greedy_cheapest_path, two_phase_baseline, unified_flow_lp_warm, BaselineError, FlowAssignment,
};
use postcard_lp::Basis;
use postcard_net::{Network, TrafficLedger, TransferPlan, TransferRequest};

/// What a scheduler decided for a batch.
///
/// Both variants must *fully* serve every file of the batch — schedulers are
/// all-or-nothing, and the [`crate::OnlineController`] handles admission by
/// retrying smaller batches.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// A slotted store-and-forward plan (`M_ij^k(n)` entries).
    Plan(TransferPlan),
    /// Constant per-file rates (the flow-based model).
    Rates(FlowAssignment),
}

/// Solver-side effort counters for the most recent [`Scheduler::schedule`]
/// call, surfaced so service runtimes can export them as metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Simplex pivots performed by the underlying LP solve (0 for
    /// combinatorial schedulers).
    pub lp_iterations: usize,
    /// How many of those pivots were dual-simplex pivots (non-zero only on
    /// warm re-solves resuming from a dual-feasible basis).
    pub dual_iterations: usize,
    /// Whether the solve was handed a previous basis to warm-start from.
    /// `false` for cold solves, non-LP schedulers, and the first solve of a
    /// warm-starting scheduler.
    pub warm_started: bool,
    /// Whether the solve advanced a standing [`DeltaFormulation`] in place
    /// (the incremental fast path).
    pub delta_hit: bool,
    /// Whether the solve (re)built a standing [`DeltaFormulation`] from
    /// scratch. `false` for non-incremental schedulers.
    pub rebuilt: bool,
}

/// A routing/scheduling policy for one batch of simultaneously released
/// files.
///
/// `Send` is a supertrait so schedulers (and chains of them) can be moved
/// into worker threads — the sharded runtime solves per-shard subproblems on
/// a `std::thread` pool. Every scheduler here is plain data, so the bound
/// costs nothing.
pub trait Scheduler: Send {
    /// Short human-readable name (used in reports and benchmarks).
    fn name(&self) -> &'static str;

    /// Decides how to serve `files`, given the committed traffic in
    /// `ledger`.
    ///
    /// # Errors
    ///
    /// [`PostcardError::Infeasible`] when the *whole batch* cannot be
    /// served; other [`PostcardError`] variants on solver failure.
    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError>;

    /// Effort counters for the most recent `schedule` call. Schedulers that
    /// do not track effort report the default (all zeros).
    fn last_stats(&self) -> SolveStats {
        SolveStats::default()
    }
}

impl Scheduler for Box<dyn Scheduler> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        self.as_mut().schedule(network, files, ledger)
    }

    fn last_stats(&self) -> SolveStats {
        self.as_ref().last_stats()
    }
}

fn map_baseline(e: BaselineError) -> PostcardError {
    match e {
        BaselineError::Infeasible => PostcardError::Infeasible,
        BaselineError::Lp(e) => PostcardError::Lp(e),
    }
}

/// The paper's contribution: store-and-forward cost minimization on the
/// time-expanded graph.
#[derive(Debug, Clone, Default)]
pub struct PostcardScheduler {
    /// Formulation options (relay-storage ablation, simplex tuning, warm
    /// starts, incremental standing model).
    pub config: PostcardConfig,
    last_stats: SolveStats,
    /// The optimal basis of the previous solve, carried across slots when
    /// `config.warm_start` is set (the non-incremental warm path).
    last_basis: Option<Basis>,
    /// The standing incremental formulation, lazily created on the first
    /// solve when `config.incremental` is set.
    delta: Option<DeltaFormulation>,
}

impl PostcardScheduler {
    /// Creates a scheduler with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scheduler with an explicit configuration.
    pub fn with_config(config: PostcardConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// The standing delta formulation's hit/rebuild counters, when
    /// `config.incremental` is active and at least one solve has run.
    pub fn delta_counters(&self) -> Option<(u64, u64)> {
        self.delta.as_ref().map(|d| (d.delta_hits(), d.rebuilds()))
    }
}

impl Scheduler for PostcardScheduler {
    fn name(&self) -> &'static str {
        if self.config.allow_relay_storage {
            "postcard"
        } else {
            "postcard-no-relay-storage"
        }
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        if self.config.incremental {
            let delta =
                self.delta.get_or_insert_with(|| DeltaFormulation::new(self.config.clone()));
            let sol = delta.solve(network, files, ledger)?;
            let delta_hit = delta.last_was_delta();
            self.last_stats = SolveStats {
                lp_iterations: sol.lp_iterations,
                dual_iterations: sol.dual_iterations,
                // The delta path always resumes from the standing basis.
                warm_started: delta_hit,
                delta_hit,
                rebuilt: !delta_hit && !files.is_empty(),
            };
            return Ok(Decision::Plan(sol.plan));
        }
        let warm = if self.config.warm_start { self.last_basis.as_ref() } else { None };
        let warm_started = warm.is_some();
        let sol = solve_postcard_warm_with(network, files, ledger, &self.config, warm)?;
        self.last_stats = SolveStats {
            lp_iterations: sol.lp_iterations,
            dual_iterations: sol.dual_iterations,
            warm_started,
            ..SolveStats::default()
        };
        if self.config.warm_start {
            // Keep the previous basis when a trivial (empty-batch) solve
            // exported none — the next real solve can still use it.
            if sol.basis.is_some() {
                self.last_basis = sol.basis;
            }
        }
        Ok(Decision::Plan(sol.plan))
    }

    fn last_stats(&self) -> SolveStats {
        self.last_stats
    }
}

/// The strongest storage-free baseline: one LP in the exact percentile cost
/// model (Sec. II-B's model, optimally solved).
#[derive(Debug, Clone, Default)]
pub struct FlowLpScheduler {
    /// When `true`, the optimal basis is carried between slots as a simplex
    /// warm start (results are unaffected — stale bases degrade to cold).
    pub warm_start: bool,
    last_stats: SolveStats,
    last_basis: Option<Basis>,
}

impl FlowLpScheduler {
    /// Creates a cold-solving scheduler (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scheduler that warm-starts each solve from the previous
    /// slot's optimal basis.
    pub fn warm_starting() -> Self {
        Self { warm_start: true, ..Self::default() }
    }
}

impl Scheduler for FlowLpScheduler {
    fn name(&self) -> &'static str {
        "flow-lp"
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        let warm = if self.warm_start { self.last_basis.as_ref() } else { None };
        let warm_started = warm.is_some();
        let out = unified_flow_lp_warm(network, files, ledger, warm).map_err(map_baseline)?;
        self.last_stats = SolveStats {
            lp_iterations: out.lp_iterations,
            dual_iterations: out.dual_iterations,
            warm_started,
            ..SolveStats::default()
        };
        if self.warm_start && out.basis.is_some() {
            self.last_basis = out.basis;
        }
        Ok(Decision::Rates(out.assignment))
    }

    fn last_stats(&self) -> SolveStats {
        self.last_stats
    }
}

/// The paper's two-phase flow decomposition: max concurrent flow over
/// already-paid capacity, then min-cost multicommodity flow for the rest.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoPhaseScheduler;

impl Scheduler for TwoPhaseScheduler {
    fn name(&self) -> &'static str {
        "flow-two-phase"
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        two_phase_baseline(network, files, ledger)
            .map(|o| Decision::Rates(o.assignment))
            .map_err(map_baseline)
    }
}

/// The cheapest-available-path greedy allocator (Fig. 3's narrative).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &'static str {
        "flow-greedy"
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        let out = greedy_cheapest_path(network, files, ledger);
        if out.unrouted.is_empty() {
            Ok(Decision::Rates(out.assignment))
        } else {
            Err(PostcardError::Infeasible)
        }
    }
}

/// No strategy at all: every file trickles over its direct link at
/// `F_k / T_k` per slot, waiting at the source (Fig. 1(a)'s behaviour).
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectScheduler;

impl Scheduler for DirectScheduler {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        let mut plan = TransferPlan::new();
        // Capacity consumed by this very batch, per (link, slot).
        let mut batch_used: std::collections::BTreeMap<(usize, usize, u64), f64> =
            std::collections::BTreeMap::new();
        for f in files {
            if !network.has_link(f.src, f.dst) {
                return Err(PostcardError::Infeasible);
            }
            let chunk = f.desired_rate();
            for slot in f.first_slot()..=f.last_slot() {
                let key = (f.src.0, f.dst.0, slot);
                let used = batch_used.get(&key).copied().unwrap_or(0.0);
                if chunk > ledger.residual(network, f.src, f.dst, slot) - used + 1e-9 {
                    return Err(PostcardError::Infeasible);
                }
                plan.add(f.id, slot, f.src, f.dst, chunk);
                *batch_used.entry(key).or_insert(0.0) += chunk;
                // Hold the not-yet-sent remainder at the source.
                let sent_after = chunk * (slot - f.first_slot() + 1) as f64;
                let remaining = (f.size_gb - sent_after).max(0.0);
                if remaining > 1e-12 {
                    plan.add(f.id, slot, f.src, f.src, remaining);
                }
            }
        }
        Ok(Decision::Plan(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, FileId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 100.0)
            .link(d(1), d(0), 1.0, 100.0)
            .link(d(0), d(2), 3.0, 100.0)
            .build()
    }

    fn file() -> TransferRequest {
        TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)
    }

    #[test]
    fn all_schedulers_serve_simple_batch() {
        let net = net();
        let ledger = TrafficLedger::new(3);
        let files = [file()];
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(PostcardScheduler::new()),
            Box::new(FlowLpScheduler::new()),
            Box::new(TwoPhaseScheduler),
            Box::new(GreedyScheduler),
            Box::new(DirectScheduler),
        ];
        for s in schedulers.iter_mut() {
            let decision = s.schedule(&net, &files, &ledger).unwrap_or_else(|e| {
                panic!("{} failed: {e}", s.name());
            });
            match decision {
                Decision::Plan(p) => {
                    assert!(p.is_valid(&net, &files, |_, _, _| 0.0), "{}", s.name())
                }
                Decision::Rates(a) => {
                    assert!(a.is_valid(&net, &files, |_, _, _| 0.0), "{}", s.name())
                }
            }
        }
    }

    #[test]
    fn direct_plan_shape() {
        let net = net();
        let ledger = TrafficLedger::new(3);
        let files = [file()];
        let Decision::Plan(p) = DirectScheduler.schedule(&net, &files, &ledger).unwrap() else {
            panic!("direct returns a plan");
        };
        // 2 GB on the direct link each slot, with 4 then 2 held at source.
        assert_eq!(p.volume(FileId(1), 0, d(1), d(2)), 2.0);
        assert_eq!(p.volume(FileId(1), 0, d(1), d(1)), 4.0);
        assert_eq!(p.volume(FileId(1), 2, d(1), d(2)), 2.0);
        assert_eq!(p.volume(FileId(1), 2, d(1), d(1)), 0.0);
    }

    #[test]
    fn direct_rejects_when_link_missing() {
        let net = NetworkBuilder::new(3).link(d(0), d(1), 1.0, 10.0).build();
        let files = [TransferRequest::new(FileId(1), d(1), d(2), 1.0, 1, 0)];
        assert_eq!(
            DirectScheduler.schedule(&net, &files, &TrafficLedger::new(3)).unwrap_err(),
            PostcardError::Infeasible
        );
    }

    #[test]
    fn direct_rejects_when_batch_overfills_link() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 3.0).build();
        let files = [
            TransferRequest::new(FileId(1), d(0), d(1), 2.0, 1, 0),
            TransferRequest::new(FileId(2), d(0), d(1), 2.0, 1, 0),
        ];
        assert_eq!(
            DirectScheduler.schedule(&net, &files, &TrafficLedger::new(2)).unwrap_err(),
            PostcardError::Infeasible
        );
    }

    #[test]
    fn greedy_all_or_nothing() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 1.0).build();
        let files = [TransferRequest::new(FileId(1), d(0), d(1), 9.0, 3, 0)]; // rate 3 > 1
        assert_eq!(
            GreedyScheduler.schedule(&net, &files, &TrafficLedger::new(2)).unwrap_err(),
            PostcardError::Infeasible
        );
    }

    #[test]
    fn scheduler_names_are_distinct() {
        let names = [
            PostcardScheduler::new().name(),
            FlowLpScheduler::new().name(),
            TwoPhaseScheduler.name(),
            GreedyScheduler.name(),
            DirectScheduler.name(),
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
