//! The Sec. VI extension problems, formulated with the same time-expansion
//! gadget as the main Postcard problem.
//!
//! * [`bulk`] — transfer as much bulk ("background") data as possible using
//!   only *leftover* bandwidth that is already paid for (the NetStitcher
//!   scenario, paper problem 11);
//! * [`budget`] — maximize the transferred volume subject to a hard traffic
//!   budget per slot.
//!
//! Both generalize the paper's fixed-delivery conservation (Eq. 8) with a
//! per-file *delivered volume* variable `0 ≤ y_k ≤ F_k`, so a file may be
//! partially served when full service is impossible — the natural reading
//! of "satisfy as many transfer requests as possible".

pub mod budget;
pub mod bulk;

pub use budget::{solve_budget_constrained, BudgetSolution};
pub use bulk::{solve_bulk_max_transfer, BulkCapacityMode, BulkSolution};
