//! Error types for the Postcard optimizer.

use postcard_lp::LpError;
use std::fmt;

/// Errors from building or solving a Postcard optimization problem.
#[derive(Debug, Clone, PartialEq)]
pub enum PostcardError {
    /// No feasible routing/scheduling exists: the batch cannot be delivered
    /// within deadlines under the residual capacities, even with
    /// store-and-forward.
    Infeasible,
    /// A file references a datacenter outside the network.
    UnknownDatacenter {
        /// The offending datacenter index.
        dc: usize,
        /// Number of datacenters in the network.
        num_dcs: usize,
    },
    /// The underlying LP solver failed numerically.
    Lp(LpError),
}

impl fmt::Display for PostcardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostcardError::Infeasible => {
                write!(f, "batch cannot be delivered within deadlines under residual capacities")
            }
            PostcardError::UnknownDatacenter { dc, num_dcs } => {
                write!(f, "datacenter {dc} out of range (network has {num_dcs})")
            }
            PostcardError::Lp(e) => write!(f, "LP solver failure: {e}"),
        }
    }
}

impl std::error::Error for PostcardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PostcardError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for PostcardError {
    fn from(e: LpError) -> Self {
        PostcardError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PostcardError::Lp(LpError::SingularBasis);
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        assert!(PostcardError::Infeasible.source().is_none());
    }
}
