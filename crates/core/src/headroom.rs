//! Percentile-headroom burst placement.
//!
//! Under q-percentile billing the top `(100−q)%` of each billing window's
//! slots are *free* (paper Sec. II-A) — once a window slot has been pushed
//! above the charged rank it is already paid for, and a window that still
//! has unspent free slots can absorb a whole burst without the bill moving.
//! [`HeadroomScheduler`] exploits exactly that: it serves a batch over
//! direct links only, first filling slots up to each link's current charged
//! *baseline* (which can never raise the charge) and then *converting* free
//! slots — deliberately pushing them above the baseline, spending the
//! window's burst budget. Anything it cannot place this way it declines, so
//! a fallback chain can hand the batch to the LP plan instead.
//!
//! Why the placements are safe, in order-statistic terms (window length `W`,
//! charged rank `r = ⌈q/100·W⌉`, free slots `F = W − r`, baseline `b` = the
//! r-th smallest window volume):
//!
//! * Raising a slot's volume to at most `b` cannot move the r-th smallest
//!   element above `b`: every element ≥ `b` keeps its rank or moves down.
//! * Raising a slot strictly above `b` puts it in the sorted suffix; as long
//!   as at most `F` slots sit strictly above `b`, the r-th smallest element
//!   is still one of the slots at or below `b`.
//!
//! The scheduler is deliberately stateless across calls — baselines and
//! budgets are recomputed from the committed ledger every slot — so resumed
//! runs behave bit-identically without snapshotting any policy state.

use crate::error::PostcardError;
use crate::scheduler::{Decision, Scheduler};
use postcard_net::{ChargingScheme, Network, TrafficLedger, TransferPlan, TransferRequest};
use std::collections::{BTreeMap, BTreeSet};

/// Places bursts into already-paid-for percentile headroom on direct links,
/// declining ([`PostcardError::Infeasible`]) whatever does not fit so a
/// cheaper tier never sees its feasible set shrink.
#[derive(Debug, Clone, Copy)]
pub struct HeadroomScheduler {
    charging: ChargingScheme,
}

impl HeadroomScheduler {
    /// Creates a scheduler burning headroom under `charging`.
    ///
    /// # Panics
    ///
    /// Panics on [`ChargingScheme::MaxPerSlot`]: with no free slots there is
    /// no headroom to burn and the scheduler would decline every batch.
    pub fn new(charging: ChargingScheme) -> Self {
        assert!(
            charging.free_slots() > 0,
            "headroom placement needs a percentile scheme with free slots"
        );
        Self { charging }
    }
}

impl Scheduler for HeadroomScheduler {
    fn name(&self) -> &'static str {
        "headroom"
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        let mut plan = TransferPlan::new();
        if files.is_empty() {
            return Ok(Decision::Plan(plan));
        }
        // Volume this very batch has already placed, per (link, slot).
        let mut batch_used: BTreeMap<(usize, usize, u64), f64> = BTreeMap::new();
        // Remaining burst budget per link, initialized lazily from the
        // ledger and decremented as this batch converts free slots.
        let mut budgets: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        // Slots this batch has already pushed above a link's baseline — a
        // converted slot is paid for once, not per file.
        let mut converted: BTreeMap<(usize, usize), BTreeSet<u64>> = BTreeMap::new();

        for f in files {
            if !network.has_link(f.src, f.dst) {
                return Err(PostcardError::Infeasible);
            }
            let link = (f.src.0, f.dst.0);
            let baseline = ledger.window_baseline(f.src, f.dst, self.charging, f.release_slot);
            let budget = *budgets.entry(link).or_insert_with(|| {
                ledger.burst_budget(f.src, f.dst, self.charging, f.release_slot)
            });
            // Only burn budget on windows with an established baseline:
            // spending the free slots on window-start valley traffic (a zero
            // baseline classifies *everything* as a burst) wastes the
            // window's entire budget on load any tier can serve.
            // postcard-analyze: allow(PA101) — exact-zero means "no traffic
            // recorded in this window yet", the sentinel record() preserves.
            let may_convert = baseline > 0.0;

            // The file must finish inside its deadline window, and this
            // policy never reasons across billing windows: a slot in the
            // next window has an unknown future baseline.
            let window_end =
                self.charging.window_start(f.release_slot) + self.charging.window_slots() as u64;
            let last = f.last_slot().min(window_end.saturating_sub(1));
            let mut remaining = f.size_gb;

            // Pass 1 — capacity that is free by construction: up to the
            // baseline on ordinary slots, up to the link capacity on slots
            // already above it (history's bursts, or ones this batch
            // converted — those are paid for once, not per file).
            for slot in f.first_slot()..=last {
                if remaining <= 1e-12 {
                    break;
                }
                let key = (link.0, link.1, slot);
                let used = batch_used.get(&key).copied().unwrap_or(0.0);
                let committed = ledger.volume(f.src, f.dst, slot) + used;
                let residual = ledger.residual(network, f.src, f.dst, slot) - used;
                if residual <= 1e-12 {
                    continue;
                }
                let above = committed > baseline + 1e-12
                    || converted.get(&link).is_some_and(|s| s.contains(&slot));
                let room =
                    if above { residual } else { (baseline - committed).max(0.0).min(residual) };
                let send = room.min(remaining);
                if send <= 1e-12 {
                    continue;
                }
                plan.add(f.id, slot, f.src, f.dst, send);
                *batch_used.entry(key).or_insert(0.0) += send;
                remaining -= send;
            }
            // Pass 2 — conversion: free room alone did not finish the file,
            // so deliberately push whole slots above the baseline while the
            // window's burst budget lasts.
            if remaining > 1e-9 && may_convert {
                for slot in f.first_slot()..=last {
                    if remaining <= 1e-12 {
                        break;
                    }
                    let key = (link.0, link.1, slot);
                    let used = batch_used.get(&key).copied().unwrap_or(0.0);
                    let residual = ledger.residual(network, f.src, f.dst, slot) - used;
                    if residual <= 1e-12 {
                        continue;
                    }
                    let slots = converted.entry(link).or_default();
                    if !slots.contains(&slot) {
                        if budget <= slots.len() {
                            break;
                        }
                        slots.insert(slot);
                    }
                    let send = residual.min(remaining);
                    plan.add(f.id, slot, f.src, f.dst, send);
                    *batch_used.entry(key).or_insert(0.0) += send;
                    remaining -= send;
                }
            }
            if remaining > 1e-9 {
                return Err(PostcardError::Infeasible);
            }
        }

        // Source holds: every file waits at its source until sent, slot by
        // slot, so the plan passes conservation validation.
        add_source_holds(&mut plan, files);
        Ok(Decision::Plan(plan))
    }
}

/// Adds `src → src` holdover entries for each file's unsent remainder in
/// every active slot, mirroring what [`crate::DirectScheduler`] emits.
fn add_source_holds(plan: &mut TransferPlan, files: &[TransferRequest]) {
    for f in files {
        let mut remaining = f.size_gb;
        for slot in f.first_slot()..=f.last_slot() {
            remaining -= plan.volume(f.id, slot, f.src, f.dst);
            if remaining > 1e-12 {
                plan.add(f.id, slot, f.src, f.src, remaining);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, FileId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn p95_20() -> ChargingScheme {
        // 20-slot windows at q=95: exactly 1 free slot per window.
        ChargingScheme::Percentile { q: 95.0, window_slots: 20 }
    }

    fn net() -> Network {
        NetworkBuilder::new(2).link(d(0), d(1), 1.0, 100.0).build()
    }

    fn valley_ledger() -> TrafficLedger {
        // Steady 4 GB/slot baseline traffic through slot 9.
        let mut l = TrafficLedger::new(2);
        for s in 0..10 {
            l.record(d(0), d(1), s, 4.0);
        }
        l
    }

    #[test]
    fn burst_fits_in_one_converted_slot() {
        let net = net();
        let ledger = valley_ledger();
        let mut s = HeadroomScheduler::new(p95_20());
        // 90 GB, 2-slot deadline: free room up to the baseline cannot hold
        // it, so the scheduler converts one slot up to capacity.
        let f = TransferRequest::new(FileId(1), d(0), d(1), 90.0, 2, 10);
        let decision = s.schedule(&net, &[f], &ledger).unwrap();
        let Decision::Plan(plan) = decision else { panic!("headroom emits plans") };
        assert!(plan.is_valid(&net, &[f], |i, j, slot| ledger.volume(i, j, slot)));
        // Committing the plan must not raise the window's charge above the
        // 4 GB baseline: the burst landed in the single free slot.
        let mut after = ledger.clone();
        plan.apply_to_ledger(&mut after);
        assert_eq!(after.window_baseline(d(0), d(1), p95_20(), 10), 4.0);
        assert_eq!(after.burst_budget(d(0), d(1), p95_20(), 10), 0);
    }

    #[test]
    fn declines_when_budget_exhausted() {
        let net = net();
        let mut ledger = valley_ledger();
        // The window's only free slot is already spent by history.
        ledger.record(d(0), d(1), 7, 60.0);
        let mut s = HeadroomScheduler::new(p95_20());
        // Slot 7 is above the baseline and usable to the brim (residual 36),
        // but 90 GB needs more than that plus free room — and no budget is
        // left to convert a second slot.
        let f = TransferRequest::new(FileId(1), d(0), d(1), 90.0, 2, 10);
        assert!(matches!(s.schedule(&net, &[f], &ledger), Err(PostcardError::Infeasible)));
    }

    #[test]
    fn reuses_already_paid_burst_slots() {
        let net = net();
        let mut ledger = valley_ledger();
        // History already pushed slot 10 above the baseline: filling it to
        // the brim is free, no budget needed.
        ledger.record(d(0), d(1), 10, 50.0);
        let mut s = HeadroomScheduler::new(p95_20());
        let f = TransferRequest::new(FileId(1), d(0), d(1), 46.0, 1, 10);
        let decision = s.schedule(&net, &[f], &ledger).unwrap();
        let Decision::Plan(plan) = decision else { panic!("headroom emits plans") };
        assert!((plan.volume(f.id, 10, d(0), d(1)) - 46.0).abs() < 1e-9);
        let mut after = ledger.clone();
        plan.apply_to_ledger(&mut after);
        // The charge is still the baseline and the budget untouched by us
        // (history spent it, we only refilled the paid slot).
        assert_eq!(after.window_baseline(d(0), d(1), p95_20(), 10), 4.0);
    }

    #[test]
    fn declines_zero_baseline_windows() {
        // An empty window has baseline 0: conversion is gated off, and a
        // burst bigger than the (zero) free room is declined rather than
        // wasting the fresh window's budget.
        let net = net();
        let ledger = TrafficLedger::new(2);
        let mut s = HeadroomScheduler::new(p95_20());
        let f = TransferRequest::new(FileId(1), d(0), d(1), 10.0, 2, 0);
        assert!(matches!(s.schedule(&net, &[f], &ledger), Err(PostcardError::Infeasible)));
    }

    #[test]
    fn free_fill_spreads_below_baseline() {
        let net = net();
        let ledger = valley_ledger();
        let mut s = HeadroomScheduler::new(p95_20());
        // Slots 10..13 are empty; the baseline is 4, so 3 slots of free
        // fill hold 12 GB without converting anything.
        let f = TransferRequest::new(FileId(1), d(0), d(1), 12.0, 3, 10);
        let decision = s.schedule(&net, &[f], &ledger).unwrap();
        let Decision::Plan(plan) = decision else { panic!("headroom emits plans") };
        let mut after = ledger.clone();
        plan.apply_to_ledger(&mut after);
        assert_eq!(after.window_baseline(d(0), d(1), p95_20(), 10), 4.0);
        // The whole budget is still unspent.
        assert_eq!(after.burst_budget(d(0), d(1), p95_20(), 10), 1);
    }

    #[test]
    fn empty_batch_yields_empty_plan() {
        let mut s = HeadroomScheduler::new(p95_20());
        let decision = s.schedule(&net(), &[], &TrafficLedger::new(2)).unwrap();
        let Decision::Plan(plan) = decision else { panic!("headroom emits plans") };
        assert!(plan.is_empty());
    }

    #[test]
    fn never_crosses_billing_windows() {
        let net = net();
        let mut ledger = TrafficLedger::new(2);
        // Baseline established late in window 0 (slots 17..20 at 4 GB).
        for s in 17..20 {
            ledger.record(d(0), d(1), s, 4.0);
        }
        let mut s = HeadroomScheduler::new(p95_20());
        // Released at slot 19 with a 4-slot deadline, but only slot 19 is in
        // this window — 90 GB cannot fit in one converted slot's residual
        // (96) minus... it can: 90 ≤ 96. Use a bigger file to force the
        // decline and prove slots 20+ were never used.
        let f = TransferRequest::new(FileId(1), d(0), d(1), 97.0, 4, 19);
        assert!(matches!(s.schedule(&net, &[f], &ledger), Err(PostcardError::Infeasible)));
        // A file that does fit in slot 19 alone is served there only.
        let f2 = TransferRequest::new(FileId(2), d(0), d(1), 90.0, 4, 19);
        let Decision::Plan(plan) = s.schedule(&net, &[f2], &ledger).unwrap() else {
            panic!("headroom emits plans")
        };
        assert!((plan.volume(f2.id, 19, d(0), d(1)) - 90.0).abs() < 1e-9);
        for slot in 20..=22 {
            // postcard-analyze: allow(PA101) — asserting the exact absence
            // of traffic, not comparing computed floats.
            assert_eq!(plan.volume(f2.id, slot, d(0), d(1)), 0.0);
        }
    }
}
