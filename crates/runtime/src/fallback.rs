//! The solver fallback chain: optionally the ALAP fast path, then the
//! Postcard LP, then the storage-free flow LP, then the greedy allocator —
//! so a slot is never missed.
//!
//! Tier order follows the feasible-set nesting of the underlying models
//! (Postcard ⊇ flow LP ⊇ greedy): every lower tier is cheaper to solve but
//! can only be costlier per bill. Three failure classes move the chain to
//! the next tier:
//!
//! * a **forced timeout** from the fault plan (the tier is unavailable this
//!   slot — modelling an aborted solve);
//! * a **budget overrun**: the tier solved, but the slot's cumulative solve
//!   time already exceeds the per-slot budget (checked post-hoc — solves
//!   are not preempted — and waived for the final tier, which always
//!   commits rather than miss the slot);
//! * a **numerical failure** (`PostcardError::Lp`), retried once on the
//!   same tier before falling through.
//!
//! [`PostcardError::Infeasible`] is *not* a fallback trigger: by the
//! nesting above, a batch infeasible for Postcard is infeasible for every
//! lower tier, so it propagates immediately and the online controller's
//! per-file admission takes over.
//!
//! The [`TierKind::Alap`] rung sits *outside* that nesting: it is a
//! constructive admission test (DCRoute-style As-Late-As-Possible placement
//! against residual capacity), so its commits are feasible by construction,
//! but its rejections are heuristic — the LP might still have placed the
//! file. The runtime accepts that trade-off for O(links × horizon)
//! admission latency, and demotes the LP to a periodic re-optimization
//! pass: on such slots the chain *skips* the ALAP rung
//! ([`AttemptOutcome::Skipped`], armed via [`FallbackChain::set_skip_alap`])
//! and lets the LP re-plan, after which the runtime rebases the residual
//! grid from the committed ledger ([`FallbackChain::mark_alap_dirty`]).

use crate::clock::Clock;
use postcard_core::{
    Decision, FlowLpScheduler, GreedyScheduler, HeadroomScheduler, PostcardConfig, PostcardError,
    PostcardScheduler, Scheduler, SolveStats,
};
use postcard_flow::AlapScheduler;
use postcard_net::{ChargingScheme, Network, TrafficLedger, TransferPlan, TransferRequest};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One tier of the fallback chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierKind {
    /// The percentile-headroom burst rung (percentile charging only): serves
    /// batches out of already-paid-for billing-window headroom, declining
    /// whatever would move the charged rank.
    Headroom,
    /// The ALAP fast-path admission rung (no LP solve).
    Alap,
    /// The paper's store-and-forward LP.
    Postcard,
    /// The storage-free flow LP.
    FlowLp,
    /// The cheapest-available-path greedy allocator.
    Greedy,
}

impl TierKind {
    /// Stable name used in metrics, CLI flags, and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            TierKind::Headroom => "headroom",
            TierKind::Alap => "alap",
            TierKind::Postcard => "postcard",
            TierKind::FlowLp => "flow-lp",
            TierKind::Greedy => "flow-greedy",
        }
    }

    /// Builds the tier's scheduler (cold solves).
    pub fn build(&self) -> Box<dyn Scheduler> {
        self.build_with(false)
    }

    /// Builds the tier's scheduler, enabling cross-slot simplex warm starts
    /// on the LP tiers when `warm_start` is set (combinatorial tiers ignore
    /// the flag).
    pub fn build_with(&self, warm_start: bool) -> Box<dyn Scheduler> {
        self.build_with_options(warm_start, false)
    }

    /// Builds the tier's scheduler with the full option set: `warm_start`
    /// as in [`TierKind::build_with`], plus `incremental`, which puts the
    /// Postcard tier on the standing delta formulation (slot-over-slot
    /// model advance + dual-simplex re-solve). Other tiers ignore
    /// `incremental`.
    pub fn build_with_options(&self, warm_start: bool, incremental: bool) -> Box<dyn Scheduler> {
        self.build_with_charging(warm_start, incremental, ChargingScheme::MaxPerSlot)
    }

    /// [`TierKind::build_with_options`], additionally supplying the run's
    /// charging scheme — required by the [`TierKind::Headroom`] rung, which
    /// places traffic against the scheme's billing windows. Other tiers
    /// ignore it.
    ///
    /// # Panics
    ///
    /// Panics when building [`TierKind::Headroom`] under a scheme with no
    /// free slots (notably [`ChargingScheme::MaxPerSlot`]) — runtime config
    /// validation rejects that combination before it gets here.
    pub fn build_with_charging(
        &self,
        warm_start: bool,
        incremental: bool,
        charging: ChargingScheme,
    ) -> Box<dyn Scheduler> {
        match self {
            TierKind::Headroom => Box::new(HeadroomScheduler::new(charging)),
            TierKind::Alap => Box::new(AlapTier::new()),
            TierKind::Postcard => Box::new(PostcardScheduler::with_config(PostcardConfig {
                warm_start,
                incremental,
                ..PostcardConfig::default()
            })),
            TierKind::FlowLp => {
                let mut s = FlowLpScheduler::new();
                s.warm_start = warm_start;
                Box::new(s)
            }
            TierKind::Greedy => Box::new(GreedyScheduler),
        }
    }

    /// The default chain, strongest first.
    pub fn default_chain() -> Vec<TierKind> {
        vec![TierKind::Postcard, TierKind::FlowLp, TierKind::Greedy]
    }
}

impl std::fmt::Display for TierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TierKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "headroom" => Ok(TierKind::Headroom),
            "alap" => Ok(TierKind::Alap),
            "postcard" => Ok(TierKind::Postcard),
            "flow-lp" => Ok(TierKind::FlowLp),
            "flow-greedy" | "greedy" => Ok(TierKind::Greedy),
            other => Err(format!("unknown tier `{other}`")),
        }
    }
}

/// Why a tier attempt ended the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The tier's decision was committed.
    Committed,
    /// Committed, but only after a retry of a numerical failure.
    CommittedAfterRetry,
    /// The fault plan forced this tier to time out.
    ForcedTimeout,
    /// The tier solved, but the slot budget was already spent.
    BudgetExceeded,
    /// The tier failed numerically twice.
    Failed,
    /// The batch is infeasible (propagated, ends the chain).
    Infeasible,
    /// The ALAP rung was deliberately skipped on a scheduled
    /// re-optimization slot so the LP re-plans the batch. Not a failure:
    /// distinct from [`AttemptOutcome::ForcedTimeout`] so skipped slots do
    /// not pollute fallback-activation metrics.
    Skipped,
    /// The headroom rung found no paid-for headroom for this batch and
    /// passed it on. Unlike [`AttemptOutcome::Infeasible`] this does NOT
    /// end the chain: headroom sits *outside* the feasible-set nesting (it
    /// is a billing policy, not a weaker solver), so its rejections say
    /// nothing about what the LP tiers can place.
    Declined,
}

/// The [`TierKind::Alap`] rung: wraps [`AlapScheduler`] as a chain tier.
///
/// The residual grid is *derived* state (link capacity minus the committed
/// ledger plus this slot's own reservations). Whenever the ledger changes
/// behind its back — an LP tier committed a re-optimization, a fault
/// degraded a link, or the runtime resumed from a snapshot — the runtime
/// marks the tier dirty and the next schedule call rebases the grid from
/// the ledger before admitting. That is what makes killed-and-resumed runs
/// bit-identical without persisting the grid.
#[derive(Debug)]
pub struct AlapTier {
    scheduler: AlapScheduler,
    dirty: bool,
}

impl AlapTier {
    /// A tier whose grid will be rebased from the ledger on first use.
    pub fn new() -> Self {
        Self { scheduler: AlapScheduler::default(), dirty: true }
    }

    /// Marks the residual grid stale; the next schedule call rebases it
    /// from the network and ledger it is handed.
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }
}

impl Default for AlapTier {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for AlapTier {
    fn name(&self) -> &'static str {
        "alap"
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        if files.is_empty() {
            // Nothing to admit: commit an empty plan without touching the
            // grid, so empty slots skip the LP entirely.
            return Ok(Decision::Plan(TransferPlan::new()));
        }
        if self.dirty {
            self.scheduler.rebase(network, ledger);
            self.dirty = false;
        }
        match self.scheduler.admit_batch(network, files) {
            Ok(plan) => Ok(Decision::Plan(plan)),
            // A rejection is *this rung's* admission verdict, not a solver
            // breakdown: report the batch infeasible so the controller's
            // per-file admission retries each file (instant per-file
            // admit/reject, still no LP).
            Err(_) => Err(PostcardError::Infeasible),
        }
    }

    fn last_stats(&self) -> SolveStats {
        SolveStats::default()
    }
}

/// One tier attempt within a slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptRecord {
    /// Which tier.
    pub tier: TierKind,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Cumulative slot solve time when the attempt finished.
    pub elapsed: Duration,
    /// LP effort of this attempt (0 for combinatorial tiers).
    pub lp_iterations: usize,
    /// Dual-simplex pivots within `lp_iterations` (non-zero only on warm
    /// re-solves resuming from a dual-feasible basis).
    pub dual_iterations: usize,
    /// Whether the attempt's solve was warm-started from a previous basis.
    pub warm_started: bool,
    /// Whether the attempt advanced a standing incremental model in place.
    pub delta_hit: bool,
    /// Whether the attempt (re)built a standing incremental model.
    pub rebuilt: bool,
}

/// A tier's scheduler. The ALAP rung keeps its concrete type so the chain
/// can reach [`AlapTier::mark_dirty`]; every other tier is a trait object.
enum TierScheduler {
    Alap(AlapTier),
    Dyn(Box<dyn Scheduler>),
}

impl TierScheduler {
    fn as_scheduler_mut(&mut self) -> &mut dyn Scheduler {
        match self {
            TierScheduler::Alap(t) => t,
            TierScheduler::Dyn(b) => b.as_mut(),
        }
    }

    fn last_stats(&self) -> SolveStats {
        match self {
            TierScheduler::Alap(t) => t.last_stats(),
            TierScheduler::Dyn(b) => b.last_stats(),
        }
    }
}

struct Tier {
    kind: TierKind,
    scheduler: TierScheduler,
}

/// A [`Scheduler`] that tries tiers in order until one commits.
pub struct FallbackChain {
    tiers: Vec<Tier>,
    clock: Box<dyn Clock>,
    slot_budget: Duration,
    forced_now: Vec<TierKind>,
    skip_alap: bool,
    records: Vec<AttemptRecord>,
    last_stats: SolveStats,
}

impl std::fmt::Debug for FallbackChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FallbackChain")
            .field("tiers", &self.tiers.iter().map(|t| t.kind).collect::<Vec<_>>())
            .field("slot_budget", &self.slot_budget)
            .field("forced_now", &self.forced_now)
            .finish_non_exhaustive()
    }
}

impl FallbackChain {
    /// Builds a chain over `tiers` (in fallback order) with a per-slot
    /// solve budget measured by `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn new(tiers: &[TierKind], slot_budget: Duration, clock: Box<dyn Clock>) -> Self {
        Self::with_warm_start(tiers, slot_budget, clock, false)
    }

    /// [`FallbackChain::new`], with cross-slot warm starts enabled on the LP
    /// tiers when `warm_start` is set.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn with_warm_start(
        tiers: &[TierKind],
        slot_budget: Duration,
        clock: Box<dyn Clock>,
        warm_start: bool,
    ) -> Self {
        Self::with_options(tiers, slot_budget, clock, warm_start, false)
    }

    /// [`FallbackChain::new`] with the full option set: `warm_start` as in
    /// [`FallbackChain::with_warm_start`], and `incremental` to put the
    /// Postcard tier on the standing delta formulation (see
    /// [`TierKind::build_with_options`]).
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn with_options(
        tiers: &[TierKind],
        slot_budget: Duration,
        clock: Box<dyn Clock>,
        warm_start: bool,
        incremental: bool,
    ) -> Self {
        Self::with_charging(
            tiers,
            slot_budget,
            clock,
            warm_start,
            incremental,
            ChargingScheme::MaxPerSlot,
        )
    }

    /// [`FallbackChain::with_options`], additionally supplying the run's
    /// [`ChargingScheme`] — required when `tiers` contains the
    /// [`TierKind::Headroom`] rung (see [`TierKind::build_with_charging`]).
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty, or contains [`TierKind::Headroom`] while
    /// `charging` has no free slots.
    pub fn with_charging(
        tiers: &[TierKind],
        slot_budget: Duration,
        clock: Box<dyn Clock>,
        warm_start: bool,
        incremental: bool,
        charging: ChargingScheme,
    ) -> Self {
        assert!(!tiers.is_empty(), "fallback chain needs at least one tier");
        Self {
            tiers: tiers
                .iter()
                .map(|&kind| Tier {
                    kind,
                    scheduler: match kind {
                        TierKind::Alap => TierScheduler::Alap(AlapTier::new()),
                        _ => TierScheduler::Dyn(kind.build_with_charging(
                            warm_start,
                            incremental,
                            charging,
                        )),
                    },
                })
                .collect(),
            clock,
            slot_budget,
            forced_now: Vec::new(),
            skip_alap: false,
            records: Vec::new(),
            last_stats: SolveStats::default(),
        }
    }

    /// Starts a slot: resets the stopwatch, attempt log, and reopt skip,
    /// and arms the forced timeouts scheduled for this slot.
    pub fn begin_slot(&mut self, slot: u64, forced: Vec<TierKind>) {
        self.clock.start_slot(slot);
        self.forced_now = forced;
        self.skip_alap = false;
        self.records.clear();
    }

    /// Arms (or disarms) the re-optimization skip for the current slot:
    /// while set, the ALAP rung records [`AttemptOutcome::Skipped`] and the
    /// chain falls through to the LP tiers, which re-plan the batch. Reset
    /// by [`FallbackChain::begin_slot`]. No-op for the last tier — a
    /// one-tier `alap` chain must still commit every slot.
    pub fn set_skip_alap(&mut self, skip: bool) {
        self.skip_alap = skip;
    }

    /// Marks every ALAP rung's residual grid stale (see
    /// [`AlapTier::mark_dirty`]): call after any ledger change the grid did
    /// not make itself — an LP tier's commit, a link degradation, a resume.
    pub fn mark_alap_dirty(&mut self) {
        for tier in &mut self.tiers {
            if let TierScheduler::Alap(t) = &mut tier.scheduler {
                t.mark_dirty();
            }
        }
    }

    /// Simulated clock access (used by tests and fault drivers to consume
    /// budget deterministically).
    pub fn clock_mut(&mut self) -> &mut dyn Clock {
        self.clock.as_mut()
    }

    /// All tier attempts since [`FallbackChain::begin_slot`] (several
    /// schedule calls accumulate here when the controller retries
    /// per-file admission).
    pub fn records(&self) -> &[AttemptRecord] {
        &self.records
    }

    /// The tier that committed the slot's first decision, if any.
    pub fn chosen_tier(&self) -> Option<TierKind> {
        self.records
            .iter()
            .find(|r| {
                matches!(r.outcome, AttemptOutcome::Committed | AttemptOutcome::CommittedAfterRetry)
            })
            .map(|r| r.tier)
    }

    /// Whether the headroom rung declined at least once this slot. Declines
    /// are a policy verdict, not a fallback activation, so the runtime's
    /// `slots_on_fallback_tier` counting excludes such slots.
    pub fn headroom_declined(&self) -> bool {
        self.records.iter().any(|r| r.outcome == AttemptOutcome::Declined)
    }

    fn record(&mut self, tier: TierKind, outcome: AttemptOutcome, stats: SolveStats) {
        self.records.push(AttemptRecord {
            tier,
            outcome,
            elapsed: self.clock.elapsed(),
            lp_iterations: stats.lp_iterations,
            dual_iterations: stats.dual_iterations,
            warm_started: stats.warm_started,
            delta_hit: stats.delta_hit,
            rebuilt: stats.rebuilt,
        });
    }
}

impl Scheduler for FallbackChain {
    fn name(&self) -> &'static str {
        "fallback-chain"
    }

    fn schedule(
        &mut self,
        network: &Network,
        files: &[TransferRequest],
        ledger: &TrafficLedger,
    ) -> Result<Decision, PostcardError> {
        let num_tiers = self.tiers.len();
        for i in 0..num_tiers {
            let kind = self.tiers[i].kind;
            let is_last = i + 1 == num_tiers;

            if kind == TierKind::Alap && self.skip_alap && !is_last {
                self.record(kind, AttemptOutcome::Skipped, SolveStats::default());
                continue;
            }

            if self.forced_now.contains(&kind) && !is_last {
                self.record(kind, AttemptOutcome::ForcedTimeout, SolveStats::default());
                continue;
            }

            let mut retried = false;
            let result = loop {
                match self.tiers[i].scheduler.as_scheduler_mut().schedule(network, files, ledger) {
                    Ok(d) => break Ok(d),
                    Err(PostcardError::Infeasible) => break Err(PostcardError::Infeasible),
                    Err(e) if !retried => {
                        retried = true;
                        let _ = e;
                    }
                    Err(e) => break Err(e),
                }
            };
            let stats = self.tiers[i].scheduler.last_stats();

            match result {
                Ok(decision) => {
                    if self.clock.elapsed() > self.slot_budget && !is_last {
                        self.record(kind, AttemptOutcome::BudgetExceeded, stats);
                        continue;
                    }
                    let outcome = if retried {
                        AttemptOutcome::CommittedAfterRetry
                    } else {
                        AttemptOutcome::Committed
                    };
                    self.record(kind, outcome, stats);
                    self.last_stats = stats;
                    return Ok(decision);
                }
                Err(PostcardError::Infeasible) if kind == TierKind::Headroom && !is_last => {
                    // Headroom declining a batch is routine (no budget left,
                    // indirect route needed, zero baseline): hand the batch
                    // to the real solvers instead of rejecting it.
                    self.record(kind, AttemptOutcome::Declined, stats);
                    continue;
                }
                Err(PostcardError::Infeasible) => {
                    self.record(kind, AttemptOutcome::Infeasible, stats);
                    return Err(PostcardError::Infeasible);
                }
                Err(e) => {
                    self.record(kind, AttemptOutcome::Failed, stats);
                    if is_last {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("the final tier either commits or returns its error");
    }

    fn last_stats(&self) -> SolveStats {
        self.last_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use postcard_net::{DcId, FileId, NetworkBuilder};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 100.0)
            .link(d(1), d(0), 1.0, 100.0)
            .link(d(0), d(2), 3.0, 100.0)
            .build()
    }

    fn chain() -> FallbackChain {
        FallbackChain::new(
            &TierKind::default_chain(),
            Duration::from_millis(100),
            Box::new(SimClock::new()),
        )
    }

    fn file() -> TransferRequest {
        TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)
    }

    #[test]
    fn healthy_chain_commits_on_first_tier() {
        let mut c = chain();
        c.begin_slot(0, vec![]);
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Plan(_)));
        assert_eq!(c.chosen_tier(), Some(TierKind::Postcard));
        assert_eq!(c.records().len(), 1);
        assert!(c.last_stats().lp_iterations > 0, "postcard solve should pivot");
    }

    #[test]
    fn forced_timeout_activates_next_tier() {
        let mut c = chain();
        c.begin_slot(0, vec![TierKind::Postcard]);
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Rates(_)), "flow LP returns rates");
        assert_eq!(c.chosen_tier(), Some(TierKind::FlowLp));
        assert_eq!(c.records()[0].outcome, AttemptOutcome::ForcedTimeout);
    }

    #[test]
    fn budget_overrun_falls_through_but_last_tier_always_commits() {
        let mut c = chain();
        c.begin_slot(0, vec![]);
        // Pre-spend the whole slot budget: every non-final tier is rejected
        // post-hoc, the final tier commits anyway.
        c.clock_mut().advance(Duration::from_secs(10));
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Rates(_)));
        assert_eq!(c.chosen_tier(), Some(TierKind::Greedy));
        assert_eq!(c.records()[0].outcome, AttemptOutcome::BudgetExceeded);
        assert_eq!(c.records()[1].outcome, AttemptOutcome::BudgetExceeded);
    }

    #[test]
    fn infeasible_propagates_without_fallback() {
        // 10 GB, 1 slot, capacity 2: infeasible for every tier.
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let f = TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0);
        let mut c = chain();
        c.begin_slot(0, vec![]);
        let err = c.schedule(&net, &[f], &TrafficLedger::new(2)).unwrap_err();
        assert_eq!(err, PostcardError::Infeasible);
        // Exactly one attempt: the chain did not try lower tiers.
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].outcome, AttemptOutcome::Infeasible);
    }

    #[test]
    fn forcing_every_tier_still_commits_via_final_tier() {
        let mut c = chain();
        c.begin_slot(0, TierKind::default_chain());
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Rates(_)));
        assert_eq!(c.chosen_tier(), Some(TierKind::Greedy));
    }

    #[test]
    fn tier_names_parse_round_trip() {
        for t in TierKind::default_chain() {
            assert_eq!(t.name().parse::<TierKind>().unwrap(), t);
        }
        assert_eq!("greedy".parse::<TierKind>().unwrap(), TierKind::Greedy);
        assert_eq!("alap".parse::<TierKind>().unwrap(), TierKind::Alap);
        assert_eq!(TierKind::Alap.name().parse::<TierKind>().unwrap(), TierKind::Alap);
        assert!("quantum".parse::<TierKind>().is_err());
    }

    fn alap_chain() -> FallbackChain {
        FallbackChain::new(
            &[TierKind::Alap, TierKind::Postcard],
            Duration::from_millis(100),
            Box::new(SimClock::new()),
        )
    }

    #[test]
    fn alap_rung_commits_without_lp_iterations() {
        let mut c = alap_chain();
        c.begin_slot(0, vec![]);
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Plan(_)));
        assert_eq!(c.chosen_tier(), Some(TierKind::Alap));
        assert_eq!(c.last_stats().lp_iterations, 0, "no LP was built");
    }

    #[test]
    fn reopt_skip_falls_through_to_the_lp() {
        let mut c = alap_chain();
        c.begin_slot(2, vec![]);
        c.set_skip_alap(true);
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Plan(_)));
        assert_eq!(c.chosen_tier(), Some(TierKind::Postcard));
        assert_eq!(c.records()[0].outcome, AttemptOutcome::Skipped);
        // The next slot re-arms: begin_slot clears the skip.
        c.begin_slot(3, vec![]);
        c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert_eq!(c.chosen_tier(), Some(TierKind::Alap));
    }

    #[test]
    fn skip_is_ignored_when_alap_is_the_only_tier() {
        let mut c = FallbackChain::new(
            &[TierKind::Alap],
            Duration::from_millis(100),
            Box::new(SimClock::new()),
        );
        c.begin_slot(2, vec![]);
        c.set_skip_alap(true);
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Plan(_)), "a one-tier chain must still commit");
        assert_eq!(c.chosen_tier(), Some(TierKind::Alap));
    }

    fn headroom_chain() -> FallbackChain {
        FallbackChain::with_charging(
            &[TierKind::Headroom, TierKind::Postcard],
            Duration::from_millis(100),
            Box::new(SimClock::new()),
            false,
            false,
            ChargingScheme::Percentile { q: 95.0, window_slots: 20 },
        )
    }

    #[test]
    fn headroom_decline_falls_through_without_rejecting() {
        // Empty ledger → zero baseline → headroom declines, but the batch is
        // perfectly LP-servable and must still commit.
        let mut c = headroom_chain();
        c.begin_slot(0, vec![]);
        let d = c.schedule(&net(), &[file()], &TrafficLedger::new(3)).unwrap();
        assert!(matches!(d, Decision::Plan(_)));
        assert_eq!(c.chosen_tier(), Some(TierKind::Postcard));
        assert_eq!(c.records()[0].outcome, AttemptOutcome::Declined);
        assert!(c.headroom_declined());
    }

    #[test]
    fn headroom_commits_when_budget_allows() {
        let scheme = ChargingScheme::Percentile { q: 95.0, window_slots: 20 };
        let mut ledger = TrafficLedger::new(3);
        // Established 4 GB baseline on the direct link 1 → 2.
        for s in 0..10 {
            ledger.record(d(1), d(2), s, 4.0);
        }
        let mut c = headroom_chain();
        c.begin_slot(10, vec![]);
        // A burst needing one converted slot: headroom takes it.
        let f = TransferRequest::new(FileId(7), d(1), d(2), 50.0, 2, 10);
        let dec = c.schedule(&net(), &[f], &ledger).unwrap();
        assert_eq!(c.chosen_tier(), Some(TierKind::Headroom));
        assert!(!c.headroom_declined());
        let Decision::Plan(plan) = dec else { panic!("headroom emits plans") };
        let mut after = ledger.clone();
        plan.apply_to_ledger(&mut after);
        // The window's charge did not move.
        assert_eq!(after.window_baseline(d(1), d(2), scheme, 10), 4.0);
    }

    #[test]
    fn headroom_name_parses() {
        assert_eq!("headroom".parse::<TierKind>().unwrap(), TierKind::Headroom);
        assert_eq!(TierKind::Headroom.name(), "headroom");
    }

    #[test]
    fn alap_rejection_propagates_as_infeasible() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let f = TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0);
        let mut c = alap_chain();
        c.begin_slot(0, vec![]);
        let err = c.schedule(&net, &[f], &TrafficLedger::new(2)).unwrap_err();
        assert_eq!(err, PostcardError::Infeasible);
        assert_eq!(c.records().len(), 1, "no LP attempt followed the rejection");
        assert_eq!(c.records()[0].tier, TierKind::Alap);
    }
}
