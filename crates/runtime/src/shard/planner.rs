//! Partitioning a slot's batch into per-shard subproblems.
//!
//! The mapping from request to shard must be a pure function of the
//! request — never of arrival order or thread timing — so that the same
//! workload always produces the same partition. Two keys are supported:
//! the owning tenant (encoded in the high bits of the
//! [`postcard_net::FileId`]) and the source region. Both are stable under
//! backlog carry-over: re-stamping a queued request to a later slot changes
//! neither its id nor its source.

use super::ShardBy;
use postcard_net::TransferRequest;

/// Maps requests to shards and partitions batches.
#[derive(Debug, Clone, Copy)]
pub struct ShardPlanner {
    shard_by: ShardBy,
    shards: usize,
}

impl ShardPlanner {
    /// A planner over `shards` shards keyed by `shard_by`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shard_by: ShardBy, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self { shard_by, shards }
    }

    /// The partition key in use.
    pub fn shard_by(&self) -> ShardBy {
        self.shard_by
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `request`.
    ///
    /// Tenants (or regions) beyond the shard count wrap around, so a
    /// 16-tenant workload on 4 shards still spreads evenly — tenants 0, 4,
    /// 8, 12 share shard 0.
    pub fn shard_of(&self, request: &TransferRequest) -> usize {
        match self.shard_by {
            ShardBy::Tenant => request.id.tenant() as usize % self.shards,
            ShardBy::Region => request.src.0 % self.shards,
        }
    }

    /// Splits `batch` into per-shard batches (index = shard), preserving
    /// batch order within each shard.
    pub fn partition(&self, batch: &[TransferRequest]) -> Vec<Vec<TransferRequest>> {
        let mut out = vec![Vec::new(); self.shards];
        for f in batch {
            out[self.shard_of(f)].push(*f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, FileId};

    fn req(id: FileId, src: usize) -> TransferRequest {
        TransferRequest::new(id, DcId(src), DcId(src + 1), 1.0, 2, 0)
    }

    #[test]
    fn tenant_partition_groups_by_id_high_bits() {
        let p = ShardPlanner::new(ShardBy::Tenant, 4);
        let batch = vec![
            req(FileId::for_tenant(0, 0), 0),
            req(FileId::for_tenant(1, 0), 2),
            req(FileId::for_tenant(2, 0), 4),
            req(FileId::for_tenant(5, 0), 6), // wraps onto shard 1
            req(FileId(7), 0),                // plain id = tenant 0
        ];
        let parts = p.partition(&batch);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].len(), 2, "tenant 0 and the plain id");
        assert_eq!(parts[1].len(), 2, "tenant 1 and tenant 5");
        assert_eq!(parts[2].len(), 1);
        assert!(parts[3].is_empty());
        // Batch order is preserved within a shard.
        assert_eq!(parts[0][0].id, FileId::for_tenant(0, 0));
        assert_eq!(parts[0][1].id, FileId(7));
    }

    #[test]
    fn region_partition_groups_by_source() {
        let p = ShardPlanner::new(ShardBy::Region, 2);
        let batch = vec![req(FileId(1), 0), req(FileId(2), 1), req(FileId(3), 2)];
        let parts = p.partition(&batch);
        assert_eq!(parts[0].iter().map(|f| f.id.0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(parts[1].iter().map(|f| f.id.0).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn shard_key_is_stable_under_carry_over() {
        let p = ShardPlanner::new(ShardBy::Tenant, 4);
        let r = TransferRequest::new(FileId::for_tenant(3, 9), DcId(0), DcId(1), 1.0, 5, 0);
        let carried = r.carried_to(2).unwrap();
        assert_eq!(p.shard_of(&r), p.shard_of(&carried));
        let p = ShardPlanner::new(ShardBy::Region, 4);
        assert_eq!(p.shard_of(&r), p.shard_of(&carried));
    }
}
