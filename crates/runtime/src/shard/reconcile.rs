//! Deterministic merge of per-shard plans into the central ledger view.
//!
//! Shards solve *optimistically*: each worker sees the full residual
//! capacity of every link (a static capacity split would forfeit work
//! conservation even on disjoint workloads). The price of optimism is that
//! two shards can together over-commit a link both plans touch. The
//! reconciler resolves that deterministically:
//!
//! 1. Shards are visited in **fixed index order** (the seeded shard
//!    ordering — shard indices are assigned by the pure partition key, so
//!    the order is a property of the workload, not of thread timing).
//! 2. Each shard's tentative decisions are validated against a working
//!    ledger that already contains every earlier shard's merged traffic
//!    (capacity, conservation, delivery — the full Eq. 7–10 check).
//! 3. A shard whose tentative plan no longer validates is **re-solved
//!    serially** against the working ledger, so it sees exactly what
//!    earlier shards committed. Its re-solve is final: by construction it
//!    validates against the state it solved on.
//!
//! On tenant-disjoint workloads no link is shared, step 2 never fails, and
//! the merge is a pure concatenation — full parallel speedup, and the
//! merged objective matches the unsharded LP (the property tests assert
//! this). Conflict attribution reuses the flow crate's path decomposition:
//! for a rates decision that over-committed `i → j`, the decomposed paths
//! crossing `i → j` name the contending transfers.

use super::pool::{self, ShardSolve, WorkerPool};
use postcard_core::Decision;
use postcard_flow::decompose_flow;
use postcard_flow::FlowViolation;
use postcard_net::{Network, PlanViolation, TrafficLedger, TransferRequest};

/// Validates one tentative decision against the working ledger; on failure
/// returns attribution lines naming the over-committed links and the
/// contending transfers.
fn validate_decision(
    network: &Network,
    working: &TrafficLedger,
    files: &[TransferRequest],
    decision: &Decision,
    shard: usize,
) -> Result<(), Vec<String>> {
    match decision {
        Decision::Plan(plan) => {
            let violations = plan.validate(network, files, |i, j, s| working.volume(i, j, s));
            if violations.is_empty() {
                return Ok(());
            }
            Err(violations
                .iter()
                .map(|v| match v {
                    PlanViolation::Capacity { from, to, slot, used, available } => format!(
                        "shard {shard}: link {from}->{to} over-committed at slot {slot} \
                         ({used:.3} GB planned, {available:.3} GB available)"
                    ),
                    other => format!("shard {shard}: {other:?}"),
                })
                .collect())
        }
        Decision::Rates(rates) => {
            let violations = rates.validate(network, files, |i, j, s| working.volume(i, j, s));
            if violations.is_empty() {
                return Ok(());
            }
            let mut lines = Vec::new();
            for v in &violations {
                match v {
                    FlowViolation::Capacity { from, to, slot, used, available } => {
                        lines.push(format!(
                            "shard {shard}: link {from}->{to} over-committed at slot {slot} \
                             ({used:.3} GB/slot of {available:.3} available)"
                        ));
                        // Attribute the hot link to paths: decompose each
                        // file's flow and name the shares crossing it.
                        for f in files {
                            let dec = decompose_flow(rates, f, network.num_dcs());
                            let rate = dec.rate_over(*from, *to);
                            if rate > 0.0 {
                                lines.push(format!(
                                    "shard {shard}:   {} sends {rate:.3} GB/slot over \
                                     {from}->{to}",
                                    f.id
                                ));
                            }
                        }
                    }
                    other => lines.push(format!("shard {shard}: {other:?}")),
                }
            }
            Err(lines)
        }
    }
}

fn apply_working(decision: &Decision, files: &[TransferRequest], working: &mut TrafficLedger) {
    match decision {
        Decision::Plan(plan) => plan.apply_to_ledger(working),
        Decision::Rates(rates) => rates.apply_to_ledger(files, working),
    }
}

/// Merges tentative shard solves in fixed shard order, re-solving shards
/// whose optimistic plans over-committed shared links. Returns the final
/// per-shard resolutions (same order); the caller applies the surviving
/// commits to the real ledger.
pub fn reconcile(
    network: &Network,
    base: &TrafficLedger,
    solves: Vec<ShardSolve>,
    pool: &mut WorkerPool,
    batches: &[Vec<TransferRequest>],
    directives: &pool::SlotDirectives,
) -> Vec<ShardSolve> {
    let mut working = base.clone();
    let mut resolved = Vec::with_capacity(solves.len());
    for mut solve in solves {
        if solve.degraded {
            resolved.push(solve);
            continue;
        }
        let mut diagnostics = Vec::new();
        let valid = solve.commits.iter().all(|(files, decision)| {
            match validate_decision(network, &working, files, decision, solve.shard) {
                Ok(()) => true,
                Err(mut lines) => {
                    diagnostics.append(&mut lines);
                    false
                }
            }
        });
        if valid {
            for (files, decision) in &solve.commits {
                apply_working(decision, files, &mut working);
            }
            resolved.push(solve);
            continue;
        }

        // Conflict: this shard's optimism lost. Re-solve it serially against
        // the working ledger (which contains every earlier shard's merged
        // traffic); the re-solve is deterministic — same chain on the same
        // long-lived worker, same batch, fixed position in the merge order.
        let shard = solve.shard;
        let resolve = pool.solve_one(shard, network, &working, &batches[shard], directives);
        debug_assert!(
            resolve.degraded
                || resolve.commits.iter().all(|(files, decision)| validate_decision(
                    network, &working, files, decision, shard
                )
                .is_ok()),
            "a re-solve against the working ledger must validate against it"
        );
        for (files, decision) in &resolve.commits {
            apply_working(decision, files, &mut working);
        }
        solve.commits = resolve.commits;
        solve.accepted = resolve.accepted;
        solve.rejected = resolve.rejected;
        solve.accepted_volume = resolve.accepted_volume;
        solve.rejected_volume = resolve.rejected_volume;
        solve.records = resolve.records;
        solve.chosen_tier = resolve.chosen_tier;
        solve.degraded = resolve.degraded;
        solve.wall_seconds += resolve.wall_seconds;
        solve.conflicted = true;
        solve.diagnostics = diagnostics;
        resolved.push(solve);
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::fallback::{FallbackChain, TierKind};
    use postcard_net::{DcId, FileId, NetworkBuilder};
    use std::time::Duration;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn chain(tiers: &[TierKind]) -> FallbackChain {
        FallbackChain::new(tiers, Duration::from_millis(250), Box::new(SimClock::new()))
    }

    fn two_shard_pool() -> WorkerPool {
        WorkerPool::new(vec![chain(&TierKind::default_chain()), chain(&TierKind::default_chain())])
    }

    #[test]
    fn disjoint_shards_merge_without_conflicts() {
        let net = NetworkBuilder::new(4)
            .link(d(0), d(1), 2.0, 100.0)
            .link(d(2), d(3), 3.0, 100.0)
            .build();
        let base = TrafficLedger::new(4);
        let batches = vec![
            vec![TransferRequest::new(FileId(1), d(0), d(1), 6.0, 3, 0)],
            vec![TransferRequest::new(FileId(2), d(2), d(3), 9.0, 3, 0)],
        ];
        let mut pool = two_shard_pool();
        let solves = pool.solve_parallel(&net, &base, &batches, &pool::SlotDirectives::plain(0));
        let resolved =
            reconcile(&net, &base, solves, &mut pool, &batches, &pool::SlotDirectives::plain(0));
        assert!(resolved.iter().all(|s| !s.conflicted && !s.degraded));
        assert_eq!(resolved[0].accepted, vec![FileId(1)]);
        assert_eq!(resolved[1].accepted, vec![FileId(2)]);
    }

    #[test]
    fn shared_link_over_commit_is_detected_and_resolved() {
        // One capacity-10 link; each shard alone would claim all of it.
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 10.0).build();
        let base = TrafficLedger::new(2);
        let batches = vec![
            vec![TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0)],
            vec![TransferRequest::new(FileId(2), d(0), d(1), 10.0, 1, 0)],
        ];
        let mut pool = two_shard_pool();
        let solves = pool.solve_parallel(&net, &base, &batches, &pool::SlotDirectives::plain(0));
        // Both optimistic solves admit their file (each saw an empty link).
        assert_eq!(solves[0].accepted, vec![FileId(1)]);
        assert_eq!(solves[1].accepted, vec![FileId(2)]);
        let resolved =
            reconcile(&net, &base, solves, &mut pool, &batches, &pool::SlotDirectives::plain(0));
        // Shard 0 keeps its plan; shard 1's re-solve finds no room and
        // rejects — the merged view never over-commits the link.
        assert!(!resolved[0].conflicted);
        assert!(resolved[1].conflicted);
        assert_eq!(resolved[0].accepted, vec![FileId(1)]);
        assert_eq!(resolved[1].rejected, vec![FileId(2)]);
        assert!(resolved[1].commits.is_empty());
        assert!(
            resolved[1].diagnostics.iter().any(|l| l.contains("over-committed")),
            "{:?}",
            resolved[1].diagnostics
        );
        // Replay the merged commits: capacity is respected.
        let mut ledger = base.clone();
        for s in &resolved {
            for (files, decision) in &s.commits {
                apply_working(decision, files, &mut ledger);
            }
        }
        assert!(ledger.volume(d(0), d(1), 0) <= 10.0 + 1e-9);
    }

    #[test]
    fn partial_shared_capacity_is_split_across_the_merge_order() {
        // Capacity 10, two 6-GB single-slot files from different shards:
        // shard 0 wins, shard 1's re-solve must reject (only 4 GB left).
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 10.0).build();
        let base = TrafficLedger::new(2);
        let batches = vec![
            vec![TransferRequest::new(FileId(1), d(0), d(1), 6.0, 1, 0)],
            vec![TransferRequest::new(FileId(2), d(0), d(1), 6.0, 1, 0)],
        ];
        let mut pool = two_shard_pool();
        let solves = pool.solve_parallel(&net, &base, &batches, &pool::SlotDirectives::plain(0));
        let resolved =
            reconcile(&net, &base, solves, &mut pool, &batches, &pool::SlotDirectives::plain(0));
        assert_eq!(resolved[0].accepted, vec![FileId(1)]);
        assert!(resolved[1].conflicted);
        assert_eq!(resolved[1].rejected, vec![FileId(2)]);
    }
}
