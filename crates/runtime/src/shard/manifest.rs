//! Per-shard snapshot files and the checkpoint manifest protocol.
//!
//! A sharded checkpoint is one manifest (the ordinary
//! [`RuntimeSnapshot`], which still carries the *full* global state — so
//! resume correctness never depends on the shard files) plus one snapshot
//! file per shard holding that shard's billing-attribution state. Shard
//! files are content-stamped: the file name embeds the stamp of the state
//! it holds, and a shard whose state did not change since the last
//! checkpoint is not rewritten.
//!
//! The write protocol is crash-safe at every kill point:
//!
//! 1. Changed shard files are written first, each atomically (temp +
//!    rename) under a *new* stamped name — the files the current manifest
//!    references are never touched.
//! 2. The manifest is renamed into place, atomically switching the
//!    checkpoint to the new shard-file set.
//! 3. Orphaned shard files (stamped names no manifest references any more)
//!    are deleted. A crash before this step leaves garbage, never
//!    corruption: the manifest only ever references files that were
//!    durable before it was.

use crate::snapshot::{RuntimeSnapshot, SNAPSHOT_VERSION};
use postcard_core::Decision;
use postcard_net::{TrafficLedger, TransferRequest};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One shard's slice of the runtime state: its attributed share of the
/// traffic ledger and its admission tallies.
///
/// The central controller remains the single source of billing truth; the
/// per-shard ledger attributes that traffic to the shard that committed
/// it, which is what a per-tenant bill needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardState {
    /// Traffic committed by this shard, on the full network grid.
    pub ledger: TrafficLedger,
    /// Files this shard admitted.
    pub accepted: u64,
    /// Files this shard rejected.
    pub rejected: u64,
    /// Volume admitted (GB).
    pub accepted_volume: f64,
    /// Volume rejected (GB).
    pub rejected_volume: f64,
    /// `1 + slot` of the last change, `0` while pristine. Embedded in the
    /// shard snapshot's file name so unchanged shards skip the rewrite.
    pub stamp: u64,
}

impl ShardState {
    /// A pristine state over `num_dcs` datacenters.
    pub fn new(num_dcs: usize) -> Self {
        Self {
            ledger: TrafficLedger::new(num_dcs),
            accepted: 0,
            rejected: 0,
            accepted_volume: 0.0,
            rejected_volume: 0.0,
            stamp: 0,
        }
    }

    /// Attributes a committed decision to this shard at `slot`.
    pub fn apply(&mut self, decision: &Decision, files: &[TransferRequest], slot: u64) {
        match decision {
            Decision::Plan(plan) => plan.apply_to_ledger(&mut self.ledger),
            Decision::Rates(rates) => rates.apply_to_ledger(files, &mut self.ledger),
        }
        self.stamp = slot + 1;
    }

    /// Records the shard's admission outcome for `slot`. A slot in which
    /// the shard saw no files leaves the state (and its stamp) untouched.
    pub fn note_admission(
        &mut self,
        accepted: u64,
        rejected: u64,
        accepted_volume: f64,
        rejected_volume: f64,
        slot: u64,
    ) {
        if accepted + rejected == 0 {
            return;
        }
        self.accepted += accepted;
        self.rejected += rejected;
        self.accepted_volume += accepted_volume;
        self.rejected_volume += rejected_volume;
        self.stamp = slot + 1;
    }
}

/// The on-disk form of one shard's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Format version — moves in lockstep with [`SNAPSHOT_VERSION`].
    pub version: u32,
    /// The shard index.
    pub shard: usize,
    /// The state's stamp, duplicated from [`ShardState::stamp`] so a
    /// misnamed or swapped file is detected against the manifest.
    pub stamp: u64,
    /// The shard's state.
    pub state: ShardState,
}

impl ShardSnapshot {
    /// Serializes to pretty JSON (same bit-exact float round-tripping as
    /// the manifest).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses and version-checks a shard snapshot (version probed before
    /// the typed decode, as for [`RuntimeSnapshot::from_json`]).
    ///
    /// # Errors
    ///
    /// Reports malformed JSON or an unsupported version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value =
            serde::json::parse(text).map_err(|e| format!("malformed shard snapshot: {e}"))?;
        let map = value.as_map().ok_or("malformed shard snapshot: not a JSON object")?;
        let version_value =
            serde::field(map, "version", "ShardSnapshot").map_err(|e| format!("{e}"))?;
        let version = u32::deserialize(version_value)
            .map_err(|e| format!("malformed shard snapshot: {e}"))?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "shard snapshot version {version} unsupported (expected {SNAPSHOT_VERSION})"
            ));
        }
        ShardSnapshot::deserialize(&value).map_err(|e| format!("malformed shard snapshot: {e}"))
    }

    /// Writes the shard snapshot atomically (temp + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// Reads and parses a shard snapshot file.
    ///
    /// # Errors
    ///
    /// Reports I/O failures, malformed JSON, or an unsupported version.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

/// A manifest entry pointing at one shard's snapshot file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRef {
    /// The shard index.
    pub shard: usize,
    /// Snapshot file name, relative to the manifest's directory.
    pub file: String,
    /// Stamp the referenced file must carry.
    pub stamp: u64,
}

/// The stamped file name for shard `shard` of manifest stem `stem`.
fn shard_file_name(stem: &str, shard: usize, stamp: u64) -> String {
    format!("{stem}.shard{shard}-{stamp}.json")
}

/// Whether `name` is a shard snapshot file belonging to manifest `stem`
/// (any shard, any stamp).
fn is_shard_file_of(stem: &str, name: &str) -> bool {
    let Some(rest) = name.strip_prefix(stem).and_then(|r| r.strip_prefix(".shard")) else {
        return false;
    };
    let Some(body) = rest.strip_suffix(".json") else {
        return false;
    };
    match body.split_once('-') {
        Some((shard, stamp)) => {
            !shard.is_empty()
                && !stamp.is_empty()
                && shard.bytes().all(|b| b.is_ascii_digit())
                && stamp.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// Writes a sharded checkpoint: changed shard files, then the manifest,
/// then orphan cleanup (see the module docs for the crash-safety
/// argument).
///
/// `saved_stamps[i]` is the stamp of shard `i`'s last durably written
/// file (`None` forces a write); it is updated in place as files land.
///
/// # Errors
///
/// Propagates I/O failures; the previously checkpointed manifest and the
/// files it references survive any failure.
pub fn save_sharded(
    path: &Path,
    mut snap: RuntimeSnapshot,
    states: &[ShardState],
    saved_stamps: &mut [Option<u64>],
) -> Result<(), String> {
    assert_eq!(states.len(), saved_stamps.len(), "one saved stamp per shard");
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let stem = path
        .file_stem()
        .ok_or_else(|| format!("checkpoint path {} has no file name", path.display()))?
        .to_string_lossy()
        .into_owned();

    let mut refs = Vec::with_capacity(states.len());
    for (shard, state) in states.iter().enumerate() {
        let name = shard_file_name(&stem, shard, state.stamp);
        let file_path = dir.join(&name);
        if saved_stamps[shard] != Some(state.stamp) || !file_path.exists() {
            ShardSnapshot {
                version: SNAPSHOT_VERSION,
                shard,
                stamp: state.stamp,
                state: state.clone(),
            }
            .save(&file_path)?;
            saved_stamps[shard] = Some(state.stamp);
        }
        refs.push(ShardRef { shard, file: name, stamp: state.stamp });
    }

    snap.shard_refs = refs.clone();
    snap.save(path)?;

    // Step 3: sweep stamped names no longer referenced. Best-effort — a
    // failure here leaves garbage the next sweep retries, never a broken
    // checkpoint.
    let keep: Vec<&str> = refs.iter().map(|r| r.file.as_str()).collect();
    if let Ok(entries) =
        std::fs::read_dir(if dir.as_os_str().is_empty() { Path::new(".") } else { &dir })
    {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if is_shard_file_of(&stem, &name) && !keep.contains(&name.as_ref()) {
                std::fs::remove_file(entry.path()).ok();
            }
        }
    }
    Ok(())
}

/// Loads the shard states a manifest references, in shard order.
///
/// # Errors
///
/// Reports missing or unreadable files, version mismatches, out-of-order
/// or incomplete manifests, and files whose embedded shard/stamp disagree
/// with the manifest (a swapped or stale file).
pub fn load_shard_states(
    manifest_path: &Path,
    refs: &[ShardRef],
    expected_shards: usize,
) -> Result<Vec<ShardState>, String> {
    if refs.len() != expected_shards {
        return Err(format!(
            "manifest references {} shard snapshots but the config declares {} shards",
            refs.len(),
            expected_shards
        ));
    }
    let dir = manifest_path.parent().map(Path::to_path_buf).unwrap_or_default();
    let mut states = Vec::with_capacity(refs.len());
    for (i, r) in refs.iter().enumerate() {
        if r.shard != i {
            return Err(format!(
                "manifest shard refs out of order: position {i} references shard {}",
                r.shard
            ));
        }
        let snap = ShardSnapshot::load(&dir.join(&r.file))?;
        if snap.shard != r.shard || snap.stamp != r.stamp {
            return Err(format!(
                "shard snapshot {} does not match its manifest entry \
                 (file is shard {} stamp {}, manifest expects shard {} stamp {})",
                r.file, snap.shard, snap.stamp, r.shard, r.stamp
            ));
        }
        states.push(snap.state);
    }
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalSchedule;
    use crate::faults::FaultPlan;
    use crate::metrics::MetricsRegistry;
    use crate::runtime::RuntimeConfig;
    use postcard_core::ControllerState;
    use postcard_net::{DcId, FileId, NetworkBuilder, TransferPlan};
    use std::path::PathBuf;

    fn manifest_sample(num_dcs: usize) -> RuntimeSnapshot {
        let network = NetworkBuilder::new(num_dcs).link(DcId(0), DcId(1), 1.0, 100.0).build();
        RuntimeSnapshot {
            version: SNAPSHOT_VERSION,
            config: RuntimeConfig::default(),
            num_dcs,
            links: RuntimeSnapshot::links_of(&network),
            arrivals: ArrivalSchedule::default(),
            faults: FaultPlan::none(),
            queue: Vec::new(),
            queue_dropped: 0,
            controller: ControllerState {
                ledger: TrafficLedger::new(num_dcs),
                cost_history: vec![0.1 + 0.2],
                total_accepted: 0,
                total_rejected: 0,
                accepted_volume: 0.0,
                rejected_volume: 0.0,
            },
            metrics: MetricsRegistry::new(),
            pending_restores: Vec::new(),
            shard_refs: Vec::new(),
            next_slot: 0,
            num_slots: 4,
        }
    }

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("postcard_manifest_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn stamped_state(num_dcs: usize, slot: u64) -> ShardState {
        let mut s = ShardState::new(num_dcs);
        let f = TransferRequest::new(FileId(1), DcId(0), DcId(1), 3.0, 2, slot);
        let mut plan = TransferPlan::new();
        plan.add(FileId(1), slot, DcId(0), DcId(1), 3.0);
        s.apply(&Decision::Plan(plan), &[f], slot);
        s.note_admission(1, 0, 3.0, 0.0, slot);
        s
    }

    #[test]
    fn state_stamps_only_on_change() {
        let mut s = ShardState::new(2);
        assert_eq!(s.stamp, 0);
        s.note_admission(0, 0, 0.0, 0.0, 7);
        assert_eq!(s.stamp, 0, "an idle slot must not dirty the state");
        s.note_admission(2, 1, 5.0, 1.0, 0);
        assert_eq!(s.stamp, 1, "slot 0 activity must be distinguishable from pristine");
        assert_eq!((s.accepted, s.rejected), (2, 1));
    }

    #[test]
    fn shard_snapshot_round_trips_bit_exactly() {
        let state = stamped_state(2, 3);
        let snap = ShardSnapshot { version: SNAPSHOT_VERSION, shard: 1, stamp: state.stamp, state };
        let back = ShardSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn shard_snapshot_version_is_probed_first() {
        let err = ShardSnapshot::from_json(r#"{"version": 5}"#).unwrap_err();
        assert!(err.contains("shard snapshot version 5 unsupported"), "{err}");
        assert!(!err.contains("missing field"), "{err}");
    }

    #[test]
    fn save_writes_manifest_and_shard_files_and_resume_round_trips() {
        let dir = scratch_dir("round_trip");
        let path = dir.join("ckpt.json");
        let states = vec![stamped_state(2, 0), ShardState::new(2)];
        let mut stamps = vec![None, None];
        save_sharded(&path, manifest_sample(2), &states, &mut stamps).unwrap();

        let manifest = RuntimeSnapshot::load(&path).unwrap();
        assert_eq!(manifest.shard_refs.len(), 2);
        assert_eq!(manifest.shard_refs[0].file, "ckpt.shard0-1.json");
        assert_eq!(manifest.shard_refs[1].file, "ckpt.shard1-0.json");
        let back = load_shard_states(&path, &manifest.shard_refs, 2).unwrap();
        assert_eq!(back, states);
        assert_eq!(stamps, vec![Some(1), Some(0)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchanged_shard_files_are_not_rewritten() {
        let dir = scratch_dir("skip_rewrite");
        let path = dir.join("ckpt.json");
        let states = vec![stamped_state(2, 0)];
        let mut stamps = vec![None];
        save_sharded(&path, manifest_sample(2), &states, &mut stamps).unwrap();
        // Scribble on the shard file; a second checkpoint with the same
        // stamp must leave it alone.
        let shard_file = dir.join("ckpt.shard0-1.json");
        std::fs::write(&shard_file, "scribble").unwrap();
        save_sharded(&path, manifest_sample(2), &states, &mut stamps).unwrap();
        assert_eq!(std::fs::read_to_string(&shard_file).unwrap(), "scribble");
        // But a `None` stamp (fresh resume) forces the rewrite.
        let mut stamps = vec![None];
        save_sharded(&path, manifest_sample(2), &states, &mut stamps).unwrap();
        assert_ne!(std::fs::read_to_string(&shard_file).unwrap(), "scribble");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_stamped_files_are_swept() {
        let dir = scratch_dir("orphans");
        let path = dir.join("ckpt.json");
        let orphan = dir.join("ckpt.shard0-9.json");
        std::fs::write(&orphan, "old").unwrap();
        let unrelated = dir.join("other.shard0-9.json");
        std::fs::write(&unrelated, "keep").unwrap();
        let states = vec![stamped_state(2, 0)];
        let mut stamps = vec![None];
        save_sharded(&path, manifest_sample(2), &states, &mut stamps).unwrap();
        assert!(!orphan.exists(), "stale stamped file must be swept");
        assert!(unrelated.exists(), "files of other manifests are untouched");
        assert!(dir.join("ckpt.shard0-1.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_shard_file_is_rejected() {
        let dir = scratch_dir("mismatch");
        let path = dir.join("ckpt.json");
        let states = vec![stamped_state(2, 0), stamped_state(2, 1)];
        let mut stamps = vec![None, None];
        save_sharded(&path, manifest_sample(2), &states, &mut stamps).unwrap();
        let manifest = RuntimeSnapshot::load(&path).unwrap();
        // Swap the two shard files behind the manifest's back.
        let a = dir.join(&manifest.shard_refs[0].file);
        let b = dir.join(&manifest.shard_refs[1].file);
        let tmp = dir.join("swap.tmp");
        std::fs::rename(&a, &tmp).unwrap();
        std::fs::rename(&b, &a).unwrap();
        std::fs::rename(&tmp, &b).unwrap();
        let err = load_shard_states(&path, &manifest.shard_refs, 2).unwrap_err();
        assert!(err.contains("does not match its manifest entry"), "{err}");
        // Wrong shard count is caught before any file is touched.
        let err = load_shard_states(&path, &manifest.shard_refs, 3).unwrap_err();
        assert!(err.contains("declares 3 shards"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_file_name_matching_is_strict() {
        assert!(is_shard_file_of("ckpt", "ckpt.shard0-1.json"));
        assert!(is_shard_file_of("ckpt", "ckpt.shard12-40.json"));
        assert!(!is_shard_file_of("ckpt", "ckpt.json"));
        assert!(!is_shard_file_of("ckpt", "other.shard0-1.json"));
        assert!(!is_shard_file_of("ckpt", "ckpt.shard0-1.tmp"));
        assert!(!is_shard_file_of("ckpt", "ckpt.shardx-1.json"));
        assert!(!is_shard_file_of("ckpt", "ckpt.shard0.json"));
    }
}
