//! The `std::thread` worker pool running per-shard solves in parallel.
//!
//! Each shard's worker replays the online controller's step semantics —
//! whole-batch solve, then per-file admission in arrival order on
//! infeasibility — against an *overlay* ledger: a clone of the central
//! ledger that accumulates only this shard's own tentative commits. The
//! central ledger is never touched from a worker thread; the reconciler
//! merges tentative results afterwards in fixed shard order.
//!
//! Workers are scoped threads spawned fresh each slot
//! ([`std::thread::scope`]): the per-shard [`FallbackChain`]s live on the
//! engine and are lent to the workers as `&mut`, so LP warm-start bases
//! carry across slots without any channel plumbing. Results are collected
//! by joining handles in shard-index order — thread *scheduling* affects
//! only wall-clock time, never the merged outcome.

use crate::clock::WallStopwatch;
use crate::fallback::{AttemptRecord, FallbackChain, TierKind};
use postcard_core::{Decision, PostcardError, Scheduler};
use postcard_net::{FileId, Network, TrafficLedger, TransferRequest};

/// Per-slot solve directives shared by every shard of a slot: which slot
/// is being solved and the fault/re-optimization state that must apply
/// identically to the parallel solves and any serial conflict re-solve.
#[derive(Debug, Clone, Default)]
pub struct SlotDirectives {
    /// The slot being solved.
    pub slot: u64,
    /// Tiers fault injection forces to time out this slot.
    pub forced: Vec<TierKind>,
    /// Whether the ALAP fast-path rung is skipped (LP re-optimization slot).
    pub skip_alap: bool,
}

impl SlotDirectives {
    /// Directives for an unforced, fast-path-enabled slot.
    pub fn plain(slot: u64) -> Self {
        Self { slot, ..Self::default() }
    }
}

/// One shard's tentative (pre-reconciliation) slot result.
#[derive(Debug, Clone)]
pub struct ShardSolve {
    /// The shard index.
    pub shard: usize,
    /// Size of the shard's batch this slot.
    pub batch_len: usize,
    /// Tentative commits: each decision with the files it serves, in
    /// commit order.
    pub commits: Vec<(Vec<TransferRequest>, Decision)>,
    /// Files admitted, in batch order.
    pub accepted: Vec<FileId>,
    /// Files rejected, in batch order.
    pub rejected: Vec<FileId>,
    /// Admitted volume (GB).
    pub accepted_volume: f64,
    /// Rejected volume (GB).
    pub rejected_volume: f64,
    /// Tier attempts recorded while solving this shard (re-solve attempts
    /// are appended by the reconciler).
    pub records: Vec<AttemptRecord>,
    /// The tier that committed the shard's first decision.
    pub chosen_tier: Option<TierKind>,
    /// The chain hard-failed; the shard committed nothing and its entries
    /// should be requeued.
    pub degraded: bool,
    /// Set by the reconciler when the optimistic solve over-committed a
    /// shared link and the shard was re-solved serially.
    pub conflicted: bool,
    /// Human-readable conflict attribution (reconciler-filled).
    pub diagnostics: Vec<String>,
    /// Real wall-clock seconds this shard's solve took (non-deterministic;
    /// exported only through the wall-metrics registry).
    pub wall_seconds: f64,
}

impl ShardSolve {
    fn empty(shard: usize) -> Self {
        Self {
            shard,
            batch_len: 0,
            commits: Vec::new(),
            accepted: Vec::new(),
            rejected: Vec::new(),
            accepted_volume: 0.0,
            rejected_volume: 0.0,
            records: Vec::new(),
            chosen_tier: None,
            degraded: false,
            conflicted: false,
            diagnostics: Vec::new(),
            wall_seconds: 0.0,
        }
    }
}

/// Applies a tentative decision to the overlay ledger.
fn apply_overlay(decision: &Decision, files: &[TransferRequest], overlay: &mut TrafficLedger) {
    match decision {
        Decision::Plan(plan) => plan.apply_to_ledger(overlay),
        Decision::Rates(rates) => rates.apply_to_ledger(files, overlay),
    }
}

/// Solves one shard's batch against `base`, mirroring
/// [`postcard_core::OnlineController::step`]'s admission semantics on an
/// overlay ledger.
///
/// On a non-infeasible scheduler error the shard is marked degraded and
/// commits nothing — unlike the unsharded step, no partial per-file commits
/// survive, because the overlay is scratch state. The runtime requeues the
/// whole shard batch, exactly as it requeues a degraded unsharded slot.
pub fn solve_shard(
    chain: &mut FallbackChain,
    shard: usize,
    network: &Network,
    base: &TrafficLedger,
    batch: &[TransferRequest],
    directives: &SlotDirectives,
) -> ShardSolve {
    let mut solve = ShardSolve::empty(shard);
    solve.batch_len = batch.len();
    if batch.is_empty() {
        return solve;
    }
    let started = WallStopwatch::start();
    // Other shards (and the reconciler) commit to the central ledger behind
    // this chain's ALAP residual grid; rebase it from `base` every slot.
    chain.mark_alap_dirty();
    chain.begin_slot(directives.slot, directives.forced.clone());
    chain.set_skip_alap(directives.skip_alap);

    let mut overlay = base.clone();
    match chain.schedule(network, batch, &overlay) {
        Ok(decision) => {
            apply_overlay(&decision, batch, &mut overlay);
            solve.accepted.extend(batch.iter().map(|f| f.id));
            solve.accepted_volume = batch.iter().map(|f| f.size_gb).sum();
            solve.commits.push((batch.to_vec(), decision));
        }
        Err(PostcardError::Infeasible) => {
            // Per-file admission in arrival order, each success committed to
            // the overlay before the next attempt — the controller's exact
            // semantics.
            for f in batch {
                let single = [*f];
                match chain.schedule(network, &single, &overlay) {
                    Ok(decision) => {
                        apply_overlay(&decision, &single, &mut overlay);
                        solve.accepted.push(f.id);
                        solve.accepted_volume += f.size_gb;
                        solve.commits.push((single.to_vec(), decision));
                    }
                    Err(PostcardError::Infeasible) => {
                        solve.rejected.push(f.id);
                        solve.rejected_volume += f.size_gb;
                    }
                    Err(_) => {
                        solve.degraded = true;
                        break;
                    }
                }
            }
        }
        Err(_) => solve.degraded = true,
    }
    if solve.degraded {
        // Tentative state is scratch: a degraded shard contributes nothing.
        solve.commits.clear();
        solve.accepted.clear();
        solve.rejected.clear();
        solve.accepted_volume = 0.0;
        solve.rejected_volume = 0.0;
    }
    solve.records = chain.records().to_vec();
    solve.chosen_tier = chain.chosen_tier();
    solve.wall_seconds = started.elapsed_secs();
    solve
}

/// Runs every non-empty shard's solve on its own scoped thread and returns
/// the results in shard-index order.
pub fn solve_parallel(
    chains: &mut [FallbackChain],
    network: &Network,
    base: &TrafficLedger,
    batches: &[Vec<TransferRequest>],
    directives: &SlotDirectives,
) -> Vec<ShardSolve> {
    assert_eq!(chains.len(), batches.len(), "one batch per shard");
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            chains
                .iter_mut()
                .zip(batches)
                .enumerate()
                .map(|(shard, (chain, batch))| {
                    if batch.is_empty() {
                        // Nothing to solve: skip the spawn, keep the slot cheap.
                        None
                    } else {
                        Some(scope.spawn(move || {
                            solve_shard(chain, shard, network, base, batch, directives)
                        }))
                    }
                })
                .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(shard, handle)| match handle {
                // postcard-analyze: allow(PA102) — a panicked worker already
                // poisoned the slot; re-raising on the runtime thread is the
                // only sound continuation (no partial merge).
                Some(h) => h.join().expect("shard worker panicked"),
                None => ShardSolve::empty(shard),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use postcard_net::{DcId, NetworkBuilder};
    use std::time::Duration;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// Two disjoint 2-DC clusters.
    fn net() -> Network {
        NetworkBuilder::new(4).link(d(0), d(1), 2.0, 100.0).link(d(2), d(3), 3.0, 100.0).build()
    }

    fn chain() -> FallbackChain {
        FallbackChain::new(
            &TierKind::default_chain(),
            Duration::from_millis(250),
            Box::new(SimClock::new()),
        )
    }

    #[test]
    fn parallel_solves_match_sequential_solves_bit_for_bit() {
        let net = net();
        let base = TrafficLedger::new(4);
        let batches = vec![
            vec![TransferRequest::new(FileId(1), d(0), d(1), 6.0, 3, 0)],
            vec![TransferRequest::new(FileId(2), d(2), d(3), 9.0, 3, 0)],
        ];
        let mut chains_a = vec![chain(), chain()];
        let mut chains_b = [chain(), chain()];
        let par = solve_parallel(&mut chains_a, &net, &base, &batches, &SlotDirectives::plain(0));
        let seq: Vec<_> = chains_b
            .iter_mut()
            .zip(&batches)
            .enumerate()
            .map(|(i, (c, b))| solve_shard(c, i, &net, &base, b, &SlotDirectives::plain(0)))
            .collect();
        assert_eq!(par.len(), 2);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.accepted, s.accepted);
            assert_eq!(p.rejected, s.rejected);
            assert_eq!(p.commits.len(), s.commits.len());
            for ((pf, pd), (sf, sd)) in p.commits.iter().zip(&s.commits) {
                assert_eq!(pf, sf);
                assert_eq!(pd, sd, "decisions must be bit-identical");
            }
        }
    }

    #[test]
    fn empty_shard_batches_skip_the_spawn() {
        let net = net();
        let base = TrafficLedger::new(4);
        let batches = vec![Vec::new(), Vec::new()];
        let mut chains = vec![chain(), chain()];
        let solves = solve_parallel(&mut chains, &net, &base, &batches, &SlotDirectives::plain(0));
        assert!(solves.iter().all(|s| s.commits.is_empty() && s.records.is_empty()));
        assert!(solves.iter().all(|s| !s.degraded));
    }

    #[test]
    fn per_file_admission_rejects_only_the_oversized_file() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let base = TrafficLedger::new(2);
        let batch = vec![
            TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0), // can never fit
            TransferRequest::new(FileId(2), d(0), d(1), 2.0, 1, 0),
        ];
        let mut c = chain();
        let solve = solve_shard(&mut c, 0, &net, &base, &batch, &SlotDirectives::plain(0));
        assert_eq!(solve.rejected, vec![FileId(1)]);
        assert_eq!(solve.accepted, vec![FileId(2)]);
        assert_eq!(solve.accepted_volume, 2.0);
        assert_eq!(solve.rejected_volume, 10.0);
        assert!(!solve.degraded);
    }

    #[test]
    fn hard_failure_degrades_the_shard_and_commits_nothing() {
        // Datacenter 7 does not exist: the postcard-only chain hard-fails.
        let net = net();
        let base = TrafficLedger::new(4);
        let batch = vec![TransferRequest::new(FileId(1), DcId(7), d(1), 1.0, 2, 0)];
        let mut c = FallbackChain::new(
            &[TierKind::Postcard],
            Duration::from_millis(250),
            Box::new(SimClock::new()),
        );
        let solve = solve_shard(&mut c, 0, &net, &base, &batch, &SlotDirectives::plain(0));
        assert!(solve.degraded);
        assert!(solve.commits.is_empty() && solve.accepted.is_empty());
    }
}
