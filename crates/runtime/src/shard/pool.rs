//! The `std::thread` worker pool running per-shard solves in parallel.
//!
//! Each shard's worker replays the online controller's step semantics —
//! whole-batch solve, then per-file admission in arrival order on
//! infeasibility — against an *overlay* ledger: a clone of the central
//! ledger that accumulates only this shard's own tentative commits. The
//! central ledger is never touched from a worker thread; the reconciler
//! merges tentative results afterwards in fixed shard order.
//!
//! Workers are **long-lived**: [`WorkerPool::new`] moves each shard's
//! [`FallbackChain`] onto its own thread once, and every slot's work is fed
//! over a per-worker job channel. That keeps LP warm-start bases — and, in
//! incremental mode, the standing slot-over-slot model — resident on the
//! worker across the whole run instead of re-lending state through scoped
//! borrows each slot. Results are collected from the per-worker result
//! channels in shard-index order, so thread *scheduling* affects only
//! wall-clock time, never the merged outcome. The reconciler's serial
//! conflict re-solves go through [`WorkerPool::solve_one`], which posts a
//! job to the owning worker and blocks for its answer — same chain, same
//! thread, deterministic position in the merge order.
//!
//! Shutdown is channel-driven: dropping the pool drops every job sender,
//! each worker's receive loop ends, and the threads are joined.

use crate::clock::WallStopwatch;
use crate::fallback::{AttemptRecord, FallbackChain, TierKind};
use postcard_core::{Decision, PostcardError, Scheduler};
use postcard_net::{FileId, Network, TrafficLedger, TransferRequest};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-slot solve directives shared by every shard of a slot: which slot
/// is being solved and the fault/re-optimization state that must apply
/// identically to the parallel solves and any serial conflict re-solve.
#[derive(Debug, Clone, Default)]
pub struct SlotDirectives {
    /// The slot being solved.
    pub slot: u64,
    /// Tiers fault injection forces to time out this slot.
    pub forced: Vec<TierKind>,
    /// Whether the ALAP fast-path rung is skipped (LP re-optimization slot).
    pub skip_alap: bool,
}

impl SlotDirectives {
    /// Directives for an unforced, fast-path-enabled slot.
    pub fn plain(slot: u64) -> Self {
        Self { slot, ..Self::default() }
    }
}

/// One shard's tentative (pre-reconciliation) slot result.
#[derive(Debug, Clone)]
pub struct ShardSolve {
    /// The shard index.
    pub shard: usize,
    /// Size of the shard's batch this slot.
    pub batch_len: usize,
    /// Tentative commits: each decision with the files it serves, in
    /// commit order.
    pub commits: Vec<(Vec<TransferRequest>, Decision)>,
    /// Files admitted, in batch order.
    pub accepted: Vec<FileId>,
    /// Files rejected, in batch order.
    pub rejected: Vec<FileId>,
    /// Admitted volume (GB).
    pub accepted_volume: f64,
    /// Rejected volume (GB).
    pub rejected_volume: f64,
    /// Tier attempts recorded while solving this shard (re-solve attempts
    /// are appended by the reconciler).
    pub records: Vec<AttemptRecord>,
    /// The tier that committed the shard's first decision.
    pub chosen_tier: Option<TierKind>,
    /// The chain hard-failed; the shard committed nothing and its entries
    /// should be requeued.
    pub degraded: bool,
    /// Set by the reconciler when the optimistic solve over-committed a
    /// shared link and the shard was re-solved serially.
    pub conflicted: bool,
    /// Human-readable conflict attribution (reconciler-filled).
    pub diagnostics: Vec<String>,
    /// Real wall-clock seconds this shard's solve took (non-deterministic;
    /// exported only through the wall-metrics registry).
    pub wall_seconds: f64,
}

impl ShardSolve {
    fn empty(shard: usize) -> Self {
        Self {
            shard,
            batch_len: 0,
            commits: Vec::new(),
            accepted: Vec::new(),
            rejected: Vec::new(),
            accepted_volume: 0.0,
            rejected_volume: 0.0,
            records: Vec::new(),
            chosen_tier: None,
            degraded: false,
            conflicted: false,
            diagnostics: Vec::new(),
            wall_seconds: 0.0,
        }
    }
}

/// Applies a tentative decision to the overlay ledger.
fn apply_overlay(decision: &Decision, files: &[TransferRequest], overlay: &mut TrafficLedger) {
    match decision {
        Decision::Plan(plan) => plan.apply_to_ledger(overlay),
        Decision::Rates(rates) => rates.apply_to_ledger(files, overlay),
    }
}

/// Solves one shard's batch against `base`, mirroring
/// [`postcard_core::OnlineController::step`]'s admission semantics on an
/// overlay ledger.
///
/// On a non-infeasible scheduler error the shard is marked degraded and
/// commits nothing — unlike the unsharded step, no partial per-file commits
/// survive, because the overlay is scratch state. The runtime requeues the
/// whole shard batch, exactly as it requeues a degraded unsharded slot.
pub fn solve_shard(
    chain: &mut FallbackChain,
    shard: usize,
    network: &Network,
    base: &TrafficLedger,
    batch: &[TransferRequest],
    directives: &SlotDirectives,
) -> ShardSolve {
    let mut solve = ShardSolve::empty(shard);
    solve.batch_len = batch.len();
    if batch.is_empty() {
        return solve;
    }
    let started = WallStopwatch::start();
    // Other shards (and the reconciler) commit to the central ledger behind
    // this chain's ALAP residual grid; rebase it from `base` every slot.
    chain.mark_alap_dirty();
    chain.begin_slot(directives.slot, directives.forced.clone());
    chain.set_skip_alap(directives.skip_alap);

    let mut overlay = base.clone();
    match chain.schedule(network, batch, &overlay) {
        Ok(decision) => {
            apply_overlay(&decision, batch, &mut overlay);
            solve.accepted.extend(batch.iter().map(|f| f.id));
            solve.accepted_volume = batch.iter().map(|f| f.size_gb).sum();
            solve.commits.push((batch.to_vec(), decision));
        }
        Err(PostcardError::Infeasible) => {
            // Per-file admission in arrival order, each success committed to
            // the overlay before the next attempt — the controller's exact
            // semantics.
            for f in batch {
                let single = [*f];
                match chain.schedule(network, &single, &overlay) {
                    Ok(decision) => {
                        apply_overlay(&decision, &single, &mut overlay);
                        solve.accepted.push(f.id);
                        solve.accepted_volume += f.size_gb;
                        solve.commits.push((single.to_vec(), decision));
                    }
                    Err(PostcardError::Infeasible) => {
                        solve.rejected.push(f.id);
                        solve.rejected_volume += f.size_gb;
                    }
                    Err(_) => {
                        solve.degraded = true;
                        break;
                    }
                }
            }
        }
        Err(_) => solve.degraded = true,
    }
    if solve.degraded {
        // Tentative state is scratch: a degraded shard contributes nothing.
        solve.commits.clear();
        solve.accepted.clear();
        solve.rejected.clear();
        solve.accepted_volume = 0.0;
        solve.rejected_volume = 0.0;
    }
    solve.records = chain.records().to_vec();
    solve.chosen_tier = chain.chosen_tier();
    solve.wall_seconds = started.elapsed_secs();
    solve
}

/// One slot's worth of work for a single shard worker. The network and
/// base ledger are shared across the slot's jobs via [`Arc`]; the worker
/// clones its own overlay from `base` exactly as the scoped version did.
struct Job {
    network: Arc<Network>,
    base: Arc<TrafficLedger>,
    batch: Vec<TransferRequest>,
    directives: SlotDirectives,
}

/// A long-lived shard worker: owns its [`FallbackChain`] on a dedicated
/// thread and answers one [`ShardSolve`] per [`Job`].
#[derive(Debug)]
struct Worker {
    /// `None` only during teardown — dropping the sender ends the worker's
    /// receive loop.
    jobs: Option<mpsc::Sender<Job>>,
    results: mpsc::Receiver<ShardSolve>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn spawn(shard: usize, mut chain: FallbackChain) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (result_tx, result_rx) = mpsc::channel::<ShardSolve>();
        let handle = std::thread::spawn(move || {
            while let Ok(job) = job_rx.recv() {
                let solve = solve_shard(
                    &mut chain,
                    shard,
                    &job.network,
                    &job.base,
                    &job.batch,
                    &job.directives,
                );
                if result_tx.send(solve).is_err() {
                    // The pool is gone; nothing left to answer to.
                    break;
                }
            }
        });
        Self { jobs: Some(job_tx), results: result_rx, handle: Some(handle) }
    }

    fn post(&self, job: Job) {
        if let Some(jobs) = &self.jobs {
            // A failed send means the worker thread is gone; the paired
            // `take()` surfaces its panic when the result is drained.
            let _ = jobs.send(job);
        }
    }

    fn take(&mut self) -> ShardSolve {
        match self.results.recv() {
            Ok(solve) => solve,
            Err(_) => {
                // The worker died mid-job. Re-raise its panic on the runtime
                // thread — a poisoned slot must not be partially merged.
                if let Some(handle) = self.handle.take() {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
                // postcard-analyze: allow(PA103) — unreachable unless the
                // worker leaked its result channel and exited cleanly; a
                // silent Ok here would merge a slot that was never solved.
                panic!("shard worker exited without a result");
            }
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Hang up the job channel first so the receive loop ends…
        self.jobs = None;
        // …then reap the thread. A panic payload is deliberately swallowed
        // here: either `take()` already re-raised it, or the pool itself is
        // being dropped during unwinding and a double panic would abort.
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The set of long-lived shard workers, one per shard, each owning its
/// shard's [`FallbackChain`] for the lifetime of the run.
#[derive(Debug)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Spawns one persistent worker per chain; `chains[i]` becomes shard
    /// `i`'s solver state and lives on that worker's thread until the pool
    /// is dropped.
    pub fn new(chains: Vec<FallbackChain>) -> Self {
        Self {
            workers: chains
                .into_iter()
                .enumerate()
                .map(|(shard, chain)| Worker::spawn(shard, chain))
                .collect(),
        }
    }

    /// Number of shard workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` when the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Posts every non-empty shard batch to its worker, then collects the
    /// results in shard-index order. Empty batches never cross a channel:
    /// the slot stays cheap and the shard's records stay empty, exactly as
    /// the old spawn-skip did.
    pub fn solve_parallel(
        &mut self,
        network: &Network,
        base: &TrafficLedger,
        batches: &[Vec<TransferRequest>],
        directives: &SlotDirectives,
    ) -> Vec<ShardSolve> {
        assert_eq!(self.workers.len(), batches.len(), "one batch per shard");
        let network = Arc::new(network.clone());
        let base = Arc::new(base.clone());
        // Fan the whole slot out first so the workers run concurrently…
        let posted: Vec<bool> = batches
            .iter()
            .enumerate()
            .map(|(shard, batch)| {
                if batch.is_empty() {
                    return false;
                }
                self.workers[shard].post(Job {
                    network: Arc::clone(&network),
                    base: Arc::clone(&base),
                    batch: batch.clone(),
                    directives: directives.clone(),
                });
                true
            })
            .collect();
        // …then drain in shard-index order for a deterministic merge.
        posted
            .into_iter()
            .enumerate()
            .map(
                |(shard, sent)| {
                    if sent {
                        self.workers[shard].take()
                    } else {
                        ShardSolve::empty(shard)
                    }
                },
            )
            .collect()
    }

    /// Runs one shard's solve on its own worker and blocks for the result —
    /// the reconciler's serial conflict re-solve path. The job still runs on
    /// the worker thread so the chain's warm state stays where it lives.
    pub fn solve_one(
        &mut self,
        shard: usize,
        network: &Network,
        base: &TrafficLedger,
        batch: &[TransferRequest],
        directives: &SlotDirectives,
    ) -> ShardSolve {
        self.workers[shard].post(Job {
            network: Arc::new(network.clone()),
            base: Arc::new(base.clone()),
            batch: batch.to_vec(),
            directives: directives.clone(),
        });
        self.workers[shard].take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use postcard_net::{DcId, NetworkBuilder};
    use std::time::Duration;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// Two disjoint 2-DC clusters.
    fn net() -> Network {
        NetworkBuilder::new(4).link(d(0), d(1), 2.0, 100.0).link(d(2), d(3), 3.0, 100.0).build()
    }

    fn chain() -> FallbackChain {
        FallbackChain::new(
            &TierKind::default_chain(),
            Duration::from_millis(250),
            Box::new(SimClock::new()),
        )
    }

    #[test]
    fn parallel_solves_match_sequential_solves_bit_for_bit() {
        let net = net();
        let base = TrafficLedger::new(4);
        let batches = vec![
            vec![TransferRequest::new(FileId(1), d(0), d(1), 6.0, 3, 0)],
            vec![TransferRequest::new(FileId(2), d(2), d(3), 9.0, 3, 0)],
        ];
        let mut pool = WorkerPool::new(vec![chain(), chain()]);
        let mut chains_b = [chain(), chain()];
        let par = pool.solve_parallel(&net, &base, &batches, &SlotDirectives::plain(0));
        let seq: Vec<_> = chains_b
            .iter_mut()
            .zip(&batches)
            .enumerate()
            .map(|(i, (c, b))| solve_shard(c, i, &net, &base, b, &SlotDirectives::plain(0)))
            .collect();
        assert_eq!(par.len(), 2);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.accepted, s.accepted);
            assert_eq!(p.rejected, s.rejected);
            assert_eq!(p.commits.len(), s.commits.len());
            for ((pf, pd), (sf, sd)) in p.commits.iter().zip(&s.commits) {
                assert_eq!(pf, sf);
                assert_eq!(pd, sd, "decisions must be bit-identical");
            }
        }
    }

    #[test]
    fn workers_persist_chain_state_across_slots() {
        // Two slots through the same pool must match two sequential
        // solve_shard calls on one chain: proof the worker kept its chain
        // (warm bases and all) alive between slots instead of resetting.
        let net = net();
        let base = TrafficLedger::new(4);
        let slot0 = vec![vec![TransferRequest::new(FileId(1), d(0), d(1), 6.0, 3, 0)]];
        let slot1 = vec![vec![TransferRequest::new(FileId(2), d(0), d(1), 4.0, 3, 1)]];
        let mut pool = WorkerPool::new(vec![chain()]);
        let p0 = pool.solve_parallel(&net, &base, &slot0, &SlotDirectives::plain(0));
        let mut after = base.clone();
        for (files, decision) in &p0[0].commits {
            apply_overlay(decision, files, &mut after);
        }
        let p1 = pool.solve_parallel(&net, &after, &slot1, &SlotDirectives::plain(1));

        let mut c = chain();
        let s0 = solve_shard(&mut c, 0, &net, &base, &slot0[0], &SlotDirectives::plain(0));
        let s1 = solve_shard(&mut c, 0, &net, &after, &slot1[0], &SlotDirectives::plain(1));
        assert_eq!(p0[0].accepted, s0.accepted);
        assert_eq!(p1[0].accepted, s1.accepted);
        for ((pf, pd), (sf, sd)) in p1[0].commits.iter().zip(&s1.commits) {
            assert_eq!(pf, sf);
            assert_eq!(pd, sd, "second-slot decisions must be bit-identical");
        }
    }

    #[test]
    fn empty_shard_batches_skip_the_workers() {
        let net = net();
        let base = TrafficLedger::new(4);
        let batches = vec![Vec::new(), Vec::new()];
        let mut pool = WorkerPool::new(vec![chain(), chain()]);
        let solves = pool.solve_parallel(&net, &base, &batches, &SlotDirectives::plain(0));
        assert!(solves.iter().all(|s| s.commits.is_empty() && s.records.is_empty()));
        assert!(solves.iter().all(|s| !s.degraded));
    }

    #[test]
    fn solve_one_reuses_the_shard_worker() {
        let net = net();
        let base = TrafficLedger::new(4);
        let batch = vec![TransferRequest::new(FileId(1), d(0), d(1), 6.0, 3, 0)];
        let mut pool = WorkerPool::new(vec![chain(), chain()]);
        let solo = pool.solve_one(0, &net, &base, &batch, &SlotDirectives::plain(0));
        assert_eq!(solo.accepted, vec![FileId(1)]);
        assert!(!solo.degraded);
        // The same worker answers subsequent requests.
        let again = pool.solve_one(0, &net, &base, &batch, &SlotDirectives::plain(1));
        assert_eq!(again.accepted, vec![FileId(1)]);
    }

    #[test]
    fn per_file_admission_rejects_only_the_oversized_file() {
        let net = NetworkBuilder::new(2).link(d(0), d(1), 1.0, 2.0).build();
        let base = TrafficLedger::new(2);
        let batch = vec![
            TransferRequest::new(FileId(1), d(0), d(1), 10.0, 1, 0), // can never fit
            TransferRequest::new(FileId(2), d(0), d(1), 2.0, 1, 0),
        ];
        let mut c = chain();
        let solve = solve_shard(&mut c, 0, &net, &base, &batch, &SlotDirectives::plain(0));
        assert_eq!(solve.rejected, vec![FileId(1)]);
        assert_eq!(solve.accepted, vec![FileId(2)]);
        assert_eq!(solve.accepted_volume, 2.0);
        assert_eq!(solve.rejected_volume, 10.0);
        assert!(!solve.degraded);
    }

    #[test]
    fn hard_failure_degrades_the_shard_and_commits_nothing() {
        // Datacenter 7 does not exist: the postcard-only chain hard-fails.
        let net = net();
        let base = TrafficLedger::new(4);
        let batch = vec![TransferRequest::new(FileId(1), DcId(7), d(1), 1.0, 2, 0)];
        let mut c = FallbackChain::new(
            &[TierKind::Postcard],
            Duration::from_millis(250),
            Box::new(SimClock::new()),
        );
        let solve = solve_shard(&mut c, 0, &net, &base, &batch, &SlotDirectives::plain(0));
        assert!(solve.degraded);
        assert!(solve.commits.is_empty() && solve.accepted.is_empty());
    }
}
