//! The sharded multi-tenant runtime: parallel per-shard solves, one central
//! ledger.
//!
//! A production inter-datacenter controller serves many tenants whose
//! transfers share link capacity but decompose almost cleanly by owner.
//! This module exploits that structure: each slot's admitted batch is
//! partitioned by tenant or source region ([`ShardPlanner`]), every shard's
//! subproblem runs the full solver fallback chain on its own worker thread
//! against a snapshot of the central ledger ([`pool`]), and a deterministic
//! [`reconcile`] pass merges the shard plans back into the single
//! percentile-billing ledger — validating each shard's decisions against
//! the traffic already merged ahead of it and re-solving any shard whose
//! optimistic plan over-committed a shared link.
//!
//! Determinism is the design constraint that shapes everything here: shard
//! results are collected in shard-index order, the merge order is fixed,
//! and conflict re-solves run serially in that same order, so an N-shard
//! run produces byte-identical ledgers, metrics, and snapshots on every
//! execution regardless of thread scheduling. Wall-clock solve times are
//! the one unavoidably non-deterministic observable; they are exported
//! through a separate, never-snapshotted metrics registry (see
//! [`crate::Runtime::wall_metrics`]).
//!
//! Checkpointing is a manifest plus per-shard snapshot files
//! ([`manifest`]): the manifest carries the full global state verbatim (so
//! resume is bit-identical by construction), shard files carry each shard's
//! billing-attribution state and rewrite only when the shard committed
//! something since the last checkpoint.

pub mod manifest;
pub mod planner;
pub mod pool;
pub mod reconcile;

pub use manifest::{ShardRef, ShardSnapshot, ShardState};
pub use planner::ShardPlanner;
pub use pool::{ShardSolve, WorkerPool};

use crate::fallback::{FallbackChain, TierKind};
use crate::runtime::RuntimeConfig;
use postcard_core::Decision;
use postcard_net::{FileId, Network, TrafficLedger, TransferRequest};
use serde::{Deserialize, Serialize};

/// How a batch is partitioned into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardBy {
    /// By the owning tenant encoded in the high bits of each
    /// [`postcard_net::FileId`] (see [`postcard_net::FileId::for_tenant`]).
    Tenant,
    /// By the source datacenter (region) of each request.
    Region,
}

impl ShardBy {
    /// Stable name used in CLI flags and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            ShardBy::Tenant => "tenant",
            ShardBy::Region => "region",
        }
    }
}

impl std::fmt::Display for ShardBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ShardBy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tenant" => Ok(ShardBy::Tenant),
            "region" => Ok(ShardBy::Region),
            other => Err(format!("unknown shard key `{other}` (expected tenant|region)")),
        }
    }
}

/// The merged result of one sharded slot, in deterministic shard order.
#[derive(Debug)]
pub struct ShardSlotResult {
    /// Per-shard resolutions (index = shard), after reconciliation.
    pub resolutions: Vec<ShardSolve>,
    /// Every commit to apply, flattened in shard order.
    pub commits: Vec<(Vec<TransferRequest>, Decision)>,
    /// Accepted files across shards, in shard order then batch order.
    pub accepted: Vec<FileId>,
    /// Rejected files across shards, in shard order then batch order.
    pub rejected: Vec<FileId>,
    /// Total accepted volume (GB).
    pub accepted_volume: f64,
    /// Total rejected volume (GB).
    pub rejected_volume: f64,
    /// Shards whose optimistic solve over-committed a shared link and were
    /// re-solved serially.
    pub conflicts: u64,
    /// Shards whose chain hard-failed (their entries should be requeued).
    pub degraded_shards: Vec<usize>,
}

/// Owns the long-lived shard worker pool (each worker holding its shard's
/// fallback chain) and the billing-attribution states, and orchestrates one
/// slot: partition → parallel solve → reconcile.
#[derive(Debug)]
pub struct ShardEngine {
    planner: ShardPlanner,
    pool: WorkerPool,
    states: Vec<ShardState>,
    /// Per-shard stamp of the last checkpointed state, used to skip
    /// rewriting unchanged shard snapshot files.
    saved_stamps: Vec<Option<u64>>,
}

impl ShardEngine {
    /// Builds an engine with fresh (zeroed) shard states from a validated
    /// sharded config.
    pub fn new(config: &RuntimeConfig, num_dcs: usize) -> Self {
        let states = (0..config.shards).map(|_| ShardState::new(num_dcs)).collect();
        Self::with_states(config, states)
    }

    /// Builds an engine over restored shard states (resume path).
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != config.shards` — the manifest loader
    /// checks this before calling.
    pub fn with_states(config: &RuntimeConfig, states: Vec<ShardState>) -> Self {
        assert_eq!(states.len(), config.shards, "one state per shard");
        let chains = (0..config.shards)
            .map(|_| {
                FallbackChain::with_charging(
                    &config.tiers,
                    config.slot_budget(),
                    config.clock.build(),
                    config.warm_start,
                    config.incremental,
                    config.charging,
                )
            })
            .collect();
        Self {
            planner: ShardPlanner::new(config.shard_by, config.shards),
            pool: WorkerPool::new(chains),
            states,
            saved_stamps: vec![None; config.shards],
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.pool.len()
    }

    /// The partitioner.
    pub fn planner(&self) -> &ShardPlanner {
        &self.planner
    }

    /// Per-shard billing-attribution states (index = shard).
    pub fn states(&self) -> &[ShardState] {
        &self.states
    }

    /// Per-shard saved-stamp bookkeeping for checkpoint writes (index =
    /// shard; `None` forces a rewrite at the next checkpoint).
    pub fn saved_stamps_mut(&mut self) -> &mut Vec<Option<u64>> {
        &mut self.saved_stamps
    }

    /// Runs one slot over pre-partitioned batches: parallel optimistic
    /// solves, then the deterministic ordered merge with serial conflict
    /// re-solves, then shard-state (billing attribution) updates.
    ///
    /// `base` is the central committed ledger *before* this slot; the
    /// caller applies the returned commits to it afterwards (through
    /// [`postcard_core::OnlineController::commit_reconciled`]).
    pub fn run_slot(
        &mut self,
        network: &Network,
        base: &TrafficLedger,
        batches: &[Vec<TransferRequest>],
        slot: u64,
        forced: &[TierKind],
        skip_alap: bool,
    ) -> ShardSlotResult {
        let directives = pool::SlotDirectives { slot, forced: forced.to_vec(), skip_alap };
        let solves = self.pool.solve_parallel(network, base, batches, &directives);
        let resolutions =
            reconcile::reconcile(network, base, solves, &mut self.pool, batches, &directives);

        let mut result = ShardSlotResult {
            commits: Vec::new(),
            accepted: Vec::new(),
            rejected: Vec::new(),
            accepted_volume: 0.0,
            rejected_volume: 0.0,
            conflicts: 0,
            degraded_shards: Vec::new(),
            resolutions: Vec::new(),
        };
        for solve in &resolutions {
            if solve.conflicted {
                result.conflicts += 1;
            }
            if solve.degraded {
                result.degraded_shards.push(solve.shard);
                continue;
            }
            let state = &mut self.states[solve.shard];
            for (files, decision) in &solve.commits {
                state.apply(decision, files, slot);
            }
            state.note_admission(
                solve.accepted.len() as u64,
                solve.rejected.len() as u64,
                solve.accepted_volume,
                solve.rejected_volume,
                slot,
            );
            result.commits.extend(solve.commits.iter().cloned());
            result.accepted.extend(solve.accepted.iter().copied());
            result.rejected.extend(solve.rejected.iter().copied());
            result.accepted_volume += solve.accepted_volume;
            result.rejected_volume += solve.rejected_volume;
        }
        result.resolutions = resolutions;
        result
    }
}
