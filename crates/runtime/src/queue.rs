//! Bounded backlog of admitted transfer requests.
//!
//! A real controller service cannot accept unbounded bursts: the slot loop
//! offers each slot's arrivals to a bounded queue, and arrivals beyond the
//! capacity are *dropped at the door* (counted, never scheduled). The
//! capacity bounds the total *queued* work — backlog carried over from
//! earlier slots eats into the space available for new arrivals, exactly
//! like a router buffer.
//!
//! Unlike a per-slot intake buffer, the queue is a persistent FIFO backlog:
//! [`AdmissionQueue::take_batch`] hands the runtime everything that is still
//! schedulable (evicting requests whose deadline has already passed), and
//! batches the solver could not place this slot come back via
//! [`AdmissionQueue::requeue`] — at the *front*, so arrival order is
//! preserved across carries. Each entry remembers how many times it has been
//! requeued ([`QueuedRequest::attempts`]); the runtime stops retrying past
//! its `max_requeue_attempts` knob. Because the backlog can be non-empty at
//! a slot boundary, snapshots persist the queue contents (format v4) and the
//! dropped-at-the-door counter (format v5).

use postcard_net::TransferRequest;
use serde::{Deserialize, Serialize};

/// One backlog entry: a request plus how many times it has been requeued.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuedRequest {
    /// The queued request, with its *original* release slot — re-stamping
    /// for the controller happens at drain time, so the absolute deadline
    /// (`request.last_slot()`) stays fixed while the entry waits.
    pub request: TransferRequest,
    /// How many times this entry has been requeued after a failed slot.
    pub attempts: u32,
}

/// A bounded FIFO backlog of transfer requests.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    pending: Vec<QueuedRequest>,
    dropped: u64,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "admission queue capacity must be at least 1");
        Self { capacity, pending: Vec::new(), dropped: 0 }
    }

    /// The total backlog capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one slot's arrivals in order; returns how many were dropped.
    /// Backlog already queued counts against the capacity, so a slot that
    /// carried work forward has less room for new arrivals.
    pub fn offer(&mut self, arrivals: &[TransferRequest]) -> usize {
        let space = self.capacity.saturating_sub(self.pending.len());
        let taken = arrivals.len().min(space);
        self.pending.extend(
            arrivals[..taken].iter().map(|&request| QueuedRequest { request, attempts: 0 }),
        );
        let dropped = arrivals.len() - taken;
        self.dropped += dropped as u64;
        dropped
    }

    /// Drains the backlog for scheduling at `slot`: returns the still-live
    /// entries in FIFO order plus the number evicted because their deadline
    /// (`request.last_slot()`) already passed.
    pub fn take_batch(&mut self, slot: u64) -> (Vec<QueuedRequest>, usize) {
        let drained = std::mem::take(&mut self.pending);
        let before = drained.len();
        let live: Vec<QueuedRequest> =
            drained.into_iter().filter(|e| e.request.last_slot() >= slot).collect();
        let expired = before - live.len();
        (live, expired)
    }

    /// Puts entries the slot could not schedule back at the *front* of the
    /// backlog (they arrived before anything queued since), preserving FIFO
    /// order across the carry. The caller increments `attempts` and enforces
    /// its retry budget; requeueing never drops entries even if the backlog
    /// momentarily exceeds capacity — the bound applies at the door
    /// ([`AdmissionQueue::offer`]), not to work already admitted.
    pub fn requeue(&mut self, entries: Vec<QueuedRequest>) {
        self.pending.splice(0..0, entries);
    }

    /// The queued entries, front (oldest) first — snapshots persist these.
    pub fn entries(&self) -> &[QueuedRequest] {
        &self.pending
    }

    /// Restores backlog contents *and* the dropped counter from a snapshot,
    /// replacing anything queued. Restoring the counter too keeps
    /// `queue_dropped` accounting identical between a killed-and-resumed run
    /// and the uninterrupted one (snapshot format v5).
    pub fn restore(&mut self, entries: Vec<QueuedRequest>, dropped: u64) {
        self.pending = entries;
        self.dropped = dropped;
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total requests dropped at the door since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, FileId};

    fn req(id: u64) -> TransferRequest {
        TransferRequest::new(FileId(id), DcId(0), DcId(1), 1.0, 1, 0)
    }

    fn req_at(id: u64, release: u64, deadline: usize) -> TransferRequest {
        TransferRequest::new(FileId(id), DcId(0), DcId(1), 1.0, deadline, release)
    }

    #[test]
    fn admits_up_to_capacity_in_order() {
        let mut q = AdmissionQueue::new(2);
        let arrivals = [req(1), req(2), req(3)];
        assert_eq!(q.offer(&arrivals), 1);
        assert_eq!(q.dropped(), 1);
        let (batch, expired) = q.take_batch(0);
        assert_eq!(expired, 0);
        assert_eq!(batch.iter().map(|e| e.request.id.0).collect::<Vec<_>>(), vec![1, 2]);
        assert!(batch.iter().all(|e| e.attempts == 0));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_resets_capacity_for_next_slot() {
        let mut q = AdmissionQueue::new(2);
        q.offer(&[req(1), req(2)]);
        q.take_batch(0);
        assert_eq!(q.offer(&[req(3)]), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn offer_with_preloaded_backlog_does_not_underflow() {
        // Regression: `capacity - pending.len()` used to underflow and panic
        // the moment the queue was not fully drained. A backlog at (or, via
        // requeue, past) capacity must simply drop the new arrivals.
        let mut q = AdmissionQueue::new(2);
        q.offer(&[req(1), req(2)]);
        assert_eq!(q.offer(&[req(3), req(4)]), 2);
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.len(), 2);
        // Requeue can push the backlog past capacity; offering then must
        // still be safe and drop everything new.
        let (batch, _) = q.take_batch(0);
        q.requeue(batch);
        q.requeue(vec![QueuedRequest { request: req(9), attempts: 1 }]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.offer(&[req(5)]), 1);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn requeue_goes_to_the_front() {
        let mut q = AdmissionQueue::new(8);
        q.offer(&[req(1), req(2)]);
        let (batch, _) = q.take_batch(0);
        q.offer(&[req(3)]);
        q.requeue(
            batch
                .into_iter()
                .map(|mut e| {
                    e.attempts += 1;
                    e
                })
                .collect(),
        );
        let (batch, _) = q.take_batch(0);
        let ids: Vec<u64> = batch.iter().map(|e| e.request.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3], "carried entries precede newer arrivals");
        assert_eq!(batch[0].attempts, 1);
        assert_eq!(batch[2].attempts, 0);
    }

    #[test]
    fn take_batch_evicts_expired_entries() {
        let mut q = AdmissionQueue::new(8);
        // last slots: 0, 1, 4.
        q.offer(&[req_at(1, 0, 1), req_at(2, 0, 2), req_at(3, 0, 5)]);
        let (batch, expired) = q.take_batch(2);
        assert_eq!(expired, 2);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].request.id, FileId(3));
        assert!(q.is_empty());
    }

    #[test]
    fn restore_round_trips_entries_and_dropped_counter() {
        let mut q = AdmissionQueue::new(2);
        q.offer(&[req(1), req(2), req(3)]);
        assert_eq!(q.dropped(), 1);
        let saved: Vec<QueuedRequest> = q.entries().to_vec();
        let mut fresh = AdmissionQueue::new(2);
        fresh.restore(saved.clone(), q.dropped());
        assert_eq!(fresh.entries(), &saved[..]);
        assert_eq!(fresh.len(), 2);
        // Regression: restore used to leave `dropped` at 0, so a resumed
        // run's overload accounting diverged from the uninterrupted run.
        assert_eq!(fresh.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        AdmissionQueue::new(0);
    }
}
