//! Bounded admission queue for arriving transfer requests.
//!
//! A real controller service cannot accept unbounded bursts: the slot loop
//! offers each slot's arrivals to a bounded queue, and arrivals beyond the
//! capacity are *dropped at the door* (counted, never scheduled). The queue
//! is drained completely into the controller batch every slot — the online
//! controller requires `release_slot == slot`, so requests never carry over
//! to a later slot. That also means checkpoints taken at slot boundaries
//! never need to persist queue contents, only the cumulative drop counter
//! (which the metrics registry carries).

use postcard_net::TransferRequest;

/// A per-slot bounded intake buffer.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    pending: Vec<TransferRequest>,
    dropped: u64,
}

impl AdmissionQueue {
    /// Creates a queue admitting at most `capacity` requests per slot.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "admission queue capacity must be at least 1");
        Self { capacity, pending: Vec::new(), dropped: 0 }
    }

    /// The per-slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one slot's arrivals in order; returns how many were dropped.
    pub fn offer(&mut self, arrivals: &[TransferRequest]) -> usize {
        let space = self.capacity - self.pending.len();
        let taken = arrivals.len().min(space);
        self.pending.extend_from_slice(&arrivals[..taken]);
        let dropped = arrivals.len() - taken;
        self.dropped += dropped as u64;
        dropped
    }

    /// Drains the queued batch for scheduling (empties the queue).
    pub fn drain(&mut self) -> Vec<TransferRequest> {
        std::mem::take(&mut self.pending)
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total requests dropped since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{DcId, FileId};

    fn req(id: u64) -> TransferRequest {
        TransferRequest::new(FileId(id), DcId(0), DcId(1), 1.0, 1, 0)
    }

    #[test]
    fn admits_up_to_capacity_in_order() {
        let mut q = AdmissionQueue::new(2);
        let arrivals = [req(1), req(2), req(3)];
        assert_eq!(q.offer(&arrivals), 1);
        assert_eq!(q.dropped(), 1);
        let batch = q.drain();
        assert_eq!(batch.iter().map(|r| r.id.0).collect::<Vec<_>>(), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_resets_capacity_for_next_slot() {
        let mut q = AdmissionQueue::new(2);
        q.offer(&[req(1), req(2)]);
        q.drain();
        assert_eq!(q.offer(&[req(3)]), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        AdmissionQueue::new(0);
    }
}
