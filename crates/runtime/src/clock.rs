//! Pluggable time sources for the slot loop's solve-budget accounting.
//!
//! The fallback chain asks "how long has this slot's solving taken so far?"
//! — under [`WallClock`] that is real elapsed time, under [`SimClock`] it is
//! a deterministic counter that only moves when something explicitly
//! advances it (fault injection, simulated solver cost). Determinism is
//! what makes checkpoint/resume bit-identical: a resumed run must take the
//! same fallback decisions as the uninterrupted one, which real wall time
//! cannot guarantee.

use std::time::{Duration, Instant};

/// A per-slot stopwatch.
///
/// `Send` is a supertrait so a clock-owning fallback chain can be moved into
/// a shard worker thread; both clocks here are plain data.
pub trait Clock: std::fmt::Debug + Send {
    /// Resets the stopwatch at the start of a slot.
    fn start_slot(&mut self, slot: u64);
    /// Time spent in the current slot so far.
    fn elapsed(&self) -> Duration;
    /// Advances simulated clocks by `d`; a no-op for real clocks (wall time
    /// advances itself).
    fn advance(&mut self, d: Duration);
}

/// Deterministic simulated time: advances only via [`Clock::advance`].
#[derive(Debug, Default)]
pub struct SimClock {
    elapsed: Duration,
}

impl SimClock {
    /// A fresh simulated stopwatch at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for SimClock {
    fn start_slot(&mut self, _slot: u64) {
        self.elapsed = Duration::ZERO;
    }

    fn elapsed(&self) -> Duration {
        self.elapsed
    }

    fn advance(&mut self, d: Duration) {
        self.elapsed += d;
    }
}

/// Real wall-clock time.
#[derive(Debug)]
pub struct WallClock {
    started: Instant,
}

impl WallClock {
    /// A stopwatch started now.
    pub fn new() -> Self {
        Self { started: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn start_slot(&mut self, _slot: u64) {
        self.started = Instant::now();
    }

    fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    fn advance(&mut self, _d: Duration) {}
}

/// The sanctioned seam for *metrics-only* wall-time measurement.
///
/// Decision-making code must go through [`Clock`] so simulated runs stay
/// deterministic — but observability (solve-wall-seconds histograms,
/// per-shard timing) legitimately wants real elapsed time even under
/// [`SimClock`]. `WallStopwatch` is the one place outside [`Clock`] allowed
/// to read `Instant`: the PA202 lint sanctions this file, and everything it
/// measures must feed metrics, never control flow.
#[derive(Debug, Clone, Copy)]
pub struct WallStopwatch {
    started: Instant,
}

impl WallStopwatch {
    /// Starts measuring now.
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Seconds elapsed since [`WallStopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Which [`Clock`] a runtime uses (serializable for snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClockKind {
    /// Deterministic [`SimClock`] (the default; required for bit-identical
    /// resume).
    Sim,
    /// Real [`WallClock`].
    Wall,
}

impl ClockKind {
    /// Instantiates the clock.
    pub fn build(self) -> Box<dyn Clock> {
        match self {
            ClockKind::Sim => Box::new(SimClock::new()),
            ClockKind::Wall => Box::new(WallClock::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_only_moves_when_advanced() {
        let mut c = SimClock::new();
        c.start_slot(0);
        assert_eq!(c.elapsed(), Duration::ZERO);
        c.advance(Duration::from_millis(7));
        assert_eq!(c.elapsed(), Duration::from_millis(7));
        c.start_slot(1);
        assert_eq!(c.elapsed(), Duration::ZERO);
    }

    #[test]
    fn wall_clock_moves_by_itself() {
        let mut c = WallClock::new();
        c.start_slot(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.elapsed() >= Duration::from_millis(1));
        c.advance(Duration::from_secs(100)); // no-op
        assert!(c.elapsed() < Duration::from_secs(50));
    }

    #[test]
    fn kind_builds_matching_clock() {
        let mut sim = ClockKind::Sim.build();
        sim.start_slot(0);
        sim.advance(Duration::from_secs(1));
        assert_eq!(sim.elapsed(), Duration::from_secs(1));
        let wall = ClockKind::Wall.build();
        assert!(wall.elapsed() < Duration::from_secs(1));
    }
}
