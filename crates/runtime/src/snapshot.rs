//! Versioned, self-contained runtime snapshots.
//!
//! A snapshot carries *everything* a continuation needs — topology (with any
//! degradations already applied), remaining arrivals, fault plan, controller
//! state, metrics, and position — so `postcard resume` works from the file
//! alone. Snapshots are JSON: the vendored serializer prints `f64`s with
//! Rust's shortest-round-trip formatting, which is what makes a resumed run
//! *bit-identical* to the uninterrupted one rather than merely close.
//!
//! Writes are atomic (temp file + rename) so a crash during checkpointing
//! leaves the previous snapshot intact — the whole point of checkpointing a
//! crash-safe service.

use crate::arrivals::ArrivalSchedule;
use crate::faults::FaultPlan;
use crate::metrics::MetricsRegistry;
use crate::queue::QueuedRequest;
use crate::runtime::RuntimeConfig;
use postcard_core::ControllerState;
use postcard_net::{DcId, Network, NetworkBuilder};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current snapshot format version.
///
/// History: v1 — initial format; v2 — `RuntimeConfig` gained
/// `strict_analysis` (the vendored serde shim treats missing fields as
/// errors, so the addition is a format break); v3 — `RuntimeConfig` gained
/// `warm_start` and `HistogramSummary` gained percentile buckets; v4 — the
/// snapshot carries the admission-queue backlog (requests plus requeue
/// counts) and `RuntimeConfig` gained `max_requeue_attempts`, so a run
/// killed with a non-empty backlog resumes bit-identically; v5 — the
/// snapshot carries the queue's dropped-at-the-door counter (previously
/// lost on resume) and `RuntimeConfig` gained `alap` and `reopt_every`;
/// v6 — sharded checkpoints: the snapshot doubles as the manifest over
/// per-shard snapshot files (`shard_refs`) and `RuntimeConfig` gained
/// `shards` and `shard_by`; v7 — `RuntimeConfig` gained `incremental`
/// (standing slot-over-slot formulation + dual simplex re-solve); v8 —
/// billing windows: `RuntimeConfig` gained `charging`, `FaultPlan` gained
/// `price_changes` and `maintenance`, and the snapshot carries
/// `pending_restores` (capacities to put back when maintenance windows
/// end — the restore value is only known once the outage starts, so a run
/// killed mid-maintenance needs it to resume bit-identically).
pub const SNAPSHOT_VERSION: u32 = 8;

/// One directed link, flattened for serialization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkRecord {
    /// Source datacenter id.
    pub from: usize,
    /// Destination datacenter id.
    pub to: usize,
    /// Price per GB of the billed peak.
    pub price: f64,
    /// Capacity in GB per slot.
    pub capacity: f64,
}

/// The complete persisted state of a [`crate::Runtime`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The runtime configuration (tiers, budget, clock, …).
    pub config: RuntimeConfig,
    /// Number of datacenters (kept explicitly: links alone cannot represent
    /// trailing isolated datacenters).
    pub num_dcs: usize,
    /// Current links — capacities reflect degradations applied so far.
    pub links: Vec<LinkRecord>,
    /// The full arrival schedule (past and future slots).
    pub arrivals: ArrivalSchedule,
    /// The fault plan (past and future slots).
    pub faults: FaultPlan,
    /// The admission-queue backlog at the snapshot boundary, oldest first
    /// (requests keep their original release slots; re-stamping happens at
    /// drain time).
    pub queue: Vec<QueuedRequest>,
    /// Total requests dropped at the admission-queue door so far. Restored
    /// on resume so overload accounting matches the uninterrupted run.
    pub queue_dropped: u64,
    /// The online controller's mutable state.
    pub controller: ControllerState,
    /// Metrics accumulated so far.
    pub metrics: MetricsRegistry,
    /// Maintenance restores still owed: the capacity each link returns to
    /// (and when) for outages in progress at the snapshot boundary.
    pub pending_restores: Vec<crate::faults::LinkDegradation>,
    /// Manifest entries for per-shard snapshot files (empty for unsharded
    /// runs). The manifest still carries the full global state above, so a
    /// resumed run's *decisions* never depend on the shard files; the refs
    /// restore per-shard billing attribution.
    pub shard_refs: Vec<crate::shard::ShardRef>,
    /// The first slot the continuation must run.
    pub next_slot: u64,
    /// One past the last slot of the run.
    pub num_slots: u64,
}

impl RuntimeSnapshot {
    /// Flattens a network into link records (paired with
    /// [`RuntimeSnapshot::rebuild_network`]).
    pub fn links_of(network: &Network) -> Vec<LinkRecord> {
        network
            .links()
            .map(|l| LinkRecord {
                from: l.from.0,
                to: l.to.0,
                price: l.price,
                capacity: l.capacity,
            })
            .collect()
    }

    /// Rebuilds the network from the snapshot's topology fields.
    pub fn rebuild_network(&self) -> Network {
        let mut b = NetworkBuilder::new(self.num_dcs);
        for l in &self.links {
            b = b.link(DcId(l.from), DcId(l.to), l.price, l.capacity);
        }
        b.build()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parses and version-checks a snapshot.
    ///
    /// The version is probed from the raw JSON *before* the typed decode:
    /// older formats are missing fields the current struct requires, and a
    /// "missing field" error would hide the real problem. This is what makes
    /// the documented "unsupported version" error reachable for v1–v3 files.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON or an unsupported version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde::json::parse(text).map_err(|e| format!("malformed snapshot: {e}"))?;
        let map = value.as_map().ok_or("malformed snapshot: not a JSON object")?;
        let version_value =
            serde::field(map, "version", "RuntimeSnapshot").map_err(|e| format!("{e}"))?;
        let version =
            u32::deserialize(version_value).map_err(|e| format!("malformed snapshot: {e}"))?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {version} unsupported (expected {SNAPSHOT_VERSION})"
            ));
        }
        let snap: RuntimeSnapshot =
            RuntimeSnapshot::deserialize(&value).map_err(|e| format!("malformed snapshot: {e}"))?;
        Ok(snap)
    }

    /// Writes the snapshot atomically: a sibling temp file is written,
    /// flushed, then renamed over `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the previous snapshot, if any, survives).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// Reports I/O failures, malformed JSON, or an unsupported version.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::TrafficLedger;

    fn sample() -> RuntimeSnapshot {
        let network = NetworkBuilder::new(3)
            .link(DcId(1), DcId(2), 10.0, 100.0)
            .link(DcId(1), DcId(0), 1.0, f64::INFINITY)
            .build();
        RuntimeSnapshot {
            version: SNAPSHOT_VERSION,
            config: RuntimeConfig::default(),
            num_dcs: network.num_dcs(),
            links: RuntimeSnapshot::links_of(&network),
            arrivals: ArrivalSchedule::default(),
            faults: FaultPlan::none(),
            queue: vec![QueuedRequest {
                request: postcard_net::TransferRequest::new(
                    postcard_net::FileId(9),
                    DcId(1),
                    DcId(2),
                    4.5,
                    3,
                    1,
                ),
                attempts: 1,
            }],
            queue_dropped: 3,
            controller: ControllerState {
                ledger: TrafficLedger::new(3),
                cost_history: vec![0.1 + 0.2, 1.0 / 3.0],
                total_accepted: 2,
                total_rejected: 1,
                accepted_volume: 15.5,
                rejected_volume: 100.0,
            },
            metrics: MetricsRegistry::new(),
            pending_restores: vec![crate::faults::LinkDegradation {
                slot: 5,
                from: 1,
                to: 2,
                capacity: 100.0,
            }],
            shard_refs: Vec::new(),
            next_slot: 2,
            num_slots: 10,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample();
        let back = RuntimeSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // Bit-exactness of the awkward floats, explicitly.
        assert_eq!(back.controller.cost_history[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.controller.cost_history[1].to_bits(), (1.0f64 / 3.0).to_bits());
    }

    #[test]
    fn network_rebuild_preserves_links_and_infinite_capacity() {
        let snap = sample();
        let net = snap.rebuild_network();
        assert_eq!(net.num_dcs(), 3);
        assert_eq!(net.capacity(DcId(1), DcId(0)), Some(f64::INFINITY));
        assert_eq!(net.price(DcId(1), DcId(2)), Some(10.0));
        assert_eq!(net.capacity(DcId(0), DcId(2)), None);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut snap = sample();
        snap.version = 99;
        let err = RuntimeSnapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn old_versions_fail_with_version_error_not_missing_field() {
        // A v5 file lacks the `shard_refs` field (and `shards` /
        // `shard_by` in the config). The version must be probed *before*
        // the typed decode, so the user sees the real problem, not a
        // decoding artifact.
        for old in [3, 4, 5, 7] {
            let err = RuntimeSnapshot::from_json(&format!(r#"{{"version": {old}}}"#)).unwrap_err();
            assert!(err.contains(&format!("snapshot version {old} unsupported")), "{err}");
            assert!(!err.contains("missing field"), "{err}");
        }
        // Non-object and version-less documents still report clearly.
        let err = RuntimeSnapshot::from_json("[1, 2]").unwrap_err();
        assert!(err.contains("not a JSON object"), "{err}");
        let err = RuntimeSnapshot::from_json("{}").unwrap_err();
        assert!(err.contains("missing field `version`"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip() {
        let snap = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("postcard_runtime_snapshot_test.json");
        snap.save(&path).unwrap();
        let back = RuntimeSnapshot::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, snap);
    }
}
