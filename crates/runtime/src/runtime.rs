//! The slot-driven controller service.
//!
//! [`Runtime`] wires everything together: each slot it (1) applies scheduled
//! link degradations (capacity 0 models a full outage), (2) offers the
//! slot's arrivals to the bounded admission queue and drains the backlog
//! that is still within deadline, (3) arms forced solver timeouts and drives
//! the online controller through the fallback chain, (4) records metrics,
//! and (5) checkpoints every `checkpoint_every` slots. A slot is *never*
//! missed: the chain's final tier always commits, and if even that tier
//! hard-fails the runtime steps the controller with an empty batch so the
//! cost history stays slot-aligned (the slot is counted as degraded).
//!
//! Batches a slot could not schedule — strict analysis rejected them for
//! transient reasons, or the whole chain hard-failed — are *not* thrown
//! away: they go back to the front of the backlog and retry in a later slot
//! (the run horizon extends to give them one), each request at most
//! [`RuntimeConfig::max_requeue_attempts`] times before it counts as lost.
//! Requests whose deadline passes while queued are evicted at the next
//! drain (`backlog_expired`). Carried requests are re-stamped at drain time
//! so their *absolute* deadline is preserved (see
//! [`postcard_net::TransferRequest::carried_to`]).
//!
//! With [`ClockKind::Sim`] the whole service is deterministic, so killing a
//! run at any checkpoint and resuming with [`Runtime::resume`] reproduces
//! the uninterrupted run bit for bit — the property the integration tests
//! assert. Under [`ClockKind::Wall`] budget decisions depend on real solve
//! times and resume is best-effort.

use crate::arrivals::ArrivalSchedule;
use crate::clock::{ClockKind, WallStopwatch};
use crate::fallback::{AttemptOutcome, AttemptRecord, FallbackChain, TierKind};
use crate::faults::{FaultPlan, LinkDegradation};
use crate::metrics::MetricsRegistry;
use crate::queue::{AdmissionQueue, QueuedRequest};
use crate::shard::{manifest, ShardBy, ShardEngine, ShardState};
use crate::snapshot::{RuntimeSnapshot, SNAPSHOT_VERSION};
use postcard_analyze::check_problem;
use postcard_core::{
    build_postcard_problem, OnlineController, PostcardConfig, PostcardError, StepReport,
};
use postcard_net::{ChargingScheme, DcId, Network, TransferRequest};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Configuration of a [`Runtime`] (serialized into snapshots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Fallback tiers, strongest first.
    pub tiers: Vec<TierKind>,
    /// Per-slot solve budget in microseconds.
    pub slot_budget_us: u64,
    /// Checkpoint every this many slots (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// Where checkpoints are written (required when `checkpoint_every > 0`).
    pub checkpoint_path: Option<String>,
    /// Admission queue capacity: bounds the total *queued* backlog, not
    /// per-slot arrivals — carried-over work eats into the room for new
    /// arrivals.
    pub queue_capacity: usize,
    /// How many times an unscheduled batch entry is requeued before it
    /// counts as lost (0 restores drop-on-failure behavior).
    pub max_requeue_attempts: u32,
    /// Which clock measures the solve budget.
    pub clock: ClockKind,
    /// Run `postcard-analyze`'s structural checks on every slot's problem
    /// before solving; batches whose problem has error-level findings are
    /// dropped (counted in the `analysis_rejections` metric) instead of
    /// being handed to the solver.
    pub strict_analysis: bool,
    /// Carry the optimal simplex basis between slots on the LP tiers so each
    /// solve warm-starts from the previous slot's optimum. Off by default;
    /// results are identical either way (stale bases degrade to cold
    /// solves), only solve effort changes.
    pub warm_start: bool,
    /// Keep a standing incremental Postcard formulation across slots: a
    /// same-shaped recurring batch advances the standing model in place
    /// (graph rebase + RHS/bound refresh) and re-solves with the dual
    /// simplex from the previous basis instead of rebuilding the LP. Shape
    /// changes rebuild automatically. Off by default. Adding this field is
    /// a snapshot format break (the vendored serde shim treats missing
    /// fields as errors), hence snapshot v7.
    pub incremental: bool,
    /// Put the ALAP fast-path admission rung ahead of the LP tiers:
    /// [`Runtime::new`] prepends [`TierKind::Alap`] to `tiers` (idempotent
    /// if it is already listed). Each request is then admitted or rejected
    /// in O(links × horizon) against the residual grid, with no LP solve.
    pub alap: bool,
    /// With the ALAP rung enabled, run the full LP re-optimization pass
    /// every this many slots (the ALAP rung is skipped there and the
    /// residual grid rebased from the LP's committed schedule). 0 disables
    /// periodic re-optimization.
    pub reopt_every: u64,
    /// Number of shards. 1 (the default) runs the classic single-solver
    /// path; above 1 each slot's batch is partitioned by [`Self::shard_by`]
    /// and the shards solve in parallel, merged deterministically by the
    /// reconciler (see [`crate::shard`]).
    pub shards: usize,
    /// The partition key for sharded runs (ignored when `shards == 1`).
    pub shard_by: ShardBy,
    /// How the provider is billed. `MaxPerSlot` (the default) reproduces the
    /// paper's running-peak objective bit for bit. A `Percentile` scheme
    /// prices the cost history per billing window and makes [`Runtime::new`]
    /// prepend the [`TierKind::Headroom`] rung, which serves bursts out of
    /// each window's free top-`(100−q)%` slots (CLI: `--charging p95:288`).
    /// Adding this field is a snapshot format break (the vendored serde shim
    /// treats missing fields as errors), hence snapshot v8.
    pub charging: ChargingScheme,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            tiers: TierKind::default_chain(),
            slot_budget_us: 250_000,
            checkpoint_every: 0,
            checkpoint_path: None,
            queue_capacity: 1024,
            max_requeue_attempts: 2,
            clock: ClockKind::Sim,
            strict_analysis: false,
            warm_start: false,
            incremental: false,
            alap: false,
            reopt_every: 0,
            shards: 1,
            shard_by: ShardBy::Tenant,
            charging: ChargingScheme::MaxPerSlot,
        }
    }
}

impl RuntimeConfig {
    /// The per-slot solve budget as a [`Duration`].
    pub fn slot_budget(&self) -> Duration {
        Duration::from_micros(self.slot_budget_us)
    }
}

/// Errors a running service can hit.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Snapshot load/save or other I/O failure.
    Snapshot(String),
    /// Even the empty-batch recovery step failed.
    Scheduler(PostcardError),
    /// Inconsistent configuration.
    Config(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Snapshot(m) => write!(f, "snapshot: {m}"),
            RuntimeError::Scheduler(e) => write!(f, "scheduler: {e}"),
            RuntimeError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// What one slot of service did.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOutcome {
    /// The controller's step report.
    pub report: StepReport,
    /// The tier that committed the slot's first decision (`None` for an
    /// empty batch, which commits trivially).
    pub chosen_tier: Option<TierKind>,
    /// `true` if the whole chain hard-failed and the slot ran degraded
    /// (empty batch, arrivals lost).
    pub degraded: bool,
    /// `true` if a checkpoint was written after this slot.
    pub checkpointed: bool,
}

/// A crash-safe, fault-tolerant controller service over one network, one
/// arrival schedule, and one fault plan.
#[derive(Debug)]
pub struct Runtime {
    controller: OnlineController<FallbackChain>,
    config: RuntimeConfig,
    arrivals: ArrivalSchedule,
    faults: FaultPlan,
    queue: AdmissionQueue,
    metrics: MetricsRegistry,
    /// `Some` iff `config.shards > 1`.
    engine: Option<ShardEngine>,
    /// Real wall-clock solve-time histograms. Deliberately a *separate*
    /// registry: wall times differ run to run, and folding them into the
    /// snapshotted metrics would break bit-identical resume.
    wall_metrics: MetricsRegistry,
    /// Capacity restores scheduled by started maintenance windows. The
    /// restore value (the pre-outage capacity) is only known once the
    /// outage starts, so it cannot be derived from the fault plan alone —
    /// it rides in the snapshot (v8) to keep mid-maintenance resume
    /// bit-identical.
    pending_restores: Vec<LinkDegradation>,
    next_slot: u64,
    num_slots: u64,
}

impl Runtime {
    /// Creates a fresh service run over `num_slots` slots (extended to cover
    /// every arrival if the schedule runs longer).
    ///
    /// # Errors
    ///
    /// Rejects an empty tier list or checkpointing without a path.
    pub fn new(
        network: Network,
        arrivals: ArrivalSchedule,
        faults: FaultPlan,
        num_slots: u64,
        mut config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        // `--alap` is sugar for "alap leads the tier list". Normalizing here
        // (idempotently) means snapshots store the effective chain and the
        // rest of the runtime can key off `tiers.first()` alone.
        if config.alap && config.tiers.first() != Some(&TierKind::Alap) {
            config.tiers.retain(|t| *t != TierKind::Alap);
            config.tiers.insert(0, TierKind::Alap);
        }
        // Percentile charging implies the headroom rung, ahead of everything
        // (including the ALAP rung: paid-for headroom beats any placement
        // that can still move the bill). Normalized the same idempotent way.
        if config.charging != ChargingScheme::MaxPerSlot
            && config.tiers.first() != Some(&TierKind::Headroom)
        {
            config.tiers.retain(|t| *t != TierKind::Headroom);
            config.tiers.insert(0, TierKind::Headroom);
        }
        Self::validate(&config)?;
        let chain = FallbackChain::with_charging(
            &config.tiers,
            config.slot_budget(),
            config.clock.build(),
            config.warm_start,
            config.incremental,
            config.charging,
        );
        // The horizon must cover every arrival's full deadline *window*, not
        // just its release slot — a late release with a multi-slot window
        // used to get its tail slots only via the requeue extension.
        let num_slots = num_slots.max(arrivals.horizon_slots());
        let engine = (config.shards > 1).then(|| ShardEngine::new(&config, network.num_dcs()));
        Ok(Self {
            controller: OnlineController::new(network, chain).with_charging(config.charging),
            queue: AdmissionQueue::new(config.queue_capacity),
            config,
            arrivals,
            faults,
            metrics: MetricsRegistry::new(),
            engine,
            wall_metrics: MetricsRegistry::new(),
            pending_restores: Vec::new(),
            next_slot: 0,
            num_slots,
        })
    }

    fn validate(config: &RuntimeConfig) -> Result<(), RuntimeError> {
        if config.tiers.is_empty() {
            return Err(RuntimeError::Config("tier list must not be empty".into()));
        }
        if config.queue_capacity == 0 {
            return Err(RuntimeError::Config("queue capacity must be at least 1".into()));
        }
        if config.checkpoint_every > 0 && config.checkpoint_path.is_none() {
            return Err(RuntimeError::Config(
                "checkpoint_every > 0 requires a checkpoint path".into(),
            ));
        }
        if config.shards == 0 {
            return Err(RuntimeError::Config("shard count must be at least 1".into()));
        }
        if config.tiers.contains(&TierKind::Headroom) && config.charging.free_slots() == 0 {
            return Err(RuntimeError::Config(
                "the headroom tier needs a percentile charging scheme with free slots \
                 (e.g. --charging p95:288)"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Restores a service from a snapshot file; stepping the result
    /// continues exactly where the snapshotted run left off.
    ///
    /// # Errors
    ///
    /// Reports unreadable/malformed snapshots or an invalid stored config.
    pub fn resume(path: &Path) -> Result<Self, RuntimeError> {
        let snap = RuntimeSnapshot::load(path).map_err(RuntimeError::Snapshot)?;
        // For a sharded checkpoint the file is the manifest: restore the
        // per-shard billing-attribution states from the files it references
        // before the engine is rebuilt.
        let states = if snap.config.shards > 1 && !snap.shard_refs.is_empty() {
            Some(
                manifest::load_shard_states(path, &snap.shard_refs, snap.config.shards)
                    .map_err(RuntimeError::Snapshot)?,
            )
        } else {
            None
        };
        let mut rt = Self::from_snapshot(snap)?;
        if let Some(states) = states {
            let engine = ShardEngine::with_states(&rt.config, states);
            rt.engine = Some(engine);
        }
        Ok(rt)
    }

    /// Rebuilds a service from an in-memory snapshot (see
    /// [`Runtime::resume`] for the file-based entry point).
    ///
    /// # Errors
    ///
    /// Reports an invalid stored config.
    pub fn from_snapshot(snap: RuntimeSnapshot) -> Result<Self, RuntimeError> {
        Self::validate(&snap.config)?;
        let network = snap.rebuild_network();
        // Warm-start state (the previous optimal basis) is deliberately not
        // snapshotted: a resumed run cold-solves its first slot, which only
        // costs pivots — committed results are unaffected. The ALAP residual
        // grid is likewise not snapshotted: a fresh `AlapTier` starts dirty
        // and deterministically rebuilds the grid from the restored ledger
        // on first use, so resumed runs stay bit-identical.
        let chain = FallbackChain::with_charging(
            &snap.config.tiers,
            snap.config.slot_budget(),
            snap.config.clock.build(),
            snap.config.warm_start,
            snap.config.incremental,
            snap.config.charging,
        );
        let mut queue = AdmissionQueue::new(snap.config.queue_capacity);
        queue.restore(snap.queue, snap.queue_dropped);
        // In-memory resume gets fresh (zeroed) shard states: the global
        // controller state above is complete, so *decisions* are unaffected;
        // only per-shard billing attribution restarts from zero. The
        // file-based [`Runtime::resume`] restores attribution too, from the
        // manifest's shard files.
        let engine =
            (snap.config.shards > 1).then(|| ShardEngine::new(&snap.config, network.num_dcs()));
        let charging = snap.config.charging;
        Ok(Self {
            controller: OnlineController::from_state(network, chain, snap.controller)
                .with_charging(charging),
            queue,
            config: snap.config,
            arrivals: snap.arrivals,
            faults: snap.faults,
            metrics: snap.metrics,
            engine,
            wall_metrics: MetricsRegistry::new(),
            pending_restores: snap.pending_restores,
            next_slot: snap.next_slot,
            num_slots: snap.num_slots,
        })
    }

    /// Snapshots the current state. Snapshots are taken at slot boundaries,
    /// but the backlog can be non-empty there (requeued batches carry over),
    /// so the queue contents are persisted too (snapshot format v4).
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            num_dcs: self.controller.network().num_dcs(),
            links: RuntimeSnapshot::links_of(self.controller.network()),
            arrivals: self.arrivals.clone(),
            faults: self.faults.clone(),
            queue: self.queue.entries().to_vec(),
            queue_dropped: self.queue.dropped(),
            controller: self.controller.export_state(),
            metrics: self.metrics.clone(),
            // Filled by `manifest::save_sharded` at write time (the refs
            // name the stamped files that actually land on disk).
            shard_refs: Vec::new(),
            pending_restores: self.pending_restores.clone(),
            next_slot: self.next_slot,
            num_slots: self.num_slots,
        }
    }

    /// Writes a snapshot to `path` (atomic; see [`RuntimeSnapshot::save`]).
    /// Sharded runtimes write the manifest protocol instead: per-shard
    /// snapshot files first (unchanged shards skipped), then the manifest,
    /// then an orphan sweep (see [`manifest::save_sharded`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn checkpoint(&mut self, path: &Path) -> Result<(), RuntimeError> {
        let snap = self.snapshot();
        match self.engine.as_mut() {
            Some(engine) => {
                let states = engine.states().to_vec();
                manifest::save_sharded(path, snap, &states, engine.saved_stamps_mut())
                    .map_err(RuntimeError::Snapshot)
            }
            None => snap.save(path).map_err(RuntimeError::Snapshot),
        }
    }

    /// Sends a batch the slot could not schedule back to the backlog:
    /// entries still inside their retry budget go to the front of the queue
    /// with `attempts` bumped, the rest count as lost. `kind` selects the
    /// metric family (`files_requeued_analysis` / `files_lost_analysis` or
    /// the `_degraded` pair). When anything was requeued the run horizon
    /// extends so the carried work gets at least one more slot.
    fn requeue_unscheduled(&mut self, entries: Vec<QueuedRequest>, slot: u64, kind: &str) {
        let mut retry = Vec::new();
        let mut lost = 0u64;
        for mut e in entries {
            if e.attempts < self.config.max_requeue_attempts {
                e.attempts += 1;
                retry.push(e);
            } else {
                lost += 1;
            }
        }
        if lost > 0 {
            self.metrics.inc(&format!("files_lost_{kind}"), lost);
        }
        if !retry.is_empty() {
            self.metrics.inc(&format!("files_requeued_{kind}"), retry.len() as u64);
            self.metrics.inc("requeued_total", retry.len() as u64);
            self.queue.requeue(retry);
            self.num_slots = self.num_slots.max(slot + 2);
        }
    }

    /// Runs one slot; `Ok(None)` once the run is complete.
    ///
    /// # Errors
    ///
    /// Reports checkpoint I/O failures and hard scheduler errors that even
    /// the degraded empty-batch step could not absorb.
    pub fn run_slot(&mut self) -> Result<Option<SlotOutcome>, RuntimeError> {
        if self.next_slot >= self.num_slots {
            return Ok(None);
        }
        let slot = self.next_slot;

        // (1) Faults first, all at the slot boundary, in a fixed order so
        // same-slot events compose deterministically: maintenance *restores*
        // scheduled earlier, then degradations (a degradation at the restore
        // slot wins), then price changes, then maintenance *outages*.
        let mut capacities_changed = false;
        let mut due_restores = Vec::new();
        self.pending_restores.retain(|r| {
            if r.slot == slot {
                due_restores.push(*r);
                false
            } else {
                true
            }
        });
        for r in due_restores {
            self.controller.network_mut().set_capacity(DcId(r.from), DcId(r.to), r.capacity);
            self.metrics.inc("maintenance_restores", 1);
            capacities_changed = true;
        }
        // Capacity 0 is a *valid* full-outage degradation (the formulation
        // simply gets no variables on the dead link); only unknown links and
        // negative/NaN capacities are skipped.
        for d in self.faults.degradations_at(slot).copied().collect::<Vec<_>>() {
            let (from, to) = (DcId(d.from), DcId(d.to));
            if self.controller.network().capacity(from, to).is_some() && d.capacity >= 0.0 {
                self.controller.network_mut().set_capacity(from, to, d.capacity);
                self.metrics.inc("degradations_applied", 1);
                capacities_changed = true;
            } else {
                self.metrics.inc("degradations_skipped", 1);
            }
        }
        let mut prices_changed = false;
        for p in self.faults.price_changes_at(slot).copied().collect::<Vec<_>>() {
            let (from, to) = (DcId(p.from), DcId(p.to));
            if self.controller.network().price(from, to).is_some() && p.price >= 0.0 {
                self.controller.network_mut().set_price(from, to, p.price);
                self.metrics.inc("price_changes_applied", 1);
                prices_changed = true;
            } else {
                self.metrics.inc("price_changes_skipped", 1);
            }
        }
        for m in self.faults.maintenance_starting_at(slot).copied().collect::<Vec<_>>() {
            let (from, to) = (DcId(m.from), DcId(m.to));
            match self.controller.network().capacity(from, to) {
                Some(prev) => {
                    // Remember the pre-outage capacity so the link comes
                    // back at `end` exactly as it went down.
                    self.pending_restores.push(LinkDegradation {
                        slot: m.end,
                        from: m.from,
                        to: m.to,
                        capacity: prev,
                    });
                    self.controller.network_mut().set_capacity(from, to, 0.0);
                    self.metrics.inc("maintenance_outages", 1);
                    capacities_changed = true;
                }
                None => {
                    self.metrics.inc("maintenance_skipped", 1);
                }
            }
        }
        if capacities_changed || prices_changed {
            // The ALAP residual grid caches link capacities and path costs;
            // capacity and price changes both invalidate it (no-op without
            // an ALAP rung).
            self.controller.scheduler_mut().mark_alap_dirty();
        }

        // (2) Bounded admission, then drain the backlog. Entries whose
        // deadline passed while they waited are evicted here; the rest are
        // re-stamped to this slot (preserving their absolute deadline) so
        // the controller's `release_slot == slot` invariant holds.
        let arrivals = self.arrivals.batch(slot);
        let dropped = self.queue.offer(&arrivals);
        if dropped > 0 {
            self.metrics.inc("queue_dropped", dropped as u64);
        }
        self.metrics.observe("queue_depth", self.queue.len() as f64);
        let (mut entries, expired) = self.queue.take_batch(slot);
        if expired > 0 {
            self.metrics.inc("backlog_expired", expired as u64);
        }
        let mut batch: Vec<TransferRequest> =
            entries.iter().filter_map(|e| e.request.carried_to(slot)).collect();

        // (2b) Strict pre-solve analysis: assemble the slot's problem
        // without solving and reject the batch on structural errors
        // (deadline-window violations, malformed graphs, unbounded
        // columns — see crates/analyze/LINTS.md) rather than letting a
        // malformed model reach the simplex.
        if self.config.strict_analysis && !batch.is_empty() {
            let verdict = build_postcard_problem(
                self.controller.network(),
                &batch,
                self.controller.ledger(),
                &PostcardConfig::default(),
            );
            // Analysis findings are *transient* (they depend on the slot's
            // network and ledger state, which change) → the batch retries
            // from the backlog. A construction failure is *permanent* (the
            // same batch fails identically every slot) → the batch is lost.
            let rejected = match verdict {
                Ok(problem) => {
                    let report = check_problem(&problem);
                    report.has_errors().then(|| (report.render_text(), true))
                }
                Err(e) => Some((format!("problem construction failed: {e}\n"), false)),
            };
            if let Some((findings, transient)) = rejected {
                self.metrics.inc("analysis_rejections", 1);
                // Distribution of rejected-batch sizes, so operators can see
                // whether strict mode is dropping single stragglers or whole
                // waves (exported with p50/p95/p99 like the latency series).
                self.metrics.observe("analysis_rejection_batch_size", batch.len() as f64);
                eprintln!(
                    "slot {slot}: strict analysis rejected the batch ({} file(s)):\n{findings}",
                    batch.len()
                );
                batch.clear();
                let unscheduled = std::mem::take(&mut entries);
                if transient {
                    self.requeue_unscheduled(unscheduled, slot, "analysis");
                } else {
                    self.metrics.inc("files_lost_analysis", unscheduled.len() as u64);
                }
            }
        }

        // (3) + (4): schedule and record metrics, on the single-solver or
        // the sharded path. On a scheduled re-optimization slot the ALAP
        // rung is skipped, so the full LP re-plans the batch; the residual
        // grid is rebased afterwards.
        // The headroom rung (prepended under percentile charging) sits ahead
        // of everything, so "ALAP-first" means the first *scheduling* tier.
        let alap_first =
            self.config.tiers.iter().find(|t| **t != TierKind::Headroom) == Some(&TierKind::Alap);
        let reopt_now = alap_first
            && self.config.reopt_every > 0
            && slot > 0
            && slot.is_multiple_of(self.config.reopt_every);
        let (report, chosen_tier, degraded) = if self.engine.is_some() {
            self.step_sharded(slot, entries, &batch, reopt_now)?
        } else {
            self.step_unsharded(slot, entries, &batch, reopt_now)?
        };

        // (5) Advance and checkpoint.
        self.next_slot = slot + 1;
        let due = self.config.checkpoint_every > 0
            && self.next_slot.is_multiple_of(self.config.checkpoint_every)
            && !self.is_finished();
        let checkpointed = if due {
            let path = PathBuf::from(
                // postcard-analyze: allow(PA102) — `checkpoint_every > 0`
                // implies a path; Runtime::new rejects the combination.
                self.config.checkpoint_path.as_deref().expect("validated at construction"),
            );
            // Count before saving so the snapshot includes its own write —
            // otherwise a resumed run would undercount checkpoints relative
            // to an uninterrupted one.
            self.metrics.inc("checkpoints_written", 1);
            self.checkpoint(&path)?;
            true
        } else {
            false
        };

        Ok(Some(SlotOutcome { report, chosen_tier, degraded, checkpointed }))
    }

    /// Steps (3)+(4) of a classic single-solver slot: drive the controller
    /// through the fallback chain, then record metrics.
    fn step_unsharded(
        &mut self,
        slot: u64,
        mut entries: Vec<QueuedRequest>,
        batch: &[TransferRequest],
        reopt_now: bool,
    ) -> Result<(StepReport, Option<TierKind>, bool), RuntimeError> {
        let forced = self.faults.timeouts_at(slot);
        self.controller.scheduler_mut().begin_slot(slot, forced);
        self.controller.scheduler_mut().set_skip_alap(reopt_now);
        let solve_started = (!batch.is_empty()).then(WallStopwatch::start);
        let (report, degraded) = match self.controller.step(slot, batch) {
            Ok(report) => (report, false),
            Err(_) => {
                // The whole chain hard-failed. Keep the slot: send the batch
                // back to the backlog (bounded by `max_requeue_attempts`),
                // then re-arm the chain and step with an empty batch
                // (trivially feasible) so cost_history stays slot-aligned.
                let unscheduled = std::mem::take(&mut entries);
                self.requeue_unscheduled(unscheduled, slot, "degraded");
                self.controller.scheduler_mut().begin_slot(slot, self.faults.timeouts_at(slot));
                let report = self.controller.step(slot, &[]).map_err(RuntimeError::Scheduler)?;
                (report, true)
            }
        };
        if let Some(started) = solve_started {
            self.wall_metrics.observe("solve_wall_seconds", started.elapsed_secs());
        }

        // (4) Metrics.
        self.metrics.inc("slots_total", 1);
        if degraded {
            self.metrics.inc("degraded_slots", 1);
        }
        self.metrics.inc("files_accepted", report.accepted.len() as u64);
        self.metrics.inc("files_rejected", report.rejected.len() as u64);
        self.metrics.set_gauge("bill_per_slot", report.cost_per_slot);
        self.metrics.observe("bill_per_slot_history", report.cost_per_slot);
        // Empty batches commit trivially on the first tier; recording them
        // would drown the tier-choice and latency metrics in no-ops.
        let chosen_tier =
            if batch.is_empty() { None } else { self.controller.scheduler().chosen_tier() };
        if let Some(tier) = chosen_tier {
            self.metrics.inc(&format!("tier_chosen_{}", tier.name()), 1);
            // A scheduled re-optimization deliberately lands on an LP tier,
            // and a headroom decline deliberately hands the slot to the
            // first scheduling tier; both are the design working, not a
            // fallback.
            let declined = self.controller.scheduler().headroom_declined();
            let expected_first = self
                .config
                .tiers
                .iter()
                .copied()
                .find(|t| *t != TierKind::Headroom || !declined)
                .unwrap_or(self.config.tiers[0]);
            if tier != expected_first && !reopt_now {
                self.metrics.inc("slots_on_fallback_tier", 1);
            }
        }
        let records = if batch.is_empty() {
            Vec::new()
        } else {
            self.controller.scheduler().records().to_vec()
        };
        if reopt_now && !batch.is_empty() {
            self.metrics.inc("lp_reoptimizations", 1);
        }
        // The ALAP rung's admission verdicts, from the step report: it
        // decided the slot when it committed or (per-file) rejected, and no
        // other tier committed over its head.
        let alap_decided = records.iter().any(|r| {
            r.tier == TierKind::Alap
                && matches!(
                    r.outcome,
                    AttemptOutcome::Committed
                        | AttemptOutcome::CommittedAfterRetry
                        | AttemptOutcome::Infeasible
                )
        });
        if alap_decided && chosen_tier.is_none_or(|t| t == TierKind::Alap) {
            if !report.accepted.is_empty() {
                self.metrics.inc("alap_admits", report.accepted.len() as u64);
            }
            if !report.rejected.is_empty() {
                self.metrics.inc("alap_rejects", report.rejected.len() as u64);
            }
        }
        self.record_attempt_metrics(&records);
        // Any committed decision the ALAP rung did not make itself (an LP
        // re-optimization, a forced fallback) changes the ledger behind the
        // residual grid's back: rebase before the next admission.
        if (degraded || chosen_tier.is_some_and(|t| t != TierKind::Alap))
            && self.config.tiers.contains(&TierKind::Alap)
        {
            self.controller.scheduler_mut().mark_alap_dirty();
        }
        Ok((report, chosen_tier, degraded))
    }

    /// Folds one slot's tier-attempt records into the metrics registry
    /// (shared by the unsharded path and every shard of a sharded slot).
    fn record_attempt_metrics(&mut self, records: &[AttemptRecord]) {
        for rec in records {
            match rec.outcome {
                AttemptOutcome::Committed | AttemptOutcome::CommittedAfterRetry => {
                    self.metrics.observe(
                        &format!("solve_latency_seconds_{}", rec.tier.name()),
                        rec.elapsed.as_secs_f64(),
                    );
                    self.metrics.observe("lp_iterations", rec.lp_iterations as f64);
                    if rec.dual_iterations > 0 {
                        self.metrics.inc("dual_simplex_iters", rec.dual_iterations as u64);
                    }
                    if rec.delta_hit {
                        self.metrics.inc("model_delta_hits", 1);
                    }
                    if rec.rebuilt {
                        self.metrics.inc("model_rebuilds", 1);
                    }
                    if rec.tier == TierKind::Alap {
                        self.metrics
                            .observe("admission_latency_seconds", rec.elapsed.as_secs_f64());
                    }
                    // Warm starts only exist on the LP tiers; counting the
                    // combinatorial or ALAP rungs here would report their
                    // cold solves as basis misses.
                    if self.config.warm_start
                        && matches!(rec.tier, TierKind::Postcard | TierKind::FlowLp)
                    {
                        if rec.warm_started {
                            self.metrics.inc("warm_start_hits", 1);
                        } else {
                            self.metrics.inc("warm_start_misses", 1);
                        }
                    }
                    if rec.outcome == AttemptOutcome::CommittedAfterRetry {
                        self.metrics.inc("tier_retries", 1);
                    }
                }
                AttemptOutcome::ForcedTimeout
                | AttemptOutcome::BudgetExceeded
                | AttemptOutcome::Failed => {
                    self.metrics.inc("fallback_activations", 1);
                    self.metrics.inc(&format!("fallback_from_{}", rec.tier.name()), 1);
                }
                AttemptOutcome::Infeasible => {
                    // Handled by per-file admission; rejections are counted
                    // from the step report (and `alap_rejects` above)
                    // instead.
                    if rec.tier == TierKind::Alap {
                        self.metrics
                            .observe("admission_latency_seconds", rec.elapsed.as_secs_f64());
                    }
                }
                AttemptOutcome::Skipped => {
                    // A scheduled re-optimization skip, not a failure.
                }
                AttemptOutcome::Declined => {
                    // The headroom rung found no burst budget and handed the
                    // batch down — by design, so not a fallback activation.
                    self.metrics.inc("headroom_declined", 1);
                }
            }
        }
    }

    /// Steps (3)+(4) of a sharded slot: partition the batch, run every
    /// shard's optimistic solve in parallel, merge in fixed shard order
    /// (re-solving conflicted shards serially), commit the merged result to
    /// the central ledger, and record metrics.
    fn step_sharded(
        &mut self,
        slot: u64,
        entries: Vec<QueuedRequest>,
        batch: &[TransferRequest],
        reopt_now: bool,
    ) -> Result<(StepReport, Option<TierKind>, bool), RuntimeError> {
        let forced = self.faults.timeouts_at(slot);
        // postcard-analyze: allow(PA102) — run_slot only dispatches here
        // when `shards > 1`, and Runtime construction builds the engine for
        // every such config.
        let engine = self.engine.as_mut().expect("sharded step requires an engine");
        let planner = *engine.planner();
        let batches = planner.partition(batch);
        let started = WallStopwatch::start();
        let result = engine.run_slot(
            self.controller.network(),
            self.controller.ledger(),
            &batches,
            slot,
            &forced,
            reopt_now,
        );
        let total_wall = started.elapsed_secs();

        // A hard-failed shard degrades only itself: its entries go back to
        // the backlog, every other shard's merged result stands.
        let degraded = !result.degraded_shards.is_empty();
        if degraded {
            let requeue: Vec<QueuedRequest> = entries
                .into_iter()
                .filter(|e| {
                    e.request
                        .carried_to(slot)
                        .is_some_and(|r| result.degraded_shards.contains(&planner.shard_of(&r)))
                })
                .collect();
            self.requeue_unscheduled(requeue, slot, "degraded");
        }

        // One central commit for the whole merged slot: the per-shard
        // decisions land on the single billing ledger in shard order, and
        // the cost history stays slot-aligned.
        let report = self.controller.commit_reconciled(
            slot,
            &result.commits,
            result.accepted,
            result.rejected,
            result.accepted_volume,
            result.rejected_volume,
        );

        // (4) Metrics — the same families as the unsharded path, plus the
        // shard-specific counters.
        self.metrics.inc("slots_total", 1);
        if degraded {
            self.metrics.inc("degraded_slots", 1);
            self.metrics.inc("degraded_shards", result.degraded_shards.len() as u64);
        }
        self.metrics.inc("files_accepted", report.accepted.len() as u64);
        self.metrics.inc("files_rejected", report.rejected.len() as u64);
        self.metrics.set_gauge("bill_per_slot", report.cost_per_slot);
        self.metrics.observe("bill_per_slot_history", report.cost_per_slot);
        if result.conflicts > 0 {
            self.metrics.inc("shard_conflicts", result.conflicts);
        }
        if reopt_now && !batch.is_empty() {
            self.metrics.inc("lp_reoptimizations", 1);
        }
        // The slot's representative tier is the first non-empty shard's —
        // the same "first decision" rule the unsharded path applies.
        let chosen_tier =
            result.resolutions.iter().find(|s| s.batch_len > 0).and_then(|s| s.chosen_tier);
        if let Some(tier) = chosen_tier {
            self.metrics.inc(&format!("tier_chosen_{}", tier.name()), 1);
            // Same carve-outs as the unsharded path: a scheduled
            // re-optimization and a headroom decline are by design.
            let declined = result.resolutions.iter().any(|s| {
                s.batch_len > 0 && s.records.iter().any(|r| r.outcome == AttemptOutcome::Declined)
            });
            let expected_first = self
                .config
                .tiers
                .iter()
                .copied()
                .find(|t| *t != TierKind::Headroom || !declined)
                .unwrap_or(self.config.tiers[0]);
            if tier != expected_first && !reopt_now {
                self.metrics.inc("slots_on_fallback_tier", 1);
            }
        }
        if !batch.is_empty() {
            self.wall_metrics.observe("solve_wall_seconds", total_wall);
        }
        for solve in &result.resolutions {
            if solve.batch_len == 0 {
                continue;
            }
            self.wall_metrics
                .observe(&format!("solve_wall_seconds_shard{}", solve.shard), solve.wall_seconds);
            for line in &solve.diagnostics {
                eprintln!("slot {slot}: {line}");
            }
            let alap_decided = solve.records.iter().any(|r| {
                r.tier == TierKind::Alap
                    && matches!(
                        r.outcome,
                        AttemptOutcome::Committed
                            | AttemptOutcome::CommittedAfterRetry
                            | AttemptOutcome::Infeasible
                    )
            });
            if alap_decided && solve.chosen_tier.is_none_or(|t| t == TierKind::Alap) {
                if !solve.accepted.is_empty() {
                    self.metrics.inc("alap_admits", solve.accepted.len() as u64);
                }
                if !solve.rejected.is_empty() {
                    self.metrics.inc("alap_rejects", solve.rejected.len() as u64);
                }
            }
            self.record_attempt_metrics(&solve.records);
        }
        Ok((report, chosen_tier, degraded))
    }

    /// Runs every remaining slot.
    ///
    /// # Errors
    ///
    /// Stops at the first [`RuntimeError`]; completed slots stay committed.
    pub fn run_to_end(&mut self) -> Result<Vec<SlotOutcome>, RuntimeError> {
        let mut outcomes = Vec::new();
        while let Some(outcome) = self.run_slot()? {
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// `true` once every slot has run.
    pub fn is_finished(&self) -> bool {
        self.next_slot >= self.num_slots
    }

    /// The next slot to run.
    pub fn next_slot(&self) -> u64 {
        self.next_slot
    }

    /// One past the last slot of the run.
    pub fn num_slots(&self) -> u64 {
        self.num_slots
    }

    /// The underlying online controller.
    pub fn controller(&self) -> &OnlineController<FallbackChain> {
        &self.controller
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Real wall-clock solve-time histograms (`solve_wall_seconds` for the
    /// whole slot, `solve_wall_seconds_shard{i}` per shard). Kept out of
    /// [`Runtime::metrics`] and out of snapshots: wall times vary run to
    /// run, and snapshotting them would break bit-identical resume.
    pub fn wall_metrics(&self) -> &MetricsRegistry {
        &self.wall_metrics
    }

    /// Per-shard billing-attribution states, `None` on an unsharded
    /// runtime.
    pub fn shard_states(&self) -> Option<&[ShardState]> {
        self.engine.as_ref().map(|e| e.states())
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Bill per slot after every completed slot.
    pub fn cost_history(&self) -> &[f64] {
        self.controller.cost_history()
    }

    /// Bill per slot after the most recent slot (0 before any).
    pub fn final_cost_per_slot(&self) -> f64 {
        self.controller.cost_per_slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use postcard_net::{FileId, NetworkBuilder, TransferRequest};

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    fn net() -> Network {
        NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 100.0)
            .link(d(1), d(0), 1.0, 100.0)
            .link(d(0), d(2), 3.0, 100.0)
            .build()
    }

    fn arrivals() -> ArrivalSchedule {
        ArrivalSchedule::from_requests(vec![
            TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0),
            TransferRequest::new(FileId(2), d(1), d(2), 4.0, 2, 2),
        ])
    }

    #[test]
    fn fresh_run_completes_every_slot() {
        let mut rt =
            Runtime::new(net(), arrivals(), FaultPlan::none(), 4, RuntimeConfig::default())
                .unwrap();
        let outcomes = rt.run_to_end().unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(rt.is_finished());
        assert_eq!(rt.cost_history().len(), 4);
        assert_eq!(rt.metrics().counter("slots_total"), 4);
        assert_eq!(rt.metrics().counter("files_accepted"), 2);
        assert_eq!(rt.metrics().counter("tier_chosen_postcard"), 2);
        assert_eq!(rt.metrics().counter("fallback_activations"), 0);
    }

    #[test]
    fn forced_timeout_records_fallback_activation() {
        let faults = FaultPlan::none().force_timeout(0, TierKind::Postcard);
        let mut rt = Runtime::new(net(), arrivals(), faults, 4, RuntimeConfig::default()).unwrap();
        let outcomes = rt.run_to_end().unwrap();
        assert_eq!(outcomes[0].chosen_tier, Some(TierKind::FlowLp));
        assert_eq!(outcomes[2].chosen_tier, Some(TierKind::Postcard));
        assert_eq!(rt.metrics().counter("fallback_activations"), 1);
        assert_eq!(rt.metrics().counter("fallback_from_postcard"), 1);
        assert_eq!(rt.metrics().counter("slots_on_fallback_tier"), 1);
    }

    #[test]
    fn degradation_shrinks_capacity_at_its_slot() {
        let faults = FaultPlan::none().degrade(1, d(1), d(2), 5.0);
        let mut rt = Runtime::new(net(), arrivals(), faults, 3, RuntimeConfig::default()).unwrap();
        rt.run_slot().unwrap();
        assert_eq!(rt.controller().network().capacity(d(1), d(2)), Some(100.0));
        rt.run_slot().unwrap();
        assert_eq!(rt.controller().network().capacity(d(1), d(2)), Some(5.0));
        assert_eq!(rt.metrics().counter("degradations_applied"), 1);
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut reqs = Vec::new();
        for i in 0..5 {
            reqs.push(TransferRequest::new(FileId(i), d(1), d(2), 1.0, 2, 0));
        }
        let config = RuntimeConfig { queue_capacity: 3, ..Default::default() };
        let mut rt =
            Runtime::new(net(), ArrivalSchedule::from_requests(reqs), FaultPlan::none(), 2, config)
                .unwrap();
        let outcomes = rt.run_to_end().unwrap();
        assert_eq!(outcomes[0].report.accepted.len(), 3);
        assert_eq!(rt.metrics().counter("queue_dropped"), 2);
        assert_eq!(rt.metrics().counter("files_accepted"), 3);
    }

    #[test]
    fn run_extends_to_cover_all_arrivals() {
        let rt = Runtime::new(net(), arrivals(), FaultPlan::none(), 1, RuntimeConfig::default())
            .unwrap();
        // File 2 releases at slot 2 with a 2-slot deadline window: the
        // horizon covers the *window* (slots 2..=3), not just the release.
        assert_eq!(rt.num_slots(), 4, "deadline window extends the horizon");
    }

    #[test]
    fn horizon_covers_full_deadline_window_of_late_releases() {
        // Regression: the horizon used to come from `num_slots()` (last
        // release + 1), so this request's 5-slot window was truncated to
        // its release slot and only requeue churn could extend the run.
        let reqs = vec![TransferRequest::new(FileId(1), d(1), d(2), 400.0, 5, 3)];
        let mut rt = Runtime::new(
            net(),
            ArrivalSchedule::from_requests(reqs),
            FaultPlan::none(),
            0,
            RuntimeConfig::default(),
        )
        .unwrap();
        assert_eq!(rt.num_slots(), 8, "slots 3..=7 belong to the window");
        // 400 GB over capacity-100 links needs several slots: without the
        // full window the file would be rejected outright.
        rt.run_to_end().unwrap();
        assert_eq!(rt.metrics().counter("files_accepted"), 1);
        assert_eq!(rt.metrics().counter("requeued_total"), 0, "no requeue churn");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_tiers = RuntimeConfig { tiers: vec![], ..Default::default() };
        assert!(matches!(
            Runtime::new(net(), arrivals(), FaultPlan::none(), 1, bad_tiers),
            Err(RuntimeError::Config(_))
        ));
        let bad_ckpt = RuntimeConfig { checkpoint_every: 5, ..Default::default() };
        assert!(matches!(
            Runtime::new(net(), arrivals(), FaultPlan::none(), 1, bad_ckpt),
            Err(RuntimeError::Config(_))
        ));
    }

    #[test]
    fn strict_analysis_is_silent_on_valid_workloads() {
        let config = RuntimeConfig { strict_analysis: true, ..Default::default() };
        let mut strict = Runtime::new(net(), arrivals(), FaultPlan::none(), 4, config).unwrap();
        let mut plain =
            Runtime::new(net(), arrivals(), FaultPlan::none(), 4, RuntimeConfig::default())
                .unwrap();
        strict.run_to_end().unwrap();
        plain.run_to_end().unwrap();
        assert_eq!(strict.metrics().counter("analysis_rejections"), 0);
        assert_eq!(strict.metrics().counter("files_accepted"), 2);
        // Strict mode must not change the outcome of a clean run.
        for (a, b) in strict.cost_history().iter().zip(plain.cost_history()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn strict_analysis_rejects_unbuildable_batches() {
        // A request naming datacenter 7 in a 3-datacenter network: problem
        // construction fails, so strict mode drops the batch pre-solve
        // instead of letting the slot degrade through the fallback chain.
        let reqs = vec![
            TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0),
            TransferRequest::new(FileId(2), DcId(7), d(2), 4.0, 2, 0),
        ];
        let config = RuntimeConfig { strict_analysis: true, ..Default::default() };
        let mut rt =
            Runtime::new(net(), ArrivalSchedule::from_requests(reqs), FaultPlan::none(), 2, config)
                .unwrap();
        let outcomes = rt.run_to_end().unwrap();
        assert_eq!(rt.metrics().counter("analysis_rejections"), 1);
        // Construction failures are permanent: the batch is lost outright,
        // never requeued (retrying would fail identically every slot).
        assert_eq!(rt.metrics().counter("files_lost_analysis"), 2);
        assert_eq!(rt.metrics().counter("files_requeued_analysis"), 0);
        assert_eq!(rt.metrics().counter("requeued_total"), 0);
        assert_eq!(rt.metrics().counter("files_accepted"), 0);
        // The slot still ran (empty batch) and was not counted as degraded.
        // (Three slots: file 1's deadline window reaches slot 2.)
        assert_eq!(outcomes.len(), 3);
        assert!(!outcomes[0].degraded);
    }

    #[test]
    fn degraded_slot_requeues_batch_until_attempts_exhausted() {
        // A single-tier chain with an out-of-range datacenter and strict
        // mode off: the chain hard-fails deterministically every slot, so
        // the batch is requeued `max_requeue_attempts` times, then lost.
        let reqs = vec![TransferRequest::new(FileId(1), DcId(7), d(2), 4.0, 10, 0)];
        let config = RuntimeConfig { tiers: vec![TierKind::Postcard], ..Default::default() };
        let mut rt =
            Runtime::new(net(), ArrivalSchedule::from_requests(reqs), FaultPlan::none(), 1, config)
                .unwrap();
        let outcomes = rt.run_to_end().unwrap();
        // Slot 0 fails → requeue (attempt 1); slot 1 fails → requeue
        // (attempt 2); slot 2 fails → budget exhausted. The run then idles
        // out the request's 10-slot deadline window (horizon 10).
        assert_eq!(outcomes.len(), 10, "horizon covers the deadline window");
        assert!(outcomes.iter().take(3).all(|o| o.degraded));
        assert!(outcomes.iter().skip(3).all(|o| !o.degraded));
        assert_eq!(rt.metrics().counter("files_requeued_degraded"), 2);
        assert_eq!(rt.metrics().counter("requeued_total"), 2);
        assert_eq!(rt.metrics().counter("files_lost_degraded"), 1);
        assert_eq!(rt.metrics().counter("degraded_slots"), 3);
        assert!(rt.is_finished());
    }

    #[test]
    fn requeued_request_expires_from_backlog_past_its_deadline() {
        // Deadline of 1 slot: the request can only run at slot 0. The chain
        // hard-fails there, the entry is requeued, and the next drain evicts
        // it as expired instead of handing the controller a dead request.
        let reqs = vec![TransferRequest::new(FileId(1), DcId(7), d(2), 4.0, 1, 0)];
        let config = RuntimeConfig { tiers: vec![TierKind::Postcard], ..Default::default() };
        let mut rt =
            Runtime::new(net(), ArrivalSchedule::from_requests(reqs), FaultPlan::none(), 1, config)
                .unwrap();
        rt.run_to_end().unwrap();
        assert_eq!(rt.metrics().counter("files_requeued_degraded"), 1);
        assert_eq!(rt.metrics().counter("backlog_expired"), 1);
        assert_eq!(rt.metrics().counter("files_lost_degraded"), 0);
        assert_eq!(rt.metrics().counter("degraded_slots"), 1);
    }

    #[test]
    fn requeued_request_is_rescheduled_with_absolute_deadline() {
        // A *valid* request rides along with one that breaks the chain: both
        // requeue at slot 0, and at slot 1 the backlog (valid request
        // re-stamped to release_slot 1) schedules normally.
        let reqs = vec![
            TransferRequest::new(FileId(1), d(1), d(2), 6.0, 4, 0),
            TransferRequest::new(FileId(2), DcId(7), d(2), 4.0, 2, 0),
        ];
        let config = RuntimeConfig { tiers: vec![TierKind::Postcard], ..Default::default() };
        let mut rt =
            Runtime::new(net(), ArrivalSchedule::from_requests(reqs), FaultPlan::none(), 1, config)
                .unwrap();
        let first = rt.run_slot().unwrap().unwrap();
        assert!(first.degraded);
        assert_eq!(rt.metrics().counter("files_requeued_degraded"), 2);
        let second = rt.run_slot().unwrap().unwrap();
        // Still degraded (the bad request is back too), the valid file keeps
        // retrying until its retry budget runs out — it is never silently
        // dropped while schedulable.
        assert!(second.degraded);
        assert_eq!(rt.metrics().counter("files_requeued_degraded"), 4);
    }

    #[test]
    fn zero_capacity_degradation_is_applied_not_skipped() {
        // A dead link (capacity 0) is a valid full outage; only negative
        // capacities and unknown links are skipped.
        let faults = FaultPlan::none()
            .degrade(0, d(1), d(2), 0.0)
            .degrade(0, d(0), d(2), -5.0)
            .degrade(0, d(2), d(0), 7.0); // link does not exist
        let mut rt = Runtime::new(net(), arrivals(), faults, 3, RuntimeConfig::default()).unwrap();
        rt.run_slot().unwrap();
        assert_eq!(rt.controller().network().capacity(d(1), d(2)), Some(0.0));
        assert_eq!(rt.controller().network().capacity(d(0), d(2)), Some(100.0));
        assert_eq!(rt.metrics().counter("degradations_applied"), 1);
        assert_eq!(rt.metrics().counter("degradations_skipped"), 2);
    }

    #[test]
    fn queue_depth_is_observed_every_slot() {
        let mut rt =
            Runtime::new(net(), arrivals(), FaultPlan::none(), 4, RuntimeConfig::default())
                .unwrap();
        rt.run_to_end().unwrap();
        let depth = rt.metrics().histogram("queue_depth").unwrap();
        assert_eq!(depth.count, 4, "one observation per slot");
        assert_eq!(depth.max, 1.0, "at most one request queued at once");
    }

    #[test]
    fn warm_start_run_matches_cold_costs_and_counts_hits() {
        let config = RuntimeConfig { warm_start: true, ..Default::default() };
        let mut warm = Runtime::new(net(), arrivals(), FaultPlan::none(), 4, config).unwrap();
        let mut cold =
            Runtime::new(net(), arrivals(), FaultPlan::none(), 4, RuntimeConfig::default())
                .unwrap();
        warm.run_to_end().unwrap();
        cold.run_to_end().unwrap();
        // Equivalence gate: same bills to 1e-6 on every slot.
        assert_eq!(warm.cost_history().len(), cold.cost_history().len());
        for (a, b) in warm.cost_history().iter().zip(cold.cost_history()) {
            assert!((a - b).abs() < 1e-6, "warm {a} vs cold {b}");
        }
        assert_eq!(warm.metrics().counter("files_accepted"), 2);
        // Two non-empty batches: the first solve misses, the second hits.
        assert_eq!(warm.metrics().counter("warm_start_misses"), 1);
        assert_eq!(warm.metrics().counter("warm_start_hits"), 1);
        assert_eq!(cold.metrics().counter("warm_start_hits"), 0);
    }

    #[test]
    fn snapshot_resume_continues_identically() {
        let faults =
            FaultPlan::none().force_timeout(2, TierKind::Postcard).degrade(1, d(0), d(2), 50.0);
        let mut full =
            Runtime::new(net(), arrivals(), faults.clone(), 4, RuntimeConfig::default()).unwrap();
        full.run_to_end().unwrap();

        let mut half =
            Runtime::new(net(), arrivals(), faults, 4, RuntimeConfig::default()).unwrap();
        half.run_slot().unwrap();
        half.run_slot().unwrap();
        let snap = half.snapshot();
        drop(half); // "crash"
        let mut resumed = Runtime::from_snapshot(snap).unwrap();
        resumed.run_to_end().unwrap();

        assert_eq!(resumed.cost_history().len(), full.cost_history().len());
        for (a, b) in resumed.cost_history().iter().zip(full.cost_history()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-identical continuation");
        }
        assert_eq!(resumed.metrics(), full.metrics());
    }

    #[test]
    fn alap_flag_prepends_the_rung_idempotently() {
        let config = RuntimeConfig { alap: true, ..Default::default() };
        let rt = Runtime::new(net(), arrivals(), FaultPlan::none(), 4, config).unwrap();
        assert_eq!(
            rt.config().tiers,
            vec![TierKind::Alap, TierKind::Postcard, TierKind::FlowLp, TierKind::Greedy]
        );
        // Already-listed rungs are not duplicated, wherever they appear.
        let config = RuntimeConfig {
            alap: true,
            tiers: vec![TierKind::Postcard, TierKind::Alap],
            ..Default::default()
        };
        let rt = Runtime::new(net(), arrivals(), FaultPlan::none(), 4, config).unwrap();
        assert_eq!(rt.config().tiers, vec![TierKind::Alap, TierKind::Postcard]);
    }

    #[test]
    fn alap_rung_admits_every_request_without_an_lp_solve() {
        let config = RuntimeConfig { alap: true, ..Default::default() };
        let mut rt = Runtime::new(net(), arrivals(), FaultPlan::none(), 4, config).unwrap();
        let outcomes = rt.run_to_end().unwrap();
        assert_eq!(rt.metrics().counter("files_accepted"), 2);
        assert_eq!(rt.metrics().counter("alap_admits"), 2);
        assert_eq!(rt.metrics().counter("alap_rejects"), 0);
        assert_eq!(rt.metrics().counter("tier_chosen_alap"), 2);
        assert_eq!(rt.metrics().counter("tier_chosen_postcard"), 0);
        assert_eq!(rt.metrics().counter("slots_on_fallback_tier"), 0);
        // Every non-empty slot was decided by the ALAP rung, LP never ran.
        for o in &outcomes {
            assert!(o.chosen_tier.is_none() || o.chosen_tier == Some(TierKind::Alap));
        }
        let lat = rt.metrics().histogram("admission_latency_seconds").unwrap();
        assert_eq!(lat.count, 2, "one admission decision per file");
    }

    #[test]
    fn alap_rung_rejects_infeasible_requests_instantly() {
        // 500 GB with a 1-slot deadline over capacity-100 links: nothing can
        // place it; a feasible rider shares the batch and still gets in.
        let reqs = vec![
            TransferRequest::new(FileId(1), d(1), d(2), 500.0, 1, 0),
            TransferRequest::new(FileId(2), d(1), d(2), 6.0, 3, 0),
        ];
        let config = RuntimeConfig { alap: true, ..Default::default() };
        let mut rt =
            Runtime::new(net(), ArrivalSchedule::from_requests(reqs), FaultPlan::none(), 0, config)
                .unwrap();
        rt.run_to_end().unwrap();
        assert_eq!(rt.metrics().counter("alap_admits"), 1);
        assert_eq!(rt.metrics().counter("alap_rejects"), 1);
        assert_eq!(rt.metrics().counter("files_rejected"), 1);
        assert_eq!(rt.metrics().counter("files_accepted"), 1);
        // Rejections are final (loss accounting), not requeued.
        assert_eq!(rt.metrics().counter("requeued_total"), 0);
    }

    #[test]
    fn reopt_slots_run_the_lp_and_rebase_the_grid() {
        let config = RuntimeConfig { alap: true, reopt_every: 2, ..Default::default() };
        let mut rt = Runtime::new(net(), arrivals(), FaultPlan::none(), 4, config).unwrap();
        let outcomes = rt.run_to_end().unwrap();
        // Slot 0 (non-empty): ALAP admits. Slot 2 (non-empty, 2 % 2 == 0):
        // the rung is skipped and the Postcard LP re-plans.
        assert_eq!(outcomes[0].chosen_tier, Some(TierKind::Alap));
        assert_eq!(outcomes[2].chosen_tier, Some(TierKind::Postcard));
        assert_eq!(rt.metrics().counter("lp_reoptimizations"), 1);
        assert_eq!(rt.metrics().counter("alap_admits"), 1);
        // A scheduled re-optimization is not a fallback event.
        assert_eq!(rt.metrics().counter("fallback_activations"), 0);
        assert_eq!(rt.metrics().counter("slots_on_fallback_tier"), 0);
        assert_eq!(rt.metrics().counter("files_accepted"), 2);
    }

    #[test]
    fn alap_run_resumes_bit_identically_with_backlog() {
        let faults = FaultPlan::none().degrade(1, d(0), d(2), 50.0);
        let config = RuntimeConfig { alap: true, reopt_every: 2, ..Default::default() };
        let mut full = Runtime::new(net(), arrivals(), faults.clone(), 4, config.clone()).unwrap();
        full.run_to_end().unwrap();

        let mut half = Runtime::new(net(), arrivals(), faults, 4, config).unwrap();
        half.run_slot().unwrap();
        half.run_slot().unwrap();
        let snap = half.snapshot();
        drop(half); // "crash" — the residual grid dies with the process
        let mut resumed = Runtime::from_snapshot(snap).unwrap();
        resumed.run_to_end().unwrap();

        for (a, b) in resumed.cost_history().iter().zip(full.cost_history()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-identical continuation");
        }
        assert_eq!(resumed.metrics(), full.metrics());
    }

    #[test]
    fn price_change_reprices_the_link_at_its_slot() {
        // The direct 1→2 link is repriced mid-run; unknown links are skipped.
        let faults = FaultPlan::none().reprice(1, d(1), d(2), 2.0).reprice(1, d(2), d(0), 1.0);
        let mut rt = Runtime::new(net(), arrivals(), faults, 3, RuntimeConfig::default()).unwrap();
        rt.run_slot().unwrap();
        assert_eq!(rt.controller().network().price(d(1), d(2)), Some(10.0));
        rt.run_slot().unwrap();
        assert_eq!(rt.controller().network().price(d(1), d(2)), Some(2.0));
        assert_eq!(rt.metrics().counter("price_changes_applied"), 1);
        assert_eq!(rt.metrics().counter("price_changes_skipped"), 1);
    }

    #[test]
    fn maintenance_window_outage_then_exact_restore() {
        // Link 0→2 goes dark for slots 1..3 and must come back at exactly
        // the capacity it went down with — including a degradation that
        // landed before the window opened.
        let faults = FaultPlan::none().degrade(1, d(0), d(2), 40.0).maintain(1, 3, d(0), d(2));
        let mut rt = Runtime::new(net(), arrivals(), faults, 5, RuntimeConfig::default()).unwrap();
        rt.run_slot().unwrap(); // slot 0: untouched
        assert_eq!(rt.controller().network().capacity(d(0), d(2)), Some(100.0));
        rt.run_slot().unwrap(); // slot 1: degrade to 40, then the outage
        assert_eq!(rt.controller().network().capacity(d(0), d(2)), Some(0.0));
        rt.run_slot().unwrap(); // slot 2: still dark
        assert_eq!(rt.controller().network().capacity(d(0), d(2)), Some(0.0));
        rt.run_slot().unwrap(); // slot 3: restored to the pre-outage 40
        assert_eq!(rt.controller().network().capacity(d(0), d(2)), Some(40.0));
        assert_eq!(rt.metrics().counter("maintenance_outages"), 1);
        assert_eq!(rt.metrics().counter("maintenance_restores"), 1);
    }

    #[test]
    fn maintenance_mid_window_snapshot_carries_the_restore() {
        let faults = FaultPlan::none().maintain(1, 3, d(1), d(2));
        let mut full =
            Runtime::new(net(), arrivals(), faults.clone(), 5, RuntimeConfig::default()).unwrap();
        full.run_to_end().unwrap();

        let mut half =
            Runtime::new(net(), arrivals(), faults, 5, RuntimeConfig::default()).unwrap();
        half.run_slot().unwrap();
        half.run_slot().unwrap(); // crash mid-outage: the restore is pending
        let snap = half.snapshot();
        assert_eq!(snap.pending_restores.len(), 1);
        assert_eq!(snap.pending_restores[0].slot, 3);
        let mut resumed = Runtime::from_snapshot(snap).unwrap();
        resumed.run_to_end().unwrap();
        assert_eq!(resumed.controller().network().capacity(d(1), d(2)), Some(100.0));
        for (a, b) in resumed.cost_history().iter().zip(full.cost_history()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-identical continuation");
        }
        assert_eq!(resumed.metrics(), full.metrics());
    }

    #[test]
    fn percentile_charging_prepends_the_headroom_rung() {
        let config = RuntimeConfig {
            charging: ChargingScheme::Percentile { q: 95.0, window_slots: 20 },
            ..Default::default()
        };
        let rt = Runtime::new(net(), arrivals(), FaultPlan::none(), 4, config).unwrap();
        assert_eq!(rt.config().tiers.first(), Some(&TierKind::Headroom));
        // Slot 0 opens an all-zero billing window: no baseline to hide
        // under, so the rung declines and Postcard takes the batch — which
        // is the design working, not a fallback.
        let mut rt = rt;
        let outcomes = rt.run_to_end().unwrap();
        assert_eq!(outcomes[0].chosen_tier, Some(TierKind::Postcard));
        assert!(rt.metrics().counter("headroom_declined") >= 1);
        assert_eq!(rt.metrics().counter("fallback_activations"), 0);
        assert_eq!(rt.metrics().counter("slots_on_fallback_tier"), 0);
        assert_eq!(rt.metrics().counter("files_accepted"), 2);
    }

    #[test]
    fn headroom_tier_without_free_slots_is_rejected() {
        let config = RuntimeConfig {
            tiers: vec![TierKind::Headroom, TierKind::Postcard],
            ..Default::default()
        };
        assert!(matches!(
            Runtime::new(net(), arrivals(), FaultPlan::none(), 1, config),
            Err(RuntimeError::Config(_))
        ));
    }
}
