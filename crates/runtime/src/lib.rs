//! # postcard-runtime — a crash-safe controller service
//!
//! The other crates answer "what should the traffic plan be?"; this crate
//! answers "how do you *operate* that controller as a long-running
//! service?" Four concerns, one module each:
//!
//! * [`fallback`] — a solver fallback chain ([`FallbackChain`]): Postcard
//!   LP, then the flow LP, then the greedy allocator, with a per-slot solve
//!   budget, retry-once on numerical failure, and the chosen tier recorded —
//!   so a slot is never missed;
//! * [`snapshot`] — versioned, self-contained checkpoints
//!   ([`RuntimeSnapshot`]) written atomically every N slots;
//!   [`Runtime::resume`] continues a killed run **bit-identically** under
//!   the deterministic [`SimClock`];
//! * [`metrics`] — a lightweight registry ([`MetricsRegistry`]) of
//!   counters / gauges / histograms (solve latency per tier, simplex
//!   iterations, fallback activations, rejections, per-slot bill) exported
//!   as JSON or CSV;
//! * [`faults`] — deterministic fault injection ([`FaultPlan`]): scheduled
//!   link degradations and forced solver timeouts, replayed identically by
//!   resumed runs;
//! * [`shard`] — the sharded multi-tenant engine ([`ShardEngine`]): each
//!   slot's batch partitioned by tenant or source region, per-shard solves
//!   run in parallel on worker threads, merged deterministically into the
//!   one billing ledger, and checkpointed as per-shard snapshot files
//!   behind a manifest (`serve --shards N --shard-by tenant|region`).
//!
//! [`Runtime`] drives the slot loop: degrade links, admit arrivals through
//! a bounded [`AdmissionQueue`], schedule via the chain, record metrics,
//! checkpoint. The queue is a persistent *backlog*: batches a slot could
//! not schedule are requeued (at most `max_requeue_attempts` times) and
//! retried in later slots with their absolute deadlines preserved, and the
//! backlog itself is checkpointed (snapshot v4) so resume is exact even
//! mid-carry. The CLI exposes it as `postcard serve` / `postcard resume`.
//!
//! # Example
//!
//! ```
//! use postcard_net::{DcId, FileId, NetworkBuilder, TransferRequest};
//! use postcard_runtime::{ArrivalSchedule, FaultPlan, Runtime, RuntimeConfig, TierKind};
//!
//! # fn main() -> Result<(), postcard_runtime::RuntimeError> {
//! let network = NetworkBuilder::new(3)
//!     .link(DcId(1), DcId(2), 10.0, 100.0)
//!     .link(DcId(1), DcId(0), 1.0, 100.0)
//!     .link(DcId(0), DcId(2), 3.0, 100.0)
//!     .build();
//! let arrivals = ArrivalSchedule::from_requests(vec![TransferRequest::new(
//!     FileId(1), DcId(1), DcId(2), 6.0, 3, 0,
//! )]);
//! // Force the Postcard tier to time out at slot 0: the flow LP commits.
//! let faults = FaultPlan::none().force_timeout(0, TierKind::Postcard);
//! let mut runtime = Runtime::new(network, arrivals, faults, 3, RuntimeConfig::default())?;
//! let outcomes = runtime.run_to_end()?;
//! assert_eq!(outcomes[0].chosen_tier, Some(TierKind::FlowLp));
//! assert_eq!(runtime.metrics().counter("fallback_activations"), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod clock;
pub mod fallback;
pub mod faults;
pub mod metrics;
pub mod queue;
mod runtime;
pub mod shard;
pub mod snapshot;

pub use arrivals::ArrivalSchedule;
pub use clock::{Clock, ClockKind, SimClock, WallClock};
pub use fallback::{AttemptOutcome, AttemptRecord, FallbackChain, TierKind};
pub use faults::{FaultPlan, ForcedTimeout, LinkDegradation};
pub use metrics::{HistogramSummary, MetricsRegistry};
pub use queue::{AdmissionQueue, QueuedRequest};
pub use runtime::{Runtime, RuntimeConfig, RuntimeError, SlotOutcome};
pub use shard::{ShardBy, ShardEngine, ShardPlanner, ShardRef, ShardSnapshot, ShardState};
pub use snapshot::{RuntimeSnapshot, SNAPSHOT_VERSION};
