//! A lightweight metrics registry for the controller service.
//!
//! Three instrument families, all keyed by name: monotone **counters**,
//! last-value **gauges**, and summarizing **histograms** (count / sum /
//! min / max — enough for latency and iteration-count distributions without
//! unbounded memory). The registry serializes with the snapshot, so resumed
//! runs continue their metrics exactly, and exports as JSON or CSV for
//! external consumption.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary statistics of an observed distribution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSummary {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Counters, gauges, and histograms for one runtime.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation in the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// The named counter's value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram's summary, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Serializes the whole registry as pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Serializes the registry as CSV with one row per instrument:
    /// `kind,name,count,sum,min,max,mean` (counters and gauges use the
    /// `sum` column, the rest 0).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,count,sum,min,max,mean\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},0,{v},0,0,0\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{name},0,{v},0,0,0\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram,{name},{},{},{},{},{}\n",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("slots", 1);
        m.inc("slots", 2);
        assert_eq!(m.counter("slots"), 3);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("bill", 10.0);
        m.set_gauge("bill", 7.5);
        assert_eq!(m.gauge("bill"), Some(7.5));
        assert_eq!(m.gauge("never"), None);
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_preserves_registry() {
        let mut m = MetricsRegistry::new();
        m.inc("a", 5);
        m.set_gauge("g", 0.1 + 0.2);
        m.observe("h", 1.5);
        let back: MetricsRegistry = serde::json::from_str(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn csv_lists_every_instrument() {
        let mut m = MetricsRegistry::new();
        m.inc("c", 1);
        m.set_gauge("g", 2.0);
        m.observe("h", 3.0);
        let csv = m.to_csv();
        assert!(csv.contains("counter,c,"));
        assert!(csv.contains("gauge,g,"));
        assert!(csv.contains("histogram,h,1,3,3,3,3"));
    }
}
