//! A lightweight metrics registry for the controller service.
//!
//! Three instrument families, all keyed by name: monotone **counters**,
//! last-value **gauges**, and summarizing **histograms** (count / sum /
//! min / max plus a fixed set of log-scaled buckets, so p50/p95/p99
//! estimates come without unbounded memory). The registry serializes with
//! the snapshot, so resumed runs continue their metrics exactly, and
//! exports as JSON or CSV for external consumption.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of log-scaled buckets each histogram keeps.
const NUM_BUCKETS: usize = 64;

/// Bucket `k` spans `[2^(k - BUCKET_OFFSET), 2^(k + 1 - BUCKET_OFFSET))`;
/// with 64 buckets and offset 31 the grid covers ~4.7e-10 .. 8.6e9, wide
/// enough for latencies in seconds and pivot counts alike. Values at or
/// below zero land in bucket 0, values past the top land in the last.
const BUCKET_OFFSET: i32 = 31;

fn bucket_of(value: f64) -> usize {
    if value <= 0.0 || value.is_nan() {
        return 0;
    }
    if value.is_infinite() {
        return NUM_BUCKETS - 1;
    }
    let k = value.log2().floor() as i32 + BUCKET_OFFSET;
    k.clamp(0, NUM_BUCKETS as i32 - 1) as usize
}

fn bucket_lo(k: usize) -> f64 {
    if k == 0 {
        0.0
    } else {
        ((k as i32 - BUCKET_OFFSET) as f64).exp2()
    }
}

fn bucket_hi(k: usize) -> f64 {
    ((k as i32 + 1 - BUCKET_OFFSET) as f64).exp2()
}

/// Summary statistics of an observed distribution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Log-scaled bucket counts (allocated on first observation; see
    /// [`HistogramSummary::percentile`]).
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if self.buckets.len() != NUM_BUCKETS {
            self.buckets.resize(NUM_BUCKETS, 0);
        }
        self.buckets[bucket_of(value)] += 1;
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q ∈ [0, 1]`) from the log-scaled
    /// buckets, interpolating linearly inside the bucket holding the target
    /// rank and clamping into `[min, max]`. Exact for `q = 0` and `q = 1`;
    /// within one bucket width (a factor of 2) otherwise. Returns 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; answer them directly rather
        // than from bucket interpolation (which would, e.g., report 0 for
        // `q = 0` of an all-negative distribution — bucket 0 spans
        // everything ≤ 0 and its lower edge is 0).
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= target {
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let lo = bucket_lo(k);
                let hi = bucket_hi(k);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// The median estimate (see [`HistogramSummary::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// Counters, gauges, and histograms for one runtime.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation in the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// The named counter's value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram's summary, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Serializes the registry as pretty JSON for external consumption:
    /// histograms are exported with their derived statistics (mean and the
    /// p50/p95/p99 estimates) instead of raw buckets. Snapshots use the
    /// derived `Serialize` impl instead, which round-trips exactly.
    pub fn to_json(&self) -> String {
        let histograms: BTreeMap<String, HistogramExport> = self
            .histograms
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    HistogramExport {
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                        mean: h.mean(),
                        p50: h.p50(),
                        p95: h.p95(),
                        p99: h.p99(),
                    },
                )
            })
            .collect();
        let export = RegistryExport {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms,
        };
        serde::json::to_string_pretty(&export)
    }

    /// Serializes the registry as CSV with one row per instrument:
    /// `kind,name,count,sum,min,max,mean,p50,p95,p99` (counters and gauges
    /// use the `sum` column, the rest 0).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,count,sum,min,max,mean,p50,p95,p99\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("counter,{name},0,{v},0,0,0,0,0,0\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge,{name},0,{v},0,0,0,0,0,0\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram,{name},{},{},{},{},{},{},{},{}\n",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        out
    }
}

/// The external-export shape of one histogram (see
/// [`MetricsRegistry::to_json`]).
#[derive(Debug, Clone, Serialize)]
struct HistogramExport {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    mean: f64,
    p50: f64,
    p95: f64,
    p99: f64,
}

/// The external-export shape of the registry.
#[derive(Debug, Clone, Serialize)]
struct RegistryExport {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramExport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("slots", 1);
        m.inc("slots", 2);
        assert_eq!(m.counter("slots"), 3);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("bill", 10.0);
        m.set_gauge("bill", 7.5);
        assert_eq!(m.gauge("bill"), Some(7.5));
        assert_eq!(m.gauge("never"), None);
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        for v in [3.0, 1.0, 2.0] {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_preserves_registry() {
        // Snapshots use the derived serde impls, which must round-trip
        // exactly (buckets included).
        let mut m = MetricsRegistry::new();
        m.inc("a", 5);
        m.set_gauge("g", 0.1 + 0.2);
        m.observe("h", 1.5);
        let json = serde::json::to_string_pretty(&m);
        let back: MetricsRegistry = serde::json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_export_carries_percentiles() {
        let mut m = MetricsRegistry::new();
        for v in 1..=100 {
            m.observe("lat", v as f64);
        }
        let json = m.to_json();
        for field in ["\"p50\"", "\"p95\"", "\"p99\"", "\"mean\""] {
            assert!(json.contains(field), "missing {field}: {json}");
        }
        assert!(!json.contains("buckets"), "raw buckets must not leak: {json}");
    }

    #[test]
    fn csv_lists_every_instrument() {
        let mut m = MetricsRegistry::new();
        m.inc("c", 1);
        m.set_gauge("g", 2.0);
        m.observe("h", 3.0);
        let csv = m.to_csv();
        assert!(csv.starts_with("kind,name,count,sum,min,max,mean,p50,p95,p99\n"));
        assert!(csv.contains("counter,c,"));
        assert!(csv.contains("gauge,g,"));
        assert!(csv.contains("histogram,h,1,3,3,3,3,3,3,3"));
    }

    #[test]
    fn percentiles_track_known_distributions() {
        let mut h = HistogramSummary::default();
        // A single observation: every percentile is that value.
        h.observe(4.0);
        assert_eq!(h.p50(), 4.0);
        assert_eq!(h.p99(), 4.0);
        // Uniform 1..=1000: log-bucket estimates are within a factor of 2
        // of the true quantiles, and clamped to the observed range.
        let mut u = HistogramSummary::default();
        for v in 1..=1000 {
            u.observe(v as f64);
        }
        let p50 = u.p50();
        assert!((250.0..=1000.0).contains(&p50), "p50 = {p50}");
        let p99 = u.p99();
        assert!((495.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert!(u.p50() <= u.p95() && u.p95() <= u.p99());
        assert!(u.percentile(1.0) <= u.max);
        assert!(u.percentile(0.0) >= u.min);
    }

    #[test]
    fn percentiles_handle_zero_and_negative_values() {
        let mut h = HistogramSummary::default();
        for v in [-1.0, 0.0, 2.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert!(h.p50() >= h.min && h.p50() <= h.max);
        assert_eq!(h.percentile(0.0).max(h.min), h.percentile(0.0));
        // Empty histogram reports zeros.
        assert_eq!(HistogramSummary::default().p95(), 0.0);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = HistogramSummary::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(q), 0.0);
        }
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentile_with_all_mass_in_bucket_zero() {
        // Values at or below zero all land in bucket 0, whose lower edge is
        // 0 — interpolation alone would report 0 for every quantile. The
        // exact min/max endpoints must win.
        let mut h = HistogramSummary::default();
        for v in [-4.0, -2.0, -1.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(0.0), -4.0);
        assert_eq!(h.percentile(1.0), -1.0);
        let p50 = h.p50();
        assert!((-4.0..=-1.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn percentile_q1_is_exactly_the_max() {
        let mut h = HistogramSummary::default();
        for v in [1.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(1.0), 100.0);
        assert_eq!(h.percentile(0.0), 1.0);
        // Out-of-range quantiles clamp to the endpoints.
        assert_eq!(h.percentile(2.5), 100.0);
        assert_eq!(h.percentile(-1.0), 1.0);
    }
}
