//! Deterministic fault-injection schedules.
//!
//! Four fault families, all applied at slot boundaries so runs (and their
//! resumed halves) replay identically:
//!
//! * **link degradations** — at slot `t`, link `i → j`'s capacity drops to
//!   a given value (the `tests/capacity_shock.rs` scenario, made a
//!   first-class runtime input);
//! * **forced solver timeouts** — at slot `t`, a named fallback tier is
//!   treated as having blown the slot budget, activating the next tier;
//! * **price changes** — at slot `t`, link `i → j`'s per-GB price changes
//!   (mid-billing-cycle repricing; the multi-day diurnal scenarios use it);
//! * **maintenance windows** — link `i → j` is taken out (capacity 0) for
//!   `[start, end)` and restored to its pre-maintenance capacity afterwards.
//!
//! The whole plan serializes into snapshots, so a resumed run sees the same
//! remaining faults (pending maintenance *restores* — whose restore value is
//! only known once maintenance starts — ride along in the snapshot itself).

use crate::fallback::TierKind;
use postcard_net::DcId;
use serde::{Deserialize, Serialize};

/// Capacity drop of one link at one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegradation {
    /// Slot at whose start the degradation applies.
    pub slot: u64,
    /// Link source.
    pub from: usize,
    /// Link destination.
    pub to: usize,
    /// New capacity (GB/slot); must be non-negative — 0 models a full
    /// outage (the link stays known but carries no new traffic).
    pub capacity: f64,
}

/// Forced budget blow-out of one tier at one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForcedTimeout {
    /// Slot during which the tier times out.
    pub slot: u64,
    /// The tier that times out.
    pub tier: TierKind,
}

/// Per-GB price change of one link at one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceChange {
    /// Slot at whose start the new price applies.
    pub slot: u64,
    /// Link source.
    pub from: usize,
    /// Link destination.
    pub to: usize,
    /// New per-GB price; must be non-negative.
    pub price: f64,
}

/// Scheduled outage of one link over `[start, end)`, restored afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// First slot of the outage.
    pub start: u64,
    /// One past the last outage slot; the link's pre-maintenance capacity
    /// is restored at this slot's start.
    pub end: u64,
    /// Link source.
    pub from: usize,
    /// Link destination.
    pub to: usize,
}

/// A full fault schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Capacity drops, applied at slot starts.
    pub degradations: Vec<LinkDegradation>,
    /// Forced tier timeouts.
    pub timeouts: Vec<ForcedTimeout>,
    /// Per-GB price changes, applied at slot starts.
    pub price_changes: Vec<PriceChange>,
    /// Link maintenance windows (outage + automatic restore).
    pub maintenance: Vec<MaintenanceWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a link degradation.
    #[must_use]
    pub fn degrade(mut self, slot: u64, from: DcId, to: DcId, capacity: f64) -> Self {
        self.degradations.push(LinkDegradation { slot, from: from.0, to: to.0, capacity });
        self
    }

    /// Adds a forced tier timeout.
    #[must_use]
    pub fn force_timeout(mut self, slot: u64, tier: TierKind) -> Self {
        self.timeouts.push(ForcedTimeout { slot, tier });
        self
    }

    /// Adds a price change.
    #[must_use]
    pub fn reprice(mut self, slot: u64, from: DcId, to: DcId, price: f64) -> Self {
        self.price_changes.push(PriceChange { slot, from: from.0, to: to.0, price });
        self
    }

    /// Adds a maintenance window over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` (an empty window would silently do nothing).
    #[must_use]
    pub fn maintain(mut self, start: u64, end: u64, from: DcId, to: DcId) -> Self {
        assert!(start < end, "maintenance window must be non-empty");
        self.maintenance.push(MaintenanceWindow { start, end, from: from.0, to: to.0 });
        self
    }

    /// The degradations that fire at `slot`.
    pub fn degradations_at(&self, slot: u64) -> impl Iterator<Item = &LinkDegradation> {
        self.degradations.iter().filter(move |d| d.slot == slot)
    }

    /// The price changes that fire at `slot`.
    pub fn price_changes_at(&self, slot: u64) -> impl Iterator<Item = &PriceChange> {
        self.price_changes.iter().filter(move |p| p.slot == slot)
    }

    /// The maintenance windows whose outage starts at `slot`.
    pub fn maintenance_starting_at(&self, slot: u64) -> impl Iterator<Item = &MaintenanceWindow> {
        self.maintenance.iter().filter(move |m| m.start == slot)
    }

    /// The tiers forced to time out during `slot`.
    pub fn timeouts_at(&self, slot: u64) -> Vec<TierKind> {
        self.timeouts.iter().filter(|t| t.slot == slot).map(|t| t.tier).collect()
    }

    /// Parses a `slot:from:to:capacity` degradation spec (CLI format).
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse_degradation(spec: &str) -> Result<LinkDegradation, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 {
            return Err(format!("degradation `{spec}` must be slot:from:to:capacity"));
        }
        let slot = parts[0].parse().map_err(|_| format!("bad slot in `{spec}`"))?;
        let from = parts[1].parse().map_err(|_| format!("bad source dc in `{spec}`"))?;
        let to = parts[2].parse().map_err(|_| format!("bad destination dc in `{spec}`"))?;
        let capacity: f64 = parts[3].parse().map_err(|_| format!("bad capacity in `{spec}`"))?;
        if capacity.is_nan() || capacity < 0.0 {
            return Err(format!("capacity must be non-negative in `{spec}`"));
        }
        Ok(LinkDegradation { slot, from, to, capacity })
    }

    /// Parses a `slot[:tier]` forced-timeout spec (CLI format; the tier
    /// defaults to `postcard`).
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse_timeout(spec: &str) -> Result<ForcedTimeout, String> {
        let (slot_text, tier_text) = match spec.split_once(':') {
            Some((s, t)) => (s, t),
            None => (spec, "postcard"),
        };
        let slot = slot_text.parse().map_err(|_| format!("bad slot in `{spec}`"))?;
        let tier = tier_text.parse().map_err(|e| format!("{e} in `{spec}`"))?;
        Ok(ForcedTimeout { slot, tier })
    }

    /// Parses a `slot:from:to:price` price-change spec (CLI format).
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse_price_change(spec: &str) -> Result<PriceChange, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 {
            return Err(format!("price change `{spec}` must be slot:from:to:price"));
        }
        let slot = parts[0].parse().map_err(|_| format!("bad slot in `{spec}`"))?;
        let from = parts[1].parse().map_err(|_| format!("bad source dc in `{spec}`"))?;
        let to = parts[2].parse().map_err(|_| format!("bad destination dc in `{spec}`"))?;
        let price: f64 = parts[3].parse().map_err(|_| format!("bad price in `{spec}`"))?;
        if price.is_nan() || price < 0.0 {
            return Err(format!("price must be non-negative in `{spec}`"));
        }
        Ok(PriceChange { slot, from, to, price })
    }

    /// Parses a `start:end:from:to` maintenance spec (CLI format); the
    /// outage covers `[start, end)`.
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse_maintenance(spec: &str) -> Result<MaintenanceWindow, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 {
            return Err(format!("maintenance `{spec}` must be start:end:from:to"));
        }
        let start = parts[0].parse().map_err(|_| format!("bad start slot in `{spec}`"))?;
        let end = parts[1].parse().map_err(|_| format!("bad end slot in `{spec}`"))?;
        if start >= end {
            return Err(format!("maintenance window must be non-empty in `{spec}`"));
        }
        let from = parts[2].parse().map_err(|_| format!("bad source dc in `{spec}`"))?;
        let to = parts[3].parse().map_err(|_| format!("bad destination dc in `{spec}`"))?;
        Ok(MaintenanceWindow { start, end, from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .degrade(3, DcId(0), DcId(1), 5.0)
            .degrade(3, DcId(1), DcId(2), 7.0)
            .force_timeout(2, TierKind::Postcard)
            .force_timeout(2, TierKind::FlowLp);
        assert_eq!(plan.degradations_at(3).count(), 2);
        assert_eq!(plan.degradations_at(4).count(), 0);
        assert_eq!(plan.timeouts_at(2), vec![TierKind::Postcard, TierKind::FlowLp]);
        assert!(plan.timeouts_at(0).is_empty());
    }

    #[test]
    fn parse_degradation_formats() {
        let d = FaultPlan::parse_degradation("5:0:2:12.5").unwrap();
        assert_eq!((d.slot, d.from, d.to), (5, 0, 2));
        assert_eq!(d.capacity, 12.5);
        // Capacity 0 is a valid full-outage spec.
        assert_eq!(FaultPlan::parse_degradation("5:0:2:0").unwrap().capacity, 0.0);
        assert!(FaultPlan::parse_degradation("5:0:2").is_err());
        assert!(FaultPlan::parse_degradation("5:0:2:-1").is_err());
        assert!(FaultPlan::parse_degradation("x:0:2:1").is_err());
    }

    #[test]
    fn parse_timeout_formats() {
        assert_eq!(
            FaultPlan::parse_timeout("4").unwrap(),
            ForcedTimeout { slot: 4, tier: TierKind::Postcard }
        );
        assert_eq!(
            FaultPlan::parse_timeout("4:flow-lp").unwrap(),
            ForcedTimeout { slot: 4, tier: TierKind::FlowLp }
        );
        assert!(FaultPlan::parse_timeout("4:warp-drive").is_err());
        assert!(FaultPlan::parse_timeout("four").is_err());
    }

    #[test]
    fn price_and_maintenance_builders_and_lookups() {
        let plan = FaultPlan::none()
            .reprice(6, DcId(0), DcId(1), 3.5)
            .reprice(6, DcId(1), DcId(0), 1.0)
            .maintain(4, 8, DcId(0), DcId(1));
        assert_eq!(plan.price_changes_at(6).count(), 2);
        assert_eq!(plan.price_changes_at(5).count(), 0);
        let m: Vec<_> = plan.maintenance_starting_at(4).collect();
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].start, m[0].end, m[0].from, m[0].to), (4, 8, 0, 1));
        assert_eq!(plan.maintenance_starting_at(8).count(), 0);
    }

    #[test]
    fn parse_price_change_formats() {
        let p = FaultPlan::parse_price_change("5:0:2:12.5").unwrap();
        assert_eq!((p.slot, p.from, p.to), (5, 0, 2));
        assert_eq!(p.price, 12.5);
        assert_eq!(FaultPlan::parse_price_change("5:0:2:0").unwrap().price, 0.0);
        assert!(FaultPlan::parse_price_change("5:0:2").is_err());
        assert!(FaultPlan::parse_price_change("5:0:2:-1").is_err());
        assert!(FaultPlan::parse_price_change("x:0:2:1").is_err());
    }

    #[test]
    fn parse_maintenance_formats() {
        let m = FaultPlan::parse_maintenance("4:8:0:1").unwrap();
        assert_eq!((m.start, m.end, m.from, m.to), (4, 8, 0, 1));
        assert!(FaultPlan::parse_maintenance("8:4:0:1").is_err());
        assert!(FaultPlan::parse_maintenance("4:4:0:1").is_err());
        assert!(FaultPlan::parse_maintenance("4:8:0").is_err());
        assert!(FaultPlan::parse_maintenance("a:8:0:1").is_err());
    }

    #[test]
    #[should_panic(expected = "maintenance window must be non-empty")]
    fn empty_maintenance_window_rejected() {
        let _ = FaultPlan::none().maintain(5, 5, DcId(0), DcId(1));
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::none()
            .degrade(1, DcId(0), DcId(1), 2.0)
            .force_timeout(9, TierKind::Greedy)
            .reprice(3, DcId(0), DcId(1), 7.0)
            .maintain(2, 5, DcId(1), DcId(0));
        let back: FaultPlan = serde::json::from_str(&serde::json::to_string(&plan)).unwrap();
        assert_eq!(back, plan);
    }
}
