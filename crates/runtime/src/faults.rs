//! Deterministic fault-injection schedules.
//!
//! Two fault families, both applied at slot boundaries so runs (and their
//! resumed halves) replay identically:
//!
//! * **link degradations** — at slot `t`, link `i → j`'s capacity drops to
//!   a given value (the `tests/capacity_shock.rs` scenario, made a
//!   first-class runtime input);
//! * **forced solver timeouts** — at slot `t`, a named fallback tier is
//!   treated as having blown the slot budget, activating the next tier.
//!
//! The whole plan serializes into snapshots, so a resumed run sees the same
//! remaining faults.

use crate::fallback::TierKind;
use postcard_net::DcId;
use serde::{Deserialize, Serialize};

/// Capacity drop of one link at one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegradation {
    /// Slot at whose start the degradation applies.
    pub slot: u64,
    /// Link source.
    pub from: usize,
    /// Link destination.
    pub to: usize,
    /// New capacity (GB/slot); must be non-negative — 0 models a full
    /// outage (the link stays known but carries no new traffic).
    pub capacity: f64,
}

/// Forced budget blow-out of one tier at one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForcedTimeout {
    /// Slot during which the tier times out.
    pub slot: u64,
    /// The tier that times out.
    pub tier: TierKind,
}

/// A full fault schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Capacity drops, applied at slot starts.
    pub degradations: Vec<LinkDegradation>,
    /// Forced tier timeouts.
    pub timeouts: Vec<ForcedTimeout>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a link degradation.
    #[must_use]
    pub fn degrade(mut self, slot: u64, from: DcId, to: DcId, capacity: f64) -> Self {
        self.degradations.push(LinkDegradation { slot, from: from.0, to: to.0, capacity });
        self
    }

    /// Adds a forced tier timeout.
    #[must_use]
    pub fn force_timeout(mut self, slot: u64, tier: TierKind) -> Self {
        self.timeouts.push(ForcedTimeout { slot, tier });
        self
    }

    /// The degradations that fire at `slot`.
    pub fn degradations_at(&self, slot: u64) -> impl Iterator<Item = &LinkDegradation> {
        self.degradations.iter().filter(move |d| d.slot == slot)
    }

    /// The tiers forced to time out during `slot`.
    pub fn timeouts_at(&self, slot: u64) -> Vec<TierKind> {
        self.timeouts.iter().filter(|t| t.slot == slot).map(|t| t.tier).collect()
    }

    /// Parses a `slot:from:to:capacity` degradation spec (CLI format).
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse_degradation(spec: &str) -> Result<LinkDegradation, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 4 {
            return Err(format!("degradation `{spec}` must be slot:from:to:capacity"));
        }
        let slot = parts[0].parse().map_err(|_| format!("bad slot in `{spec}`"))?;
        let from = parts[1].parse().map_err(|_| format!("bad source dc in `{spec}`"))?;
        let to = parts[2].parse().map_err(|_| format!("bad destination dc in `{spec}`"))?;
        let capacity: f64 = parts[3].parse().map_err(|_| format!("bad capacity in `{spec}`"))?;
        if capacity.is_nan() || capacity < 0.0 {
            return Err(format!("capacity must be non-negative in `{spec}`"));
        }
        Ok(LinkDegradation { slot, from, to, capacity })
    }

    /// Parses a `slot[:tier]` forced-timeout spec (CLI format; the tier
    /// defaults to `postcard`).
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse_timeout(spec: &str) -> Result<ForcedTimeout, String> {
        let (slot_text, tier_text) = match spec.split_once(':') {
            Some((s, t)) => (s, t),
            None => (spec, "postcard"),
        };
        let slot = slot_text.parse().map_err(|_| format!("bad slot in `{spec}`"))?;
        let tier = tier_text.parse().map_err(|e| format!("{e} in `{spec}`"))?;
        Ok(ForcedTimeout { slot, tier })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .degrade(3, DcId(0), DcId(1), 5.0)
            .degrade(3, DcId(1), DcId(2), 7.0)
            .force_timeout(2, TierKind::Postcard)
            .force_timeout(2, TierKind::FlowLp);
        assert_eq!(plan.degradations_at(3).count(), 2);
        assert_eq!(plan.degradations_at(4).count(), 0);
        assert_eq!(plan.timeouts_at(2), vec![TierKind::Postcard, TierKind::FlowLp]);
        assert!(plan.timeouts_at(0).is_empty());
    }

    #[test]
    fn parse_degradation_formats() {
        let d = FaultPlan::parse_degradation("5:0:2:12.5").unwrap();
        assert_eq!((d.slot, d.from, d.to), (5, 0, 2));
        assert_eq!(d.capacity, 12.5);
        // Capacity 0 is a valid full-outage spec.
        assert_eq!(FaultPlan::parse_degradation("5:0:2:0").unwrap().capacity, 0.0);
        assert!(FaultPlan::parse_degradation("5:0:2").is_err());
        assert!(FaultPlan::parse_degradation("5:0:2:-1").is_err());
        assert!(FaultPlan::parse_degradation("x:0:2:1").is_err());
    }

    #[test]
    fn parse_timeout_formats() {
        assert_eq!(
            FaultPlan::parse_timeout("4").unwrap(),
            ForcedTimeout { slot: 4, tier: TierKind::Postcard }
        );
        assert_eq!(
            FaultPlan::parse_timeout("4:flow-lp").unwrap(),
            ForcedTimeout { slot: 4, tier: TierKind::FlowLp }
        );
        assert!(FaultPlan::parse_timeout("4:warp-drive").is_err());
        assert!(FaultPlan::parse_timeout("four").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let plan =
            FaultPlan::none().degrade(1, DcId(0), DcId(1), 2.0).force_timeout(9, TierKind::Greedy);
        let back: FaultPlan = serde::json::from_str(&serde::json::to_string(&plan)).unwrap();
        assert_eq!(back, plan);
    }
}
