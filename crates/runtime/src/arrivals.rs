//! The runtime's arrival schedule: which requests arrive at which slot.
//!
//! Shares the simulator's trace CSV format
//! (`id,src,dst,size_gb,deadline_slots,release_slot`) so traces exported by
//! `postcard trace` / the sim crate feed the service runtime directly — but
//! is implemented here because the dependency points the other way (sim
//! builds on the runtime, not vice versa).

use postcard_net::{DcId, FileId, TransferRequest};
use serde::{Deserialize, Serialize};

/// All arrivals of a run, ordered by release slot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    requests: Vec<TransferRequest>,
}

impl ArrivalSchedule {
    /// Builds a schedule from explicit requests (sorted by release slot).
    pub fn from_requests(mut requests: Vec<TransferRequest>) -> Self {
        requests.sort_by_key(|r| (r.release_slot, r.id));
        Self { requests }
    }

    /// All requests, ordered by release slot.
    pub fn requests(&self) -> &[TransferRequest] {
        &self.requests
    }

    /// One slot past the last release slot.
    pub fn num_slots(&self) -> u64 {
        self.requests.iter().map(|r| r.release_slot + 1).max().unwrap_or(0)
    }

    /// One slot past the last *deadline* over all arrivals — the horizon a
    /// run must cover so every request gets its full deadline window. A
    /// request released near the end with a multi-slot window pushes this
    /// past [`ArrivalSchedule::num_slots`], which only counts releases.
    pub fn horizon_slots(&self) -> u64 {
        self.requests.iter().map(|r| r.last_slot() + 1).max().unwrap_or(0)
    }

    /// The arrivals released at `slot`, in id order. Slots past the last
    /// release return an empty batch — requeued backlog can extend the run
    /// horizon beyond [`ArrivalSchedule::num_slots`], and those extension
    /// slots simply see no new arrivals.
    pub fn batch(&self, slot: u64) -> Vec<TransferRequest> {
        self.requests.iter().filter(|r| r.release_slot == slot).copied().collect()
    }

    /// Serializes to the trace CSV format.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("id,src,dst,size_gb,deadline_slots,release_slot\n");
        for r in &self.requests {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.id.0, r.src.0, r.dst.0, r.size_gb, r.deadline_slots, r.release_slot
            ));
        }
        out
    }

    /// Parses the trace CSV format (header optional, blank lines ignored).
    ///
    /// # Errors
    ///
    /// Names the first malformed line (1-based).
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut requests = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 && line.starts_with("id,") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let err = |message: &str| format!("arrivals line {}: {message}", i + 1);
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 6 {
                return Err(err("expected 6 comma-separated fields"));
            }
            let id: u64 = parts[0].trim().parse().map_err(|_| err("bad id"))?;
            let src: usize = parts[1].trim().parse().map_err(|_| err("bad src"))?;
            let dst: usize = parts[2].trim().parse().map_err(|_| err("bad dst"))?;
            let size: f64 = parts[3].trim().parse().map_err(|_| err("bad size"))?;
            let deadline: usize = parts[4].trim().parse().map_err(|_| err("bad deadline"))?;
            let release: u64 = parts[5].trim().parse().map_err(|_| err("bad release slot"))?;
            if !size.is_finite() {
                // `size <= 0.0` is false for NaN, so non-finite sizes need
                // their own check or they flow straight into the solver.
                return Err(err("size must be finite"));
            }
            if src == dst || size <= 0.0 || deadline == 0 {
                return Err(err("inconsistent request fields"));
            }
            requests.push(TransferRequest::new(
                FileId(id),
                DcId(src),
                DcId(dst),
                size,
                deadline,
                release,
            ));
        }
        Ok(Self::from_requests(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> ArrivalSchedule {
        ArrivalSchedule::from_requests(vec![
            TransferRequest::new(FileId(2), DcId(0), DcId(1), 12.5, 2, 1),
            TransferRequest::new(FileId(1), DcId(1), DcId(2), 6.0, 3, 0),
        ])
    }

    #[test]
    fn batches_partition_by_release_slot() {
        let s = sched();
        assert_eq!(s.num_slots(), 2);
        // file 1: release 0, deadline 3 → last slot 2; file 2: release 1,
        // deadline 2 → last slot 2. Horizon covers the full windows.
        assert_eq!(s.horizon_slots(), 3);
        assert_eq!(s.batch(0).len(), 1);
        assert_eq!(s.batch(0)[0].id, FileId(1));
        assert_eq!(s.batch(1).len(), 1);
        assert!(s.batch(2).is_empty());
    }

    #[test]
    fn csv_round_trips() {
        let s = sched();
        let back = ArrivalSchedule::from_csv(&s.to_csv()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn csv_errors_name_the_line() {
        let e = ArrivalSchedule::from_csv("id,src,dst,size_gb,deadline_slots,release_slot\n1,2\n")
            .unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = ArrivalSchedule::from_csv("0,1,1,5.0,2,0\n").unwrap_err();
        assert!(e.contains("inconsistent"), "{e}");
    }

    #[test]
    fn csv_rejects_non_finite_sizes() {
        // Regression: `size <= 0.0` is false for NaN, so a NaN size used to
        // pass validation and panic deep inside request construction.
        for bad in ["NaN", "inf", "-inf"] {
            let e = ArrivalSchedule::from_csv(&format!("1,0,1,{bad},2,0\n")).unwrap_err();
            assert!(e.contains("line 1") && e.contains("finite"), "{bad}: {e}");
        }
    }

    #[test]
    fn serde_round_trips() {
        let s = sched();
        let back: ArrivalSchedule = serde::json::from_str(&serde::json::to_string(&s)).unwrap();
        assert_eq!(back, s);
    }
}
