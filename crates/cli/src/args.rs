//! A small flag parser: `--name value` pairs and boolean `--name` switches,
//! with typed accessors and unknown-flag detection.

use std::collections::BTreeMap;
use std::fmt;

/// Error from argument parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--flag [value]` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses `argv`, treating `known_switches` as boolean flags (no value).
    ///
    /// # Errors
    ///
    /// Rejects positional arguments and flags missing their value.
    pub fn parse(argv: &[String], known_switches: &[&str]) -> Result<Self, ArgError> {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument `{arg}`")));
            };
            if known_switches.contains(&name) {
                switches.push(name.to_string());
            } else {
                i += 1;
                let value =
                    argv.get(i).ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                values.insert(name.to_string(), value.clone());
            }
            i += 1;
        }
        Ok(Self { values, switches, consumed: Default::default() })
    }

    /// String value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values.get(name).map(String::as_str)
    }

    /// Typed value with a default.
    ///
    /// # Errors
    ///
    /// Fails when the flag is present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| ArgError(format!("--{name}: cannot parse `{s}`"))),
        }
    }

    /// Required typed value.
    ///
    /// # Errors
    ///
    /// Fails when the flag is absent or unparsable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let s = self.get(name).ok_or_else(|| ArgError(format!("--{name} is required")))?;
        s.parse().map_err(|_| ArgError(format!("--{name}: cannot parse `{s}`")))
    }

    /// `true` when the boolean switch was present.
    pub fn switch(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.switches.iter().any(|s| s == name)
    }

    /// Errors on flags that no accessor asked about (typo protection).
    ///
    /// # Errors
    ///
    /// Names the first unknown flag.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for k in self.values.keys().chain(self.switches.iter()) {
            if !consumed.iter().any(|c| c == k) {
                return Err(ArgError(format!("unknown flag --{k}")));
            }
        }
        Ok(())
    }
}

/// Parses `lo..hi` (inclusive) into a `(usize, usize)` range.
///
/// # Errors
///
/// Fails on malformed syntax or `lo > hi`.
pub fn parse_range_usize(s: &str) -> Result<(usize, usize), ArgError> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| ArgError(format!("range `{s}` must look like `lo..hi`")))?;
    let lo: usize = lo.trim().parse().map_err(|_| ArgError(format!("bad range start `{lo}`")))?;
    let hi: usize = hi.trim().parse().map_err(|_| ArgError(format!("bad range end `{hi}`")))?;
    if lo > hi {
        return Err(ArgError(format!("empty range `{s}`")));
    }
    Ok((lo, hi))
}

/// Parses `lo..hi` (inclusive) into an `(f64, f64)` range.
///
/// # Errors
///
/// Fails on malformed syntax or `lo > hi`.
pub fn parse_range_f64(s: &str) -> Result<(f64, f64), ArgError> {
    let (lo, hi) = s
        .split_once("..")
        .ok_or_else(|| ArgError(format!("range `{s}` must look like `lo..hi`")))?;
    let lo: f64 = lo.trim().parse().map_err(|_| ArgError(format!("bad range start `{lo}`")))?;
    let hi: f64 = hi.trim().parse().map_err(|_| ArgError(format!("bad range end `{hi}`")))?;
    if lo > hi {
        return Err(ArgError(format!("empty range `{s}`")));
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn values_and_switches() {
        let a = Args::parse(&argv(&["--dcs", "5", "--paper-scale"]), &["paper-scale"]).unwrap();
        assert_eq!(a.require::<usize>("dcs").unwrap(), 5);
        assert!(a.switch("paper-scale"));
        assert!(!a.switch("other"));
        a.reject_unknown().unwrap();
    }

    #[test]
    fn defaults_and_requirements() {
        let a = Args::parse(&argv(&[]), &[]).unwrap();
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert!(a.require::<u64>("seed").is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Args::parse(&argv(&["--out"]), &[]).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(Args::parse(&argv(&["oops"]), &[]).is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = Args::parse(&argv(&["--tyop", "1"]), &[]).unwrap();
        assert!(a.reject_unknown().is_err());
    }

    #[test]
    fn ranges() {
        assert_eq!(parse_range_usize("1..20").unwrap(), (1, 20));
        assert_eq!(parse_range_f64("10..100.5").unwrap(), (10.0, 100.5));
        assert!(parse_range_usize("5..2").is_err());
        assert!(parse_range_f64("x..2").is_err());
        assert!(parse_range_usize("7").is_err());
    }
}
