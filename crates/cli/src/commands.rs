//! The CLI subcommands.

use crate::args::{parse_range_f64, parse_range_usize, ArgError, Args};
use postcard_core::{Decision, OnlineController};
use postcard_net::{ChargingScheme, Network, TransferPlan};
use postcard_runtime::{
    ArrivalSchedule, ClockKind, FaultPlan, Runtime, RuntimeConfig, ShardBy, TierKind,
};
use postcard_sim::{
    compare_billing, report, run_scenario, run_scenario_service, Approach, DiurnalPreset, Scenario,
    Trace, UniformWorkload, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io::Write;

/// Any failure of a CLI run.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage (flags, ranges, unknown subcommand).
    Usage(String),
    /// File I/O failure.
    Io(std::io::Error),
    /// A domain failure (parse errors, solver failures).
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Run(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

const USAGE: &str = "\
usage: postcard <command> [flags]

commands:
  gen-network   --dcs N [--capacity GB] [--price lo..hi] [--seed S] [--out PATH]
  gen-trace     --dcs N --slots N [--files lo..hi] [--size lo..hi]
                [--max-deadline T] [--seed S] [--out PATH]
  schedule      --network PATH --trace PATH [--approach NAME]
                [--plan-out PATH] [--costs-out PATH]
  simulate      [--setting fig4|fig5|fig6|fig7|all|diurnal] [--paper-scale]
                [--runs N] [--slots N] [--seed S] [--all-approaches]
                [--service] [--shards N] [--shard-by tenant|region]
  serve         --network PATH --trace PATH [--slots N]
                [--checkpoint PATH] [--every N] [--budget-ms MS]
                [--tiers a,b,c] [--queue-capacity N] [--max-requeue N]
                [--wall-clock] [--strict] [--warm-start] [--incremental]
                [--alap] [--reopt-every N]
                [--shards N] [--shard-by tenant|region]
                [--charging max|p<q>:<window>]
                [--degrade slot:from:to:cap[,..]] [--force-timeout slot[:tier][,..]]
                [--price-change slot:from:to:price[,..]]
                [--maintain start:end:from:to[,..]]
                [--stop-after-slot K] [--metrics-out PATH]
                [--wall-metrics-out PATH]
  resume        --checkpoint PATH [--stop-after-slot K] [--metrics-out PATH]
                [--wall-metrics-out PATH]
  analyze src   [--root PATH] [--deny] [--json]
  analyze model --network PATH --trace PATH [--json] | --fixtures
  help

approaches: postcard (default), postcard-no-relay-storage, flow-lp,
            flow-two-phase, flow-greedy, direct
tiers:      headroom, alap, postcard, flow-lp, flow-greedy (fallback order;
            default is the three LP/greedy tiers — `alap` joins via --alap
            or --tiers, `headroom` joins automatically under --charging)

`serve` runs the crash-safe service runtime: every slot is scheduled through
the tier fallback chain, checkpoints are written every --every slots, and
--stop-after-slot simulates a crash (resume from the last checkpoint with
`resume`). --metrics-out ending in .csv exports CSV, anything else JSON.
With --strict every slot's LP is structurally checked before solving and
batches with error-level findings are dropped (metric: analysis_rejections).
With --warm-start the LP tiers carry the optimal simplex basis between slots
(metrics: warm_start_hits / warm_start_misses); results are unchanged, solves
are cheaper.
With --incremental the Postcard tier additionally keeps its LP *model*
standing between slots: when the batch shape repeats, the time-expanded graph
is advanced slot-over-slot (expired layer retired, new layer appended) and
only right-hand sides and bounds are rewritten, then the dual simplex
re-solves from the inherited basis. A shape change rebuilds from scratch
(metrics: model_delta_hits / model_rebuilds / dual_simplex_iters); results
are unchanged, model builds are much cheaper.
With --alap each request is admitted or rejected instantly by As-Late-As-
Possible placement against residual link capacity — no LP solve on the
admission path (metrics: alap_admits / alap_rejects /
admission_latency_seconds). --reopt-every N additionally re-plans with the
full LP every N slots and rebases the residual grid from its schedule
(metric: lp_reoptimizations); 0 (default) disables re-optimization.
With --shards N each slot's batch is partitioned by --shard-by (tenant: the
FileId's high bits; region: the source datacenter), every shard solves in
parallel on its own worker thread, and a deterministic reconciliation pass
merges the plans into the one billing ledger (metric: shard_conflicts).
With --charging p<q>:<window> the provider bills the q-th percentile of each
link's per-slot volumes over aligned billing windows of <window> slots
(e.g. p95:288) instead of the running peak. The headroom rung is prepended
to the tier chain: bursts are served out of each window's free top-(100-q)%
slots before any LP runs (metric: headroom_declined when no budget exists).
--price-change reprices a link mid-run at a slot boundary; --maintain takes
a link down for [start, end) and restores its pre-outage capacity exactly.
Checkpoints become a manifest plus per-shard snapshot files next to it.
Real per-slot solve wall time is kept out of the (deterministic) snapshotted
metrics; export it with --wall-metrics-out (solve_wall_seconds, plus
solve_wall_seconds_shard<i> per shard).

`simulate --service` routes the figure presets through this same service
runtime (postcard / flow-lp / flow-greedy approaches only) instead of the
bare controller; --shards / --shard-by apply as in `serve`.

`analyze` runs postcard-analyze (codes in crates/analyze/LINTS.md):
`src` lints the workspace sources (--deny exits nonzero on findings);
`model` builds the LP for a network + trace and checks it without solving
(exits nonzero on error-level findings), or self-checks with --fixtures.";

/// Runs one CLI invocation, writing human output to `out`.
///
/// # Errors
///
/// [`CliError`] covering usage, I/O, and domain failures.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "gen-network" => gen_network(rest, out),
        "gen-trace" => gen_trace(rest, out),
        "schedule" => schedule(rest, out),
        "simulate" => simulate(rest, out),
        "serve" => serve(rest, out),
        "resume" => resume(rest, out),
        "analyze" => analyze(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn approach_by_name(name: &str) -> Result<Approach, CliError> {
    name.parse().map_err(|e: postcard_sim::ParseApproachError| CliError::Usage(e.to_string()))
}

fn write_or_print(path: Option<&str>, content: &str, out: &mut dyn Write) -> Result<(), CliError> {
    match path {
        Some(p) => {
            std::fs::write(p, content)?;
            writeln!(out, "wrote {p}")?;
        }
        None => out.write_all(content.as_bytes())?,
    }
    Ok(())
}

fn gen_network(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &[])?;
    let dcs: usize = args.require("dcs")?;
    if dcs < 2 {
        return Err(CliError::Usage("--dcs must be at least 2".into()));
    }
    let capacity: f64 = args.get_or("capacity", 100.0)?;
    let price = parse_range_f64(args.get("price").unwrap_or("1..10"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let path = args.get("out").map(str::to_string);
    args.reject_unknown()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::complete_with_prices(dcs, capacity, |_, _| rng.gen_range(price.0..=price.1));
    write_or_print(path.as_deref(), &net.to_csv(), out)
}

fn gen_trace(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &[])?;
    let dcs: usize = args.require("dcs")?;
    let slots: u64 = args.require("slots")?;
    let files = parse_range_usize(args.get("files").unwrap_or("1..4"))?;
    let size = parse_range_f64(args.get("size").unwrap_or("10..100"))?;
    let max_deadline: usize = args.get_or("max-deadline", 3)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let path = args.get("out").map(str::to_string);
    args.reject_unknown()?;
    if dcs < 2 || max_deadline == 0 || slots == 0 {
        return Err(CliError::Usage("need --dcs ≥ 2, --slots ≥ 1, --max-deadline ≥ 1".into()));
    }
    let mut workload = UniformWorkload::new(
        WorkloadConfig {
            num_dcs: dcs,
            files_per_slot: files,
            size_gb: size,
            deadline_slots: (1, max_deadline),
        },
        seed,
    );
    let trace = Trace::generate(&mut workload, slots);
    write_or_print(path.as_deref(), &trace.to_csv(), out)
}

fn schedule(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &[])?;
    let network_path: String = args.require("network")?;
    let trace_path: String = args.require("trace")?;
    let approach = approach_by_name(args.get("approach").unwrap_or("postcard"))?;
    let plan_out = args.get("plan-out").map(str::to_string);
    let costs_out = args.get("costs-out").map(str::to_string);
    args.reject_unknown()?;

    let network =
        Network::from_csv(&std::fs::read_to_string(&network_path)?).map_err(CliError::Run)?;
    let trace = Trace::from_csv(&std::fs::read_to_string(&trace_path)?)
        .map_err(|e| CliError::Run(e.to_string()))?;
    for r in trace.requests() {
        if r.src.index() >= network.num_dcs() || r.dst.index() >= network.num_dcs() {
            return Err(CliError::Run(format!(
                "{} references a datacenter outside the {}-DC network",
                r.id,
                network.num_dcs()
            )));
        }
    }

    let mut ctl = OnlineController::new(network.clone(), approach.scheduler()).with_decision_log();
    let num_slots = trace.num_slots();
    for slot in 0..num_slots {
        let batch = trace.batch(slot);
        let report = ctl.step(slot, &batch).map_err(|e| CliError::Run(e.to_string()))?;
        if !report.rejected.is_empty() {
            writeln!(out, "slot {slot}: rejected {} file(s)", report.rejected.len())?;
        }
    }
    let (accepted, rejected) = ctl.admission_counts();
    writeln!(
        out,
        "{}: {} slots, {} accepted / {} rejected, final bill {:.2}/slot",
        approach.name(),
        num_slots,
        accepted,
        rejected,
        ctl.cost_per_slot()
    )?;

    if let Some(path) = costs_out {
        let mut csv = String::from("slot,cost_per_slot\n");
        for (slot, cost) in ctl.cost_history().iter().enumerate() {
            csv.push_str(&format!("{slot},{cost}\n"));
        }
        std::fs::write(&path, csv)?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = plan_out {
        let mut combined = TransferPlan::new();
        let mut rate_decisions = 0usize;
        for (_, decision) in ctl.decisions() {
            match decision {
                Decision::Plan(p) => combined.merge(p),
                Decision::Rates(_) => rate_decisions += 1,
            }
        }
        if rate_decisions > 0 {
            writeln!(
                out,
                "note: {rate_decisions} decision(s) were constant-rate assignments; \
                 --plan-out only covers slotted plans (use a postcard/direct approach)"
            )?;
        }
        std::fs::write(&path, combined.to_csv())?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

fn simulate(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &["paper-scale", "all-approaches", "service"])?;
    let setting = args.get("setting").unwrap_or("fig6").to_string();
    let paper_scale = args.switch("paper-scale");
    let all_approaches = args.switch("all-approaches");
    let service = args.switch("service");
    let (shards, shard_by) = parse_shard_flags(&args)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let runs_override: Option<usize> = args
        .get("runs")
        .map(str::parse)
        .transpose()
        .map_err(|_| CliError::Usage("--runs: bad value".into()))?;
    let slots_override: Option<u64> = args
        .get("slots")
        .map(str::parse)
        .transpose()
        .map_err(|_| CliError::Usage("--slots: bad value".into()))?;
    args.reject_unknown()?;

    if setting == "diurnal" {
        // The billing-window experiment is its own shape (two charging
        // schemes, one workload) — it does not fit the approach table.
        if all_approaches || service || shards != 1 {
            return Err(CliError::Usage(
                "--setting diurnal ignores approaches/service/shards flags".into(),
            ));
        }
        let mut preset = DiurnalPreset::three_day();
        if let Some(s) = slots_override {
            preset.slots_per_day = (s / preset.days).max(preset.burst_release_in_day + 4);
        }
        let runs = runs_override.unwrap_or(1);
        for run in 0..runs {
            let cmp = compare_billing(&preset, seed.wrapping_add(run as u64))
                .map_err(|e| CliError::Run(e.to_string()))?;
            writeln!(out, "{}", cmp.render())?;
        }
        return Ok(());
    }
    let bases = match setting.as_str() {
        "fig4" => vec![Scenario::fig4()],
        "fig5" => vec![Scenario::fig5()],
        "fig6" => vec![Scenario::fig6()],
        "fig7" => vec![Scenario::fig7()],
        "all" => Scenario::all_figures(),
        other => return Err(CliError::Usage(format!("unknown setting `{other}`"))),
    };
    let approaches = if all_approaches {
        if service {
            return Err(CliError::Usage(
                "--all-approaches and --service are incompatible: the service \
                 runtime only tiers postcard, flow-lp, and flow-greedy"
                    .into(),
            ));
        }
        vec![
            Approach::Postcard,
            Approach::FlowLp,
            Approach::FlowTwoPhase,
            Approach::FlowGreedy,
            Approach::Direct,
        ]
    } else {
        Approach::paper_pair()
    };
    if !service && shards != 1 {
        return Err(CliError::Usage("--shards needs --service".into()));
    }
    for base in bases {
        let mut scenario = if paper_scale { base } else { base.scaled_down() };
        if let Some(r) = runs_override {
            scenario.num_runs = r;
        }
        if let Some(s) = slots_override {
            scenario.num_slots = s;
        }
        let summaries = if service {
            let template = RuntimeConfig { shards, shard_by, ..Default::default() };
            run_scenario_service(&scenario, &approaches, seed, &template)
                .map_err(|e| CliError::Run(e.to_string()))?
        } else {
            run_scenario(&scenario, &approaches, seed).map_err(|e| CliError::Run(e.to_string()))?
        };
        writeln!(out, "{}", report::render_table(&scenario, &summaries))?;
        writeln!(out, "{}", report::render_verdict(&summaries))?;
        writeln!(out)?;
    }
    Ok(())
}

/// Parses the shared `--shards` / `--shard-by` flags (defaults: 1, tenant).
fn parse_shard_flags(args: &Args) -> Result<(usize, ShardBy), CliError> {
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let shard_by = match args.get("shard-by") {
        Some(spec) => spec.parse().map_err(CliError::Usage)?,
        None => ShardBy::Tenant,
    };
    Ok((shards, shard_by))
}

/// Parses a comma-separated tier list (e.g. `postcard,flow-lp`).
fn parse_tiers(spec: &str) -> Result<Vec<TierKind>, CliError> {
    spec.split(',').map(|t| t.trim().parse().map_err(CliError::Usage)).collect()
}

/// Builds a fault plan from comma-separated `--degrade` / `--force-timeout`
/// / `--price-change` / `--maintain` specs.
fn parse_faults(
    degrade: Option<&str>,
    force_timeout: Option<&str>,
    price_change: Option<&str>,
    maintain: Option<&str>,
) -> Result<FaultPlan, CliError> {
    let mut plan = FaultPlan::none();
    if let Some(specs) = degrade {
        for spec in specs.split(',') {
            plan.degradations
                .push(FaultPlan::parse_degradation(spec.trim()).map_err(CliError::Usage)?);
        }
    }
    if let Some(specs) = force_timeout {
        for spec in specs.split(',') {
            plan.timeouts.push(FaultPlan::parse_timeout(spec.trim()).map_err(CliError::Usage)?);
        }
    }
    if let Some(specs) = price_change {
        for spec in specs.split(',') {
            plan.price_changes
                .push(FaultPlan::parse_price_change(spec.trim()).map_err(CliError::Usage)?);
        }
    }
    if let Some(specs) = maintain {
        for spec in specs.split(',') {
            plan.maintenance
                .push(FaultPlan::parse_maintenance(spec.trim()).map_err(CliError::Usage)?);
        }
    }
    Ok(plan)
}

/// Runs a service (fresh or resumed) up to `stop_after_slot`, then reports
/// and optionally exports metrics. Stopping early does *not* checkpoint —
/// that is the crash being simulated; `resume` picks up from the last
/// periodic checkpoint.
fn drive_service(
    mut rt: Runtime,
    stop_after_slot: Option<u64>,
    metrics_out: Option<&str>,
    wall_metrics_out: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let stop = stop_after_slot.unwrap_or(u64::MAX);
    while rt.next_slot() < stop {
        let Some(outcome) = rt.run_slot().map_err(|e| CliError::Run(e.to_string()))? else {
            break;
        };
        if outcome.degraded {
            writeln!(out, "slot {}: degraded (batch lost)", outcome.report.slot)?;
        } else if let Some(tier) = outcome.chosen_tier {
            let slot = outcome.report.slot;
            let cfg = rt.config();
            // The headroom rung declining is routine (no free slots to
            // burn), so narration measures "fell back" from the first
            // *scheduling* tier, not the rung itself.
            let first_scheduling = cfg
                .tiers
                .iter()
                .copied()
                .find(|t| *t != TierKind::Headroom)
                .unwrap_or(cfg.tiers[0]);
            // A scheduled re-optimization slot lands on an LP tier by
            // design — narrate it as such, not as a fallback.
            let scheduled_reopt = first_scheduling == TierKind::Alap
                && cfg.reopt_every > 0
                && slot > 0
                && slot % cfg.reopt_every == 0;
            if scheduled_reopt && tier != TierKind::Alap {
                writeln!(out, "slot {slot}: re-optimized with {tier}")?;
            } else if tier != cfg.tiers[0] && tier != first_scheduling {
                writeln!(out, "slot {slot}: fell back to {tier}")?;
            }
        }
    }

    let (accepted, rejected) = rt.controller().admission_counts();
    let state = if rt.is_finished() { "finished" } else { "stopped" };
    writeln!(
        out,
        "{state} at slot {}/{}: {} accepted / {} rejected, final bill {:.2}/slot, \
         {} fallback activation(s)",
        rt.next_slot(),
        rt.num_slots(),
        accepted,
        rejected,
        rt.final_cost_per_slot(),
        rt.metrics().counter("fallback_activations"),
    )?;
    if let Some(path) = metrics_out {
        let content =
            if path.ends_with(".csv") { rt.metrics().to_csv() } else { rt.metrics().to_json() };
        std::fs::write(path, content)?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = wall_metrics_out {
        let wall = rt.wall_metrics();
        let content = if path.ends_with(".csv") { wall.to_csv() } else { wall.to_json() };
        std::fs::write(path, content)?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

fn serve(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &["wall-clock", "strict", "warm-start", "incremental", "alap"])?;
    let network_path: String = args.require("network")?;
    let trace_path: String = args.require("trace")?;
    let slots: u64 = args.get_or("slots", 0)?;
    let checkpoint = args.get("checkpoint").map(str::to_string);
    let every: u64 = args.get_or("every", if checkpoint.is_some() { 1 } else { 0 })?;
    let budget_ms: u64 = args.get_or("budget-ms", 250)?;
    let tiers = match args.get("tiers") {
        Some(spec) => parse_tiers(spec)?,
        None => TierKind::default_chain(),
    };
    // `--queue-capacity` is the documented spelling; `--queue` stays as an
    // alias from before the queue became a persistent backlog.
    let queue_capacity: usize = match args.get("queue-capacity") {
        Some(_) => args.require("queue-capacity")?,
        None => args.get_or("queue", 1024)?,
    };
    let max_requeue_attempts: u32 = args.get_or("max-requeue", 2)?;
    let wall_clock = args.switch("wall-clock");
    let strict_analysis = args.switch("strict");
    let warm_start = args.switch("warm-start");
    let incremental = args.switch("incremental");
    let alap = args.switch("alap");
    let reopt_every: u64 = args.get_or("reopt-every", 0)?;
    let (shards, shard_by) = parse_shard_flags(&args)?;
    let charging = match args.get("charging") {
        Some(spec) => ChargingScheme::parse(spec).map_err(CliError::Usage)?,
        None => ChargingScheme::MaxPerSlot,
    };
    let faults = parse_faults(
        args.get("degrade"),
        args.get("force-timeout"),
        args.get("price-change"),
        args.get("maintain"),
    )?;
    let stop_after_slot: Option<u64> = args
        .get("stop-after-slot")
        .map(str::parse)
        .transpose()
        .map_err(|_| CliError::Usage("--stop-after-slot: bad value".into()))?;
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let wall_metrics_out = args.get("wall-metrics-out").map(str::to_string);
    args.reject_unknown()?;

    let network =
        Network::from_csv(&std::fs::read_to_string(&network_path)?).map_err(CliError::Run)?;
    let arrivals =
        ArrivalSchedule::from_csv(&std::fs::read_to_string(&trace_path)?).map_err(CliError::Run)?;
    let config = RuntimeConfig {
        tiers,
        slot_budget_us: budget_ms.saturating_mul(1000),
        checkpoint_every: if checkpoint.is_some() { every } else { 0 },
        checkpoint_path: checkpoint,
        queue_capacity,
        max_requeue_attempts,
        clock: if wall_clock { ClockKind::Wall } else { ClockKind::Sim },
        strict_analysis,
        warm_start,
        incremental,
        alap,
        reopt_every,
        shards,
        shard_by,
        charging,
    };
    let rt = Runtime::new(network, arrivals, faults, slots, config)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    drive_service(rt, stop_after_slot, metrics_out.as_deref(), wall_metrics_out.as_deref(), out)
}

fn resume(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &[])?;
    let checkpoint: String = args.require("checkpoint")?;
    let stop_after_slot: Option<u64> = args
        .get("stop-after-slot")
        .map(str::parse)
        .transpose()
        .map_err(|_| CliError::Usage("--stop-after-slot: bad value".into()))?;
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let wall_metrics_out = args.get("wall-metrics-out").map(str::to_string);
    args.reject_unknown()?;

    let rt = Runtime::resume(std::path::Path::new(&checkpoint))
        .map_err(|e| CliError::Run(e.to_string()))?;
    writeln!(out, "resumed from {checkpoint} at slot {}", rt.next_slot())?;
    drive_service(rt, stop_after_slot, metrics_out.as_deref(), wall_metrics_out.as_deref(), out)
}

/// `postcard analyze <src|model> …` — both fronts of `postcard-analyze`.
fn analyze(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(mode) = argv.first() else {
        return Err(CliError::Usage("analyze needs a mode: `src` or `model`".into()));
    };
    let rest = &argv[1..];
    match mode.as_str() {
        "src" => analyze_src(rest, out),
        "model" => analyze_model(rest, out),
        other => Err(CliError::Usage(format!("unknown analyze mode `{other}`"))),
    }
}

fn analyze_src(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &["deny", "json"])?;
    let root = args.get("root").unwrap_or(".").to_string();
    let deny = args.switch("deny");
    let json = args.switch("json");
    args.reject_unknown()?;
    let report = postcard_analyze::check_workspace(std::path::Path::new(&root));
    let rendered = if json { report.render_json() } else { report.render_text() };
    out.write_all(rendered.as_bytes())?;
    if deny && !report.is_empty() {
        return Err(CliError::Run(format!("analyze src: denying {} finding(s)", report.len())));
    }
    Ok(())
}

fn analyze_model(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &["json", "fixtures"])?;
    let json = args.switch("json");
    if args.switch("fixtures") {
        args.reject_unknown()?;
        let mut failed = 0usize;
        for outcome in postcard_analyze::fixtures::run_fixtures() {
            let verdict = if outcome.passed() { "ok" } else { "FAILED" };
            let expected = outcome.expected.unwrap_or("clean");
            writeln!(out, "fixture {:<32} expect {expected:<6} {verdict}", outcome.name)?;
            if !outcome.passed() {
                failed += 1;
                out.write_all(outcome.report.render_text().as_bytes())?;
            }
        }
        if failed > 0 {
            return Err(CliError::Run(format!("analyze model: {failed} fixture(s) failed")));
        }
        return Ok(());
    }
    let network_path: String = args.require("network")?;
    let trace_path: String = args.require("trace")?;
    args.reject_unknown()?;
    let network =
        Network::from_csv(&std::fs::read_to_string(&network_path)?).map_err(CliError::Run)?;
    let trace = Trace::from_csv(&std::fs::read_to_string(&trace_path)?)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let files = trace.requests().to_vec();
    let ledger = postcard_net::TrafficLedger::new(network.num_dcs());
    let problem = postcard_core::build_postcard_problem(
        &network,
        &files,
        &ledger,
        &postcard_core::PostcardConfig::default(),
    )
    .map_err(|e| CliError::Run(format!("building the LP failed: {e}")))?;
    let report = postcard_analyze::check_problem(&problem);
    let rendered = if json { report.render_json() } else { report.render_text() };
    out.write_all(rendered.as_bytes())?;
    writeln!(
        out,
        "checked {} file(s), {} variable(s), {} constraint(s)",
        files.len(),
        problem.model.num_vars(),
        problem.model.num_constraints()
    )?;
    if report.has_errors() {
        return Err(CliError::Run(format!(
            "analyze model: {} error-level finding(s)",
            report.num_errors()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("postcard-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli(&["help"]).unwrap();
        assert!(out.contains("gen-network"));
        assert!(out.contains("simulate"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(run_cli(&["frobnicate"]), Err(CliError::Usage(_))));
        assert!(matches!(run_cli(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn gen_network_to_stdout_is_parsable() {
        let out = run_cli(&["gen-network", "--dcs", "3", "--seed", "5"]).unwrap();
        let net = Network::from_csv(&out).unwrap();
        assert_eq!(net.num_dcs(), 3);
        assert_eq!(net.num_links(), 6);
    }

    #[test]
    fn gen_trace_roundtrip_through_file() {
        let path = tmp("trace.csv");
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "5", "--out", &path]).unwrap();
        let trace = Trace::from_csv(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!trace.is_empty());
        assert!(trace.num_slots() <= 5);
    }

    #[test]
    fn schedule_end_to_end_with_plan_export() {
        let net_path = tmp("net.csv");
        let trace_path = tmp("sched_trace.csv");
        let plan_path = tmp("plan.csv");
        let costs_path = tmp("costs.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "4",
            "--files",
            "1..2",
            "--out",
            &trace_path,
        ])
        .unwrap();
        let out = run_cli(&[
            "schedule",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--approach",
            "postcard",
            "--plan-out",
            &plan_path,
            "--costs-out",
            &costs_path,
        ])
        .unwrap();
        assert!(out.contains("postcard:"), "{out}");
        // The exported plan parses and covers the trace's files.
        let plan = TransferPlan::from_csv(&std::fs::read_to_string(&plan_path).unwrap()).unwrap();
        assert!(!plan.is_empty());
        let costs = std::fs::read_to_string(&costs_path).unwrap();
        assert!(costs.lines().count() >= 4);
    }

    #[test]
    fn schedule_rejects_mismatched_trace() {
        let net_path = tmp("small_net.csv");
        let trace_path = tmp("big_trace.csv");
        run_cli(&["gen-network", "--dcs", "2", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "8", "--slots", "2", "--out", &trace_path]).unwrap();
        let err = run_cli(&["schedule", "--network", &net_path, "--trace", &trace_path]);
        assert!(matches!(err, Err(CliError::Run(_))), "{err:?}");
    }

    #[test]
    fn simulate_tiny_run() {
        let out = run_cli(&[
            "simulate",
            "--setting",
            "fig6",
            "--runs",
            "1",
            "--slots",
            "5",
            "--seed",
            "2",
        ])
        .unwrap();
        assert!(out.contains("postcard"));
        assert!(out.contains("flow-lp"));
        assert!(out.contains("winner:"));
    }

    #[test]
    fn serve_runs_with_faults_and_exports_metrics() {
        let net_path = tmp("serve_net.csv");
        let trace_path = tmp("serve_trace.csv");
        let metrics_path = tmp("serve_metrics.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "4",
            "--files",
            "1..2",
            "--out",
            &trace_path,
        ])
        .unwrap();
        let out = run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--force-timeout",
            "1:postcard",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        assert!(out.contains("slot 1: fell back to flow-lp"), "{out}");
        assert!(out.contains("finished"), "{out}");
        assert!(out.contains("1 fallback activation(s)"), "{out}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("counter,fallback_activations,0,1"), "{metrics}");
    }

    #[test]
    fn serve_crash_then_resume_matches_uninterrupted_run() {
        let net_path = tmp("crash_net.csv");
        let trace_path = tmp("crash_trace.csv");
        let ckpt = tmp("crash.ckpt.json");
        let m_full = tmp("crash_full.json");
        let m_resumed = tmp("crash_resumed.json");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "6",
            "--files",
            "1..2",
            "--out",
            &trace_path,
        ])
        .unwrap();
        // Uninterrupted reference run.
        run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--metrics-out",
            &m_full,
        ])
        .unwrap();
        // Crash after slot 3 (checkpointing every slot), then resume.
        run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--checkpoint",
            &ckpt,
            "--stop-after-slot",
            "3",
        ])
        .unwrap();
        let out = run_cli(&["resume", "--checkpoint", &ckpt, "--metrics-out", &m_resumed]).unwrap();
        assert!(out.contains("resumed from"), "{out}");
        assert!(out.contains("finished"), "{out}");
        // The resumed run's bill gauge matches the uninterrupted run's.
        let full = std::fs::read_to_string(&m_full).unwrap();
        let resumed = std::fs::read_to_string(&m_resumed).unwrap();
        let gauge = |s: &str| {
            s.lines()
                .find(|l| l.contains("\"bill_per_slot\""))
                .map(str::to_string)
                .expect("bill gauge present")
        };
        assert_eq!(gauge(&full), gauge(&resumed));
    }

    #[test]
    fn simulate_service_tiny_run() {
        let out = run_cli(&[
            "simulate",
            "--setting",
            "fig6",
            "--service",
            "--runs",
            "1",
            "--slots",
            "4",
            "--seed",
            "2",
        ])
        .unwrap();
        assert!(out.contains("postcard"));
        assert!(out.contains("flow-lp"));
        assert!(out.contains("winner:"));
    }

    #[test]
    fn simulate_shards_require_service() {
        let err = run_cli(&["simulate", "--shards", "2", "--runs", "1", "--slots", "2"]);
        assert!(matches!(err, Err(CliError::Usage(ref m)) if m.contains("--service")), "{err:?}");
        let err = run_cli(&["simulate", "--service", "--all-approaches"]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
    }

    #[test]
    fn serve_rejects_bad_shard_flags() {
        let err = run_cli(&["serve", "--network", "x", "--trace", "y", "--shards", "0"]);
        assert!(matches!(err, Err(CliError::Usage(ref m)) if m.contains("shard")), "{err:?}");
        let err = run_cli(&["serve", "--network", "x", "--trace", "y", "--shard-by", "rack"]);
        assert!(matches!(err, Err(CliError::Usage(ref m)) if m.contains("rack")), "{err:?}");
    }

    #[test]
    fn serve_single_shard_reproduces_unsharded_outputs() {
        let net_path = tmp("shard1_net.csv");
        let trace_path = tmp("shard1_trace.csv");
        let m_plain = tmp("shard1_plain.json");
        let m_one = tmp("shard1_one.json");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "5", "--out", &trace_path]).unwrap();
        let base = ["serve", "--network", &net_path, "--trace", &trace_path];
        let mut plain = base.to_vec();
        plain.extend_from_slice(&["--metrics-out", &m_plain]);
        let out_plain = run_cli(&plain).unwrap();
        let mut one = base.to_vec();
        one.extend_from_slice(&["--shards", "1", "--metrics-out", &m_one]);
        let out_one = run_cli(&one).unwrap();
        assert_eq!(
            out_plain.replace(&m_plain, ""),
            out_one.replace(&m_one, ""),
            "--shards 1 must reproduce the unsharded run exactly"
        );
        assert_eq!(
            std::fs::read_to_string(&m_plain).unwrap(),
            std::fs::read_to_string(&m_one).unwrap()
        );
    }

    #[test]
    fn sharded_serve_crash_then_resume_matches_uninterrupted_run() {
        let net_path = tmp("shard_crash_net.csv");
        let trace_path = tmp("shard_crash_trace.csv");
        let dir = tmp("shard_crash_ckpts");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = format!("{dir}/shard.ckpt.json");
        let m_full = tmp("shard_crash_full.json");
        let m_resumed = tmp("shard_crash_resumed.json");
        let wall = tmp("shard_crash_wall.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "6",
            "--files",
            "1..2",
            "--out",
            &trace_path,
        ])
        .unwrap();
        let sharded = |extra: &[&str]| {
            let mut argv = vec![
                "serve",
                "--network",
                &net_path,
                "--trace",
                &trace_path,
                "--shards",
                "2",
                "--shard-by",
                "region",
            ];
            argv.extend_from_slice(extra);
            run_cli(&argv).unwrap()
        };
        // Uninterrupted sharded reference run (with wall metrics exported).
        sharded(&["--metrics-out", &m_full, "--wall-metrics-out", &wall]);
        let wall_csv = std::fs::read_to_string(&wall).unwrap();
        assert!(wall_csv.contains("solve_wall_seconds"), "{wall_csv}");
        // Crash after slot 3, then resume from the manifest.
        sharded(&["--checkpoint", &ckpt, "--stop-after-slot", "3"]);
        // The checkpoint wrote per-shard snapshot files next to the manifest.
        let shard_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".shard"))
            .collect();
        assert!(!shard_files.is_empty(), "no shard snapshot files in {dir}");
        let out = run_cli(&["resume", "--checkpoint", &ckpt, "--metrics-out", &m_resumed]).unwrap();
        assert!(out.contains("finished"), "{out}");
        let full = std::fs::read_to_string(&m_full).unwrap();
        let resumed = std::fs::read_to_string(&m_resumed).unwrap();
        let line = |s: &str, key: &str| {
            s.lines().find(|l| l.contains(key)).map(str::to_string).unwrap_or_default()
        };
        assert_eq!(line(&full, "\"bill_per_slot\""), line(&resumed, "\"bill_per_slot\""));
        assert_eq!(line(&full, "\"files_accepted\""), line(&resumed, "\"files_accepted\""));
    }

    #[test]
    fn analyze_model_fixtures_pass() {
        let out = run_cli(&["analyze", "model", "--fixtures"]).unwrap();
        assert!(out.contains("deadline-violating-arc-variable"), "{out}");
        assert!(out.contains("clean-builder-problem"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn analyze_model_accepts_generated_scenarios() {
        let net_path = tmp("analyze_net.csv");
        let trace_path = tmp("analyze_trace.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "3", "--out", &trace_path]).unwrap();
        let out =
            run_cli(&["analyze", "model", "--network", &net_path, "--trace", &trace_path]).unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
        assert!(out.contains("checked"), "{out}");
    }

    #[test]
    fn analyze_src_deny_fails_on_bad_tree_and_passes_clean_one() {
        // A fake workspace with one float comparison in its root sources.
        let root = tmp("analyze_root");
        let src = std::path::Path::new(&root).join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("lib.rs"), "pub fn f(x: f64) -> bool { x == 1.0 }\n").unwrap();
        let out = run_cli(&["analyze", "src", "--root", &root]).unwrap();
        assert!(out.contains("PA101"), "{out}");
        let err = run_cli(&["analyze", "src", "--root", &root, "--deny"]);
        assert!(matches!(err, Err(CliError::Run(_))), "{err:?}");
        // Clean tree: no findings, --deny passes.
        std::fs::write(src.join("lib.rs"), "pub fn f(x: u64) -> bool { x == 1 }\n").unwrap();
        let out = run_cli(&["analyze", "src", "--root", &root, "--deny"]).unwrap();
        assert!(out.contains("0 error(s), 0 warning(s)"), "{out}");
    }

    #[test]
    fn serve_strict_runs_clean_workloads_unchanged() {
        let net_path = tmp("strict_net.csv");
        let trace_path = tmp("strict_trace.csv");
        let metrics_path = tmp("strict_metrics.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "3", "--out", &trace_path]).unwrap();
        let out = run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--strict",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        assert!(out.contains("finished"), "{out}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(!metrics.contains("analysis_rejections"), "no rejections: {metrics}");
    }

    #[test]
    fn serve_warm_start_counts_hits() {
        let net_path = tmp("warm_net.csv");
        let trace_path = tmp("warm_trace.csv");
        let metrics_path = tmp("warm_metrics.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "4", "--out", &trace_path]).unwrap();
        let out = run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--warm-start",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        assert!(out.contains("finished"), "{out}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("warm_start_"), "warm metrics missing: {metrics}");
    }

    #[test]
    fn serve_incremental_counts_model_reuse() {
        let net_path = tmp("inc_net.csv");
        let trace_path = tmp("inc_trace.csv");
        let metrics_path = tmp("inc_metrics.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "4", "--out", &trace_path]).unwrap();
        let out = run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--incremental",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        assert!(out.contains("finished"), "{out}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(
            metrics.contains("model_delta_hits") || metrics.contains("model_rebuilds"),
            "incremental metrics missing: {metrics}"
        );
    }

    #[test]
    fn serve_accepts_queue_capacity_and_max_requeue_flags() {
        let net_path = tmp("queue_net.csv");
        let trace_path = tmp("queue_trace.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "3", "--out", &trace_path]).unwrap();
        // The documented spelling and the legacy `--queue` alias both work.
        for capacity_flag in ["--queue-capacity", "--queue"] {
            let out = run_cli(&[
                "serve",
                "--network",
                &net_path,
                "--trace",
                &trace_path,
                capacity_flag,
                "16",
                "--max-requeue",
                "1",
            ])
            .unwrap();
            assert!(out.contains("finished"), "{out}");
        }
        let err = run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--queue-capacity",
            "a-lot",
        ]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
    }

    #[test]
    fn serve_alap_admits_without_lp_and_reoptimizes_on_schedule() {
        let net_path = tmp("alap_net.csv");
        let trace_path = tmp("alap_trace.csv");
        let metrics_path = tmp("alap_metrics.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "4",
            "--files",
            "1..2",
            "--out",
            &trace_path,
        ])
        .unwrap();
        let out = run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--alap",
            "--reopt-every",
            "2",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        assert!(out.contains("finished"), "{out}");
        assert!(!out.contains("fell back"), "scheduled reopts are not fallbacks: {out}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("alap_admits"), "{metrics}");
        assert!(metrics.contains("tier_chosen_alap"), "{metrics}");
        assert!(metrics.contains("admission_latency_seconds"), "{metrics}");
        // Off-schedule slots never reach the LP: the only way postcard is
        // chosen is a scheduled re-optimization, which is not a fallback.
        assert!(!metrics.contains("slots_on_fallback_tier"), "{metrics}");
        if metrics.contains("tier_chosen_postcard") {
            assert!(metrics.contains("lp_reoptimizations"), "{metrics}");
            assert!(out.contains("re-optimized with postcard"), "{out}");
        }
    }

    #[test]
    fn serve_alap_crash_then_resume_matches_uninterrupted_run() {
        let net_path = tmp("alap_crash_net.csv");
        let trace_path = tmp("alap_crash_trace.csv");
        let ckpt = tmp("alap_crash.ckpt.json");
        let m_full = tmp("alap_crash_full.json");
        let m_resumed = tmp("alap_crash_resumed.json");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "6",
            "--files",
            "1..2",
            "--out",
            &trace_path,
        ])
        .unwrap();
        let alap_serve = |extra: &[&str]| {
            let mut argv = vec!["serve", "--network", &net_path, "--trace", &trace_path, "--alap"];
            argv.extend_from_slice(extra);
            run_cli(&argv).unwrap()
        };
        alap_serve(&["--metrics-out", &m_full]);
        alap_serve(&["--checkpoint", &ckpt, "--stop-after-slot", "3"]);
        let out = run_cli(&["resume", "--checkpoint", &ckpt, "--metrics-out", &m_resumed]).unwrap();
        assert!(out.contains("finished"), "{out}");
        // The residual grid is rebuilt from the snapshotted ledger, so the
        // resumed run's metrics (bill gauge included) match bit for bit.
        let full = std::fs::read_to_string(&m_full).unwrap();
        let resumed = std::fs::read_to_string(&m_resumed).unwrap();
        let line = |s: &str, key: &str| {
            s.lines().find(|l| l.contains(key)).map(str::to_string).unwrap_or_default()
        };
        assert_eq!(line(&full, "\"bill_per_slot\""), line(&resumed, "\"bill_per_slot\""));
        assert_eq!(line(&full, "\"alap_admits\""), line(&resumed, "\"alap_admits\""));
    }

    #[test]
    fn serve_rejects_bad_tier_and_fault_specs() {
        let err =
            run_cli(&["serve", "--network", "x", "--trace", "y", "--tiers", "postcard,quantum"]);
        assert!(matches!(err, Err(CliError::Usage(ref m)) if m.contains("quantum")), "{err:?}");
        let err = run_cli(&["serve", "--network", "x", "--trace", "y", "--degrade", "1:2"]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
        for bad in ["p95", "p0:48", "p101:48", "p95:0", "median", "p95:x"] {
            let err = run_cli(&["serve", "--network", "x", "--trace", "y", "--charging", bad]);
            assert!(
                matches!(err, Err(CliError::Usage(ref m)) if m.contains("charging spec")
                    || m.contains("percentile") || m.contains("window length")),
                "{bad}: {err:?}"
            );
        }
        let err = run_cli(&["serve", "--network", "x", "--trace", "y", "--price-change", "1:0"]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
        let err = run_cli(&["serve", "--network", "x", "--trace", "y", "--maintain", "3:1:0:1"]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
    }

    #[test]
    fn simulate_diurnal_renders_billing_comparison() {
        let out = run_cli(&["simulate", "--setting", "diurnal", "--seed", "5"]).unwrap();
        assert!(out.contains("billing comparison under p95:48"), "{out}");
        assert!(out.contains("max-charging"), "{out}");
        assert!(out.contains("p95-aware"), "{out}");
        let err = run_cli(&["simulate", "--setting", "diurnal", "--service"]);
        assert!(matches!(err, Err(CliError::Usage(_))), "{err:?}");
    }

    #[test]
    fn serve_applies_price_changes_and_maintenance() {
        let net_path = tmp("fault_net.csv");
        let trace_path = tmp("fault_trace.csv");
        let metrics_path = tmp("fault_metrics.csv");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "5",
            "--files",
            "1..2",
            "--out",
            &trace_path,
        ])
        .unwrap();
        let out = run_cli(&[
            "serve",
            "--network",
            &net_path,
            "--trace",
            &trace_path,
            "--price-change",
            "1:0:1:9.5",
            "--maintain",
            "2:4:0:1",
            "--metrics-out",
            &metrics_path,
        ])
        .unwrap();
        assert!(out.contains("finished"), "{out}");
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("counter,price_changes_applied,0,1"), "{metrics}");
        assert!(metrics.contains("counter,maintenance_outages,0,1"), "{metrics}");
        assert!(metrics.contains("counter,maintenance_restores,0,1"), "{metrics}");
    }

    #[test]
    fn serve_p95_crash_mid_window_resumes_bit_identically() {
        // Kill a percentile-charged run in the middle of a billing window:
        // the resumed run must re-create the window accounting exactly
        // (snapshot v8 carries the full ledger, so the headroom rung sees
        // identical baselines and budgets).
        let net_path = tmp("p95_net.csv");
        let trace_path = tmp("p95_trace.csv");
        let ckpt = tmp("p95.ckpt.json");
        let m_full = tmp("p95_full.json");
        let m_resumed = tmp("p95_resumed.json");
        run_cli(&["gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path]).unwrap();
        run_cli(&[
            "gen-trace",
            "--dcs",
            "4",
            "--slots",
            "6",
            "--files",
            "1..3",
            "--out",
            &trace_path,
        ])
        .unwrap();
        let base = |extra: &[&str], metrics: &str| {
            // p75 over 4-slot windows: one free slot per window, a
            // window rollover at slot 4, and the crash below lands
            // mid-window. (p95:4 would have zero free slots — the
            // config validator rejects that pairing outright.)
            let mut argv = vec![
                "serve",
                "--network",
                &net_path,
                "--trace",
                &trace_path,
                "--charging",
                "p75:4",
            ];
            argv.extend_from_slice(extra);
            argv.extend_from_slice(&["--metrics-out", metrics]);
            run_cli(&argv).unwrap()
        };
        base(&[], &m_full);
        // Crash after slot 2 — inside the first 4-slot billing window.
        base(&["--checkpoint", &ckpt, "--stop-after-slot", "2"], &tmp("p95_scratch.json"));
        let out = run_cli(&["resume", "--checkpoint", &ckpt, "--metrics-out", &m_resumed]).unwrap();
        assert!(out.contains("finished"), "{out}");
        let full = std::fs::read_to_string(&m_full).unwrap();
        let resumed = std::fs::read_to_string(&m_resumed).unwrap();
        let line = |s: &str, key: &str| {
            s.lines().find(|l| l.contains(key)).map(str::to_string).unwrap_or_default()
        };
        assert_eq!(line(&full, "\"bill_per_slot\""), line(&resumed, "\"bill_per_slot\""));
        assert_eq!(line(&full, "files_accepted"), line(&resumed, "files_accepted"));
        assert_eq!(
            line(&full, "headroom_declined"),
            line(&resumed, "headroom_declined"),
            "window accounting resumed differently"
        );
    }

    #[test]
    fn resume_without_snapshot_reports_run_error() {
        let err = run_cli(&["resume", "--checkpoint", "/nonexistent/nope.json"]);
        assert!(matches!(err, Err(CliError::Run(_))), "{err:?}");
    }

    #[test]
    fn unknown_flag_is_reported() {
        let err = run_cli(&["gen-network", "--dcs", "3", "--frob", "1"]);
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("frob")));
    }

    #[test]
    fn bad_approach_is_reported() {
        let err = run_cli(&["schedule", "--network", "x", "--trace", "y", "--approach", "quantum"]);
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("quantum")));
    }
}
