//! The CLI subcommands.

use crate::args::{parse_range_f64, parse_range_usize, ArgError, Args};
use postcard_core::{Decision, OnlineController};
use postcard_net::{Network, TransferPlan};
use postcard_sim::{report, run_scenario, Approach, Scenario, Trace, UniformWorkload, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io::Write;

/// Any failure of a CLI run.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage (flags, ranges, unknown subcommand).
    Usage(String),
    /// File I/O failure.
    Io(std::io::Error),
    /// A domain failure (parse errors, solver failures).
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Run(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

const USAGE: &str = "\
usage: postcard <command> [flags]

commands:
  gen-network   --dcs N [--capacity GB] [--price lo..hi] [--seed S] [--out PATH]
  gen-trace     --dcs N --slots N [--files lo..hi] [--size lo..hi]
                [--max-deadline T] [--seed S] [--out PATH]
  schedule      --network PATH --trace PATH [--approach NAME]
                [--plan-out PATH] [--costs-out PATH]
  simulate      [--setting fig4|fig5|fig6|fig7|all] [--paper-scale]
                [--runs N] [--slots N] [--seed S] [--all-approaches]
  help

approaches: postcard (default), postcard-no-relay-storage, flow-lp,
            flow-two-phase, flow-greedy, direct";

/// Runs one CLI invocation, writing human output to `out`.
///
/// # Errors
///
/// [`CliError`] covering usage, I/O, and domain failures.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "gen-network" => gen_network(rest, out),
        "gen-trace" => gen_trace(rest, out),
        "schedule" => schedule(rest, out),
        "simulate" => simulate(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn approach_by_name(name: &str) -> Result<Approach, CliError> {
    name.parse().map_err(|e: postcard_sim::ParseApproachError| CliError::Usage(e.to_string()))
}

fn write_or_print(path: Option<&str>, content: &str, out: &mut dyn Write) -> Result<(), CliError> {
    match path {
        Some(p) => {
            std::fs::write(p, content)?;
            writeln!(out, "wrote {p}")?;
        }
        None => out.write_all(content.as_bytes())?,
    }
    Ok(())
}

fn gen_network(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &[])?;
    let dcs: usize = args.require("dcs")?;
    if dcs < 2 {
        return Err(CliError::Usage("--dcs must be at least 2".into()));
    }
    let capacity: f64 = args.get_or("capacity", 100.0)?;
    let price = parse_range_f64(args.get("price").unwrap_or("1..10"))?;
    let seed: u64 = args.get_or("seed", 1)?;
    let path = args.get("out").map(str::to_string);
    args.reject_unknown()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::complete_with_prices(dcs, capacity, |_, _| {
        rng.gen_range(price.0..=price.1)
    });
    write_or_print(path.as_deref(), &net.to_csv(), out)
}

fn gen_trace(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &[])?;
    let dcs: usize = args.require("dcs")?;
    let slots: u64 = args.require("slots")?;
    let files = parse_range_usize(args.get("files").unwrap_or("1..4"))?;
    let size = parse_range_f64(args.get("size").unwrap_or("10..100"))?;
    let max_deadline: usize = args.get_or("max-deadline", 3)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let path = args.get("out").map(str::to_string);
    args.reject_unknown()?;
    if dcs < 2 || max_deadline == 0 || slots == 0 {
        return Err(CliError::Usage("need --dcs ≥ 2, --slots ≥ 1, --max-deadline ≥ 1".into()));
    }
    let mut workload = UniformWorkload::new(
        WorkloadConfig {
            num_dcs: dcs,
            files_per_slot: files,
            size_gb: size,
            deadline_slots: (1, max_deadline),
        },
        seed,
    );
    let trace = Trace::generate(&mut workload, slots);
    write_or_print(path.as_deref(), &trace.to_csv(), out)
}

fn schedule(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &[])?;
    let network_path: String = args.require("network")?;
    let trace_path: String = args.require("trace")?;
    let approach = approach_by_name(args.get("approach").unwrap_or("postcard"))?;
    let plan_out = args.get("plan-out").map(str::to_string);
    let costs_out = args.get("costs-out").map(str::to_string);
    args.reject_unknown()?;

    let network = Network::from_csv(&std::fs::read_to_string(&network_path)?)
        .map_err(CliError::Run)?;
    let trace = Trace::from_csv(&std::fs::read_to_string(&trace_path)?)
        .map_err(|e| CliError::Run(e.to_string()))?;
    for r in trace.requests() {
        if r.src.index() >= network.num_dcs() || r.dst.index() >= network.num_dcs() {
            return Err(CliError::Run(format!(
                "{} references a datacenter outside the {}-DC network",
                r.id,
                network.num_dcs()
            )));
        }
    }

    let mut ctl =
        OnlineController::new(network.clone(), approach.scheduler()).with_decision_log();
    let num_slots = trace.num_slots();
    for slot in 0..num_slots {
        let batch = trace.batch(slot);
        let report = ctl.step(slot, &batch).map_err(|e| CliError::Run(e.to_string()))?;
        if !report.rejected.is_empty() {
            writeln!(out, "slot {slot}: rejected {} file(s)", report.rejected.len())?;
        }
    }
    let (accepted, rejected) = ctl.admission_counts();
    writeln!(
        out,
        "{}: {} slots, {} accepted / {} rejected, final bill {:.2}/slot",
        approach.name(),
        num_slots,
        accepted,
        rejected,
        ctl.cost_per_slot()
    )?;

    if let Some(path) = costs_out {
        let mut csv = String::from("slot,cost_per_slot\n");
        for (slot, cost) in ctl.cost_history().iter().enumerate() {
            csv.push_str(&format!("{slot},{cost}\n"));
        }
        std::fs::write(&path, csv)?;
        writeln!(out, "wrote {path}")?;
    }
    if let Some(path) = plan_out {
        let mut combined = TransferPlan::new();
        let mut rate_decisions = 0usize;
        for (_, decision) in ctl.decisions() {
            match decision {
                Decision::Plan(p) => combined.merge(p),
                Decision::Rates(_) => rate_decisions += 1,
            }
        }
        if rate_decisions > 0 {
            writeln!(
                out,
                "note: {rate_decisions} decision(s) were constant-rate assignments; \
                 --plan-out only covers slotted plans (use a postcard/direct approach)"
            )?;
        }
        std::fs::write(&path, combined.to_csv())?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}

fn simulate(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv, &["paper-scale", "all-approaches"])?;
    let setting = args.get("setting").unwrap_or("fig6").to_string();
    let paper_scale = args.switch("paper-scale");
    let all_approaches = args.switch("all-approaches");
    let seed: u64 = args.get_or("seed", 1)?;
    let runs_override: Option<usize> = args.get("runs").map(str::parse).transpose()
        .map_err(|_| CliError::Usage("--runs: bad value".into()))?;
    let slots_override: Option<u64> = args.get("slots").map(str::parse).transpose()
        .map_err(|_| CliError::Usage("--slots: bad value".into()))?;
    args.reject_unknown()?;

    let bases = match setting.as_str() {
        "fig4" => vec![Scenario::fig4()],
        "fig5" => vec![Scenario::fig5()],
        "fig6" => vec![Scenario::fig6()],
        "fig7" => vec![Scenario::fig7()],
        "all" => Scenario::all_figures(),
        other => return Err(CliError::Usage(format!("unknown setting `{other}`"))),
    };
    let approaches = if all_approaches {
        vec![
            Approach::Postcard,
            Approach::FlowLp,
            Approach::FlowTwoPhase,
            Approach::FlowGreedy,
            Approach::Direct,
        ]
    } else {
        Approach::paper_pair()
    };
    for base in bases {
        let mut scenario = if paper_scale { base } else { base.scaled_down() };
        if let Some(r) = runs_override {
            scenario.num_runs = r;
        }
        if let Some(s) = slots_override {
            scenario.num_slots = s;
        }
        let summaries = run_scenario(&scenario, &approaches, seed)
            .map_err(|e| CliError::Run(e.to_string()))?;
        writeln!(out, "{}", report::render_table(&scenario, &summaries))?;
        writeln!(out, "{}", report::render_verdict(&summaries))?;
        writeln!(out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("postcard-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli(&["help"]).unwrap();
        assert!(out.contains("gen-network"));
        assert!(out.contains("simulate"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(run_cli(&["frobnicate"]), Err(CliError::Usage(_))));
        assert!(matches!(run_cli(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn gen_network_to_stdout_is_parsable() {
        let out = run_cli(&["gen-network", "--dcs", "3", "--seed", "5"]).unwrap();
        let net = Network::from_csv(&out).unwrap();
        assert_eq!(net.num_dcs(), 3);
        assert_eq!(net.num_links(), 6);
    }

    #[test]
    fn gen_trace_roundtrip_through_file() {
        let path = tmp("trace.csv");
        run_cli(&["gen-trace", "--dcs", "4", "--slots", "5", "--out", &path]).unwrap();
        let trace = Trace::from_csv(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(!trace.is_empty());
        assert!(trace.num_slots() <= 5);
    }

    #[test]
    fn schedule_end_to_end_with_plan_export() {
        let net_path = tmp("net.csv");
        let trace_path = tmp("sched_trace.csv");
        let plan_path = tmp("plan.csv");
        let costs_path = tmp("costs.csv");
        run_cli(&[
            "gen-network", "--dcs", "4", "--capacity", "500", "--out", &net_path,
        ])
        .unwrap();
        run_cli(&[
            "gen-trace", "--dcs", "4", "--slots", "4", "--files", "1..2", "--out", &trace_path,
        ])
        .unwrap();
        let out = run_cli(&[
            "schedule",
            "--network", &net_path,
            "--trace", &trace_path,
            "--approach", "postcard",
            "--plan-out", &plan_path,
            "--costs-out", &costs_path,
        ])
        .unwrap();
        assert!(out.contains("postcard:"), "{out}");
        // The exported plan parses and covers the trace's files.
        let plan =
            TransferPlan::from_csv(&std::fs::read_to_string(&plan_path).unwrap()).unwrap();
        assert!(!plan.is_empty());
        let costs = std::fs::read_to_string(&costs_path).unwrap();
        assert!(costs.lines().count() >= 4);
    }

    #[test]
    fn schedule_rejects_mismatched_trace() {
        let net_path = tmp("small_net.csv");
        let trace_path = tmp("big_trace.csv");
        run_cli(&["gen-network", "--dcs", "2", "--out", &net_path]).unwrap();
        run_cli(&["gen-trace", "--dcs", "8", "--slots", "2", "--out", &trace_path]).unwrap();
        let err = run_cli(&["schedule", "--network", &net_path, "--trace", &trace_path]);
        assert!(matches!(err, Err(CliError::Run(_))), "{err:?}");
    }

    #[test]
    fn simulate_tiny_run() {
        let out = run_cli(&[
            "simulate", "--setting", "fig6", "--runs", "1", "--slots", "5", "--seed", "2",
        ])
        .unwrap();
        assert!(out.contains("postcard"));
        assert!(out.contains("flow-lp"));
        assert!(out.contains("winner:"));
    }

    #[test]
    fn unknown_flag_is_reported() {
        let err = run_cli(&["gen-network", "--dcs", "3", "--frob", "1"]);
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("frob")));
    }

    #[test]
    fn bad_approach_is_reported() {
        let err = run_cli(&[
            "schedule", "--network", "x", "--trace", "y", "--approach", "quantum",
        ]);
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("quantum")));
    }
}
