//! # postcard-cli — drive the Postcard scheduler from the command line
//!
//! Subcommands (see `postcard help`):
//!
//! * `gen-network` — sample a complete network (paper-style uniform prices)
//!   to a CSV file;
//! * `gen-trace` — sample a workload trace to a CSV file;
//! * `schedule` — run the online controller over a trace against a network
//!   and export the committed plan / per-slot bills;
//! * `simulate` — reproduce a figure setting (Fig. 4–7) like
//!   `examples/online_simulation.rs`, with knobs.
//!
//! All logic lives in this library crate so the test-suite can drive the
//! commands without spawning processes; `main.rs` is a thin shim.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
mod commands;

pub use args::{parse_range_f64, parse_range_usize, ArgError, Args};
pub use commands::{run, CliError};
