//! The PA201–PA208 determinism & concurrency lint family.
//!
//! PR 7 made byte-identical determinism load-bearing: sharded solves on a
//! thread pool must reconcile to the exact same bill and snapshot bytes
//! regardless of scheduling. These lints guard that invariant statically
//! over the determinism-critical crates (`lp`, `flow`, `core`, `net`,
//! `runtime`):
//!
//! * **PA201** — `HashMap`/`HashSet` iteration reaching ordered output
//!   (snapshot/serialize/export/merge functions) without a sort.
//! * **PA202** — `Instant::now`/`SystemTime` outside the sanctioned
//!   `Clock` seam (`runtime/src/clock.rs`).
//! * **PA203** — thread spawns outside `shard/pool.rs`, and channel
//!   receives (completion-order merges) anywhere in these crates.
//! * **PA204** — float reductions (`sum`/`product`/`fold`, `+=` loops)
//!   over unordered collections.
//! * **PA205** — lossy `as` casts in billing/ledger arithmetic.
//! * **PA206** — lock guards held across a solve call.
//! * **PA207** — nondeterminism-source taint propagated one call-graph hop
//!   into snapshot-writing functions.
//! * **PA208** — committed snapshot fixtures without a version-probe test.
//!
//! Suppression uses the same `// postcard-analyze: allow(PA2xx)` comments
//! as PA1xx (PA208 anchors to fixture files, not source lines, and is
//! fixed by adding a probe rather than suppressed).

use crate::ast::ParsedFile;
use crate::callgraph::{callees, CallGraph};
use crate::diag::{Diagnostic, Report};
use crate::lexer::TokKind;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Crates where nondeterminism can reach bills, snapshots, or admission
/// decisions — the PA2xx family applies here (same set as PA102/PA103).
const DETERMINISM_CRATES: &[&str] = &["lp", "flow", "core", "net", "runtime"];

/// Unordered-iteration adaptor methods on `HashMap`/`HashSet`.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Methods that impose an order downstream of an unordered source.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "sorted_by",
];

/// Ordered collection types: collecting into one re-orders the stream.
const ORDERED_SINK_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

/// Terminal operations whose result is independent of iteration order.
const ORDER_FREE_TERMINALS: &[&str] = &[
    "count",
    "any",
    "all",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "contains",
    "is_empty",
    "len",
];

/// Order-sensitive float reductions (PA204).
const REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Function-name fragments that mark a function as producing ordered
/// output (snapshot serialization, ledger/reconcile merges, metrics
/// export).
const OUTPUT_NAME_HINTS: &[&str] = &[
    "snapshot",
    "serialize",
    "render",
    "export",
    "write",
    "save",
    "checkpoint",
    "manifest",
    "persist",
    "to_json",
    "to_csv",
    "reconcile",
    "merge",
    "bill",
    "encode",
];

/// Identifiers inside a body that mark it as writing ordered output.
const OUTPUT_BODY_HINTS: &[&str] =
    &["write", "writeln", "push_str", "serialize", "to_json", "to_writer"];

/// Function-name fragments marking snapshot-writing sinks for PA207.
const SINK_NAME_HINTS: &[&str] = &["snapshot", "checkpoint", "manifest", "persist", "save"];

/// Functions whose invocation means "a solve is running" (PA206).
const SOLVE_CALLS: &[&str] = &[
    "solve",
    "solve_warm",
    "solve_cold",
    "schedule",
    "step",
    "run_slot",
    "admit",
    "admit_batch",
    "solve_shard",
    "solve_parallel",
];

/// `true` when `label` is the sanctioned clock seam (PA202).
fn is_clock_file(label: &str) -> bool {
    label.ends_with("clock.rs")
}

/// `true` when `label` is the sanctioned thread-pool file (PA203).
fn is_pool_file(label: &str) -> bool {
    label.ends_with("pool.rs")
}

/// `true` when `label` names a billing/ledger file (PA205 scope).
fn is_billing_file(label: &str) -> bool {
    let stem = label.rsplit(['/', '\\']).next().unwrap_or(label);
    stem.contains("ledger") || stem.contains("charging") || stem.contains("bill")
}

/// Runs the per-file lints PA201–PA206 on one parsed file.
pub fn check_file(pf: &ParsedFile) -> Report {
    let mut report = Report::new();
    if !DETERMINISM_CRATES.contains(&pf.crate_name.as_str()) {
        return report;
    }
    let mut seen: BTreeSet<(&str, usize)> = BTreeSet::new();
    let unordered = unordered_names(pf);
    check_unordered_iteration(pf, &unordered, &mut report, &mut seen);
    check_wall_time(pf, &mut report, &mut seen);
    check_threads_and_channels(pf, &mut report, &mut seen);
    if is_billing_file(&pf.label) {
        check_lossy_casts(pf, &mut report, &mut seen);
    }
    check_locks_across_solves(pf, &mut report, &mut seen);
    report
}

/// PA207 — cross-file taint: a snapshot-writing function calls (one hop) a
/// function that reads a nondeterminism source.
pub fn check_taint(files: &[ParsedFile]) -> Report {
    let mut report = Report::new();
    let graph = CallGraph::build(files);
    // Which functions are tainted, and by what.
    let mut tainted: Vec<Option<String>> = vec![None; graph.fns.len()];
    for (node, &(fi, gi)) in graph.fns.iter().enumerate() {
        let pf = &files[fi];
        if !DETERMINISM_CRATES.contains(&pf.crate_name.as_str()) {
            continue;
        }
        let f = &pf.fns[gi];
        if f.is_test {
            continue;
        }
        tainted[node] = taint_source_in(pf, f);
    }
    for &(fi, gi) in &graph.fns {
        let pf = &files[fi];
        if !DETERMINISM_CRATES.contains(&pf.crate_name.as_str()) {
            continue;
        }
        let f = &pf.fns[gi];
        let lname = f.name.to_lowercase();
        if f.is_test || !SINK_NAME_HINTS.iter().any(|h| lname.contains(h)) {
            continue;
        }
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for site in callees(pf, f) {
            if site.callee == f.name || !reported.insert(site.callee.clone()) {
                continue;
            }
            let Some(source) =
                graph.resolve(&site.callee).iter().find_map(|&node| tainted[node].clone())
            else {
                continue;
            };
            if pf.allowed(site.line, "PA207") {
                continue;
            }
            report.push(
                Diagnostic::warning(
                    "PA207",
                    format!("{}:{}", pf.label, site.line),
                    format!(
                        "snapshot-writing function `{}` calls `{}`, which reads a \
                         nondeterminism source ({source})",
                        f.name, site.callee
                    ),
                )
                .with_help(
                    "hoist the nondeterministic read out of the snapshot path, or make the \
                     callee deterministic; snapshot bytes must not depend on timing or hash \
                     order",
                ),
            );
        }
    }
    report
}

/// Returns a description of the first nondeterminism source in `f`'s body,
/// if any.
fn taint_source_in(pf: &ParsedFile, f: &crate::ast::FnInfo) -> Option<String> {
    let (start, end) = f.body?;
    let unordered = unordered_names(pf);
    for k in start..end {
        let t = pf.ct(k);
        if pf.in_test(t.line) {
            continue;
        }
        if !is_clock_file(&pf.label)
            && ((t.is_ident("Instant")
                && k + 2 < end
                && pf.ct(k + 1).is_punct("::")
                && pf.ct(k + 2).is_ident("now"))
                || t.is_ident("SystemTime"))
        {
            return Some(format!("wall-clock time at {}:{}", pf.label, t.line));
        }
        if !is_pool_file(&pf.label) && is_spawn_or_recv(pf, k, end).is_some() {
            return Some(format!("thread scheduling at {}:{}", pf.label, t.line));
        }
        if let Some(site) = iteration_site(pf, k, &unordered) {
            if !site.sanctioned {
                return Some(format!("unordered iteration at {}:{}", pf.label, t.line));
            }
        }
    }
    None
}

/// PA208 — every committed snapshot fixture version must have a
/// version-probe test referencing it.
pub fn check_fixture_coverage(root: &Path) -> Report {
    let mut report = Report::new();
    let fixtures = root.join("tests").join("fixtures");
    let Ok(entries) = fs::read_dir(&fixtures) else {
        return report;
    };
    let mut versions: Vec<(u32, String)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(rest) = name.strip_prefix("snapshot_v") {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(v) = digits.parse::<u32>() {
                versions.push((v, name));
            }
        }
    }
    versions.sort();
    if versions.is_empty() {
        return report;
    }
    let mut probes = String::new();
    if let Ok(entries) = fs::read_dir(root.join("tests")) {
        let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for p in paths {
            if p.extension().and_then(|e| e.to_str()) == Some("rs") {
                if let Ok(content) = fs::read_to_string(&p) {
                    probes.push_str(&content);
                }
            }
        }
    }
    for (v, name) in versions {
        if !probes.contains(&format!("snapshot_v{v}")) {
            report.push(
                Diagnostic::error(
                    "PA208",
                    format!("tests/fixtures/{name}"),
                    format!("committed snapshot fixture version {v} has no version-probe test"),
                )
                .with_help(
                    "add a test under tests/ that loads the fixture and asserts the \
                     unsupported-version rejection (or round-trip); every committed format \
                     must stay covered",
                ),
            );
        }
    }
    report
}

// ---------------------------------------------------------------------------
// PA201 / PA204 — unordered collections.

/// An unordered-iteration site and what its downstream chain looks like.
struct IterationSite {
    /// 1-based line of the iteration.
    line: usize,
    /// The chain imposes an order (sort / ordered collect) or is
    /// order-insensitive (count/max/…).
    sanctioned: bool,
    /// The chain reduces floats order-sensitively (`sum`/`fold`/…).
    float_reduction: bool,
}

/// Names bound to `HashMap`/`HashSet` values in this file: local `let`s,
/// struct fields, and fn parameters. No scoping — a name is unordered
/// file-wide (documented blind spot; collisions over-approximate).
fn unordered_names(pf: &ParsedFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for k in 0..pf.code_len() {
        let t = pf.ct(k);
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        let s = statement_start(pf, k);
        if let Some(binder) = binder_of_statement(pf, s) {
            names.insert(binder);
        }
    }
    names
}

/// Walks back from code position `k` to the start of its statement
/// (position after the previous `;`/`,`, or after an enclosing opening
/// bracket). Jumps over complete bracket groups.
fn statement_start(pf: &ParsedFile, k: usize) -> usize {
    let mut j = k;
    while j > 0 {
        let t = pf.ct(j - 1);
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" | "," => return j,
                ")" | "]" | "}" => match pf.partner[j - 1] {
                    Some(open) => {
                        j = open;
                        continue;
                    }
                    None => return j,
                },
                "{" | "(" | "[" => {
                    // An opening bracket we did not jump into from its
                    // partner: it encloses `k`.
                    return j;
                }
                _ => {}
            }
        }
        j -= 1;
    }
    0
}

/// The name a statement starting at code position `s` binds: `let [mut] N`
/// / `[pub] N:` / `N =`. `None` when the statement has no simple binder.
fn binder_of_statement(pf: &ParsedFile, s: usize) -> Option<String> {
    let mut i = s;
    while i < pf.code_len()
        && (pf.ct(i).is_ident("pub") || pf.ct(i).is_ident("let") || pf.ct(i).is_ident("mut"))
    {
        i += 1;
    }
    if i + 1 >= pf.code_len() || pf.ct(i).kind != TokKind::Ident {
        return None;
    }
    let next = pf.ct(i + 1);
    if next.is_punct(":") || next.is_punct("=") {
        Some(pf.ct(i).text.clone())
    } else {
        None
    }
}

/// If code position `k` begins an unordered-iteration site (an
/// [`ITER_METHODS`] call on a known unordered receiver, or a `for … in`
/// over one), classifies its downstream chain.
fn iteration_site(
    pf: &ParsedFile,
    k: usize,
    unordered: &BTreeSet<String>,
) -> Option<IterationSite> {
    let t = pf.ct(k);
    let n = pf.code_len();
    // Method form: `recv.iter()`-style.
    if t.kind == TokKind::Ident
        && ITER_METHODS.contains(&t.text.as_str())
        && k >= 2
        && pf.ct(k - 1).is_punct(".")
        && k + 1 < n
        && pf.ct(k + 1).is_punct("(")
        && pf.ct(k - 2).kind == TokKind::Ident
        && unordered.contains(&pf.ct(k - 2).text)
    {
        let (sanctioned, float_reduction) = classify_chain(pf, k, unordered);
        return Some(IterationSite { line: t.line, sanctioned, float_reduction });
    }
    // Loop form: `for pat in expr {`.
    if t.is_ident("for") {
        let base = pf.depth[k];
        let mut j = k + 1;
        let mut in_pos = None;
        while j < n && pf.depth[j] >= base {
            if pf.depth[j] == base && pf.ct(j).is_ident("in") {
                in_pos = Some(j);
                break;
            }
            if pf.depth[j] == base && pf.ct(j).is_punct("{") {
                break;
            }
            j += 1;
        }
        let in_pos = in_pos?;
        let mut body_open = None;
        let mut expr_unordered = false;
        let mut expr_sorted = false;
        let mut j = in_pos + 1;
        while j < n {
            if pf.depth[j] == base && pf.ct(j).is_punct("{") {
                body_open = Some(j);
                break;
            }
            let e = pf.ct(j);
            if e.kind == TokKind::Ident && unordered.contains(&e.text) {
                expr_unordered = true;
            }
            if e.kind == TokKind::Ident && SORT_METHODS.contains(&e.text.as_str()) {
                expr_sorted = true;
            }
            j += 1;
        }
        if !expr_unordered {
            return None;
        }
        let body_open = body_open?;
        let body_close = pf.partner[body_open]?;
        // Float accumulation inside the body → PA204.
        let mut float_reduction = false;
        let mut has_acc = false;
        let mut has_float = false;
        for b in body_open + 1..body_close {
            let bt = pf.ct(b);
            if bt.is_punct("+=") || bt.is_punct("*=") || bt.is_punct("-=") {
                has_acc = true;
            }
            if bt.kind == TokKind::Float || bt.is_ident("f64") || bt.is_ident("f32") {
                has_float = true;
            }
        }
        if has_acc && has_float {
            float_reduction = true;
        }
        return Some(IterationSite { line: t.line, sanctioned: expr_sorted, float_reduction });
    }
    None
}

/// Classifies the method chain downstream of an iteration at `k`:
/// `(sanctioned, float_reduction)`.
fn classify_chain(pf: &ParsedFile, k: usize, _unordered: &BTreeSet<String>) -> (bool, bool) {
    let n = pf.code_len();
    let base = pf.depth[k];
    let mut idents: Vec<String> = Vec::new();
    let mut has_float_hint = false;
    let mut has_collect = false;
    let mut j = k;
    while j < n {
        let t = pf.ct(j);
        if pf.depth[j] < base {
            break;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" => break,
                "," if pf.depth[j] == base => break,
                "(" | "[" => {
                    // Closure args / index expressions are part of the
                    // chain for hint purposes.
                    if let Some(close) = pf.partner[j] {
                        for p in j + 1..close {
                            let it = pf.ct(p);
                            if it.kind == TokKind::Float || it.is_ident("f64") || it.is_ident("f32")
                            {
                                has_float_hint = true;
                            }
                            if it.kind == TokKind::Ident {
                                idents.push(it.text.clone());
                            }
                        }
                        j = close + 1;
                        continue;
                    }
                    break;
                }
                ")" | "]" | "}" => break,
                _ => {}
            }
        }
        if t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32") {
            has_float_hint = true;
        }
        if t.kind == TokKind::Ident {
            if t.text == "collect" {
                has_collect = true;
            }
            idents.push(t.text.clone());
        }
        j += 1;
    }
    let chain_end = j;
    let mut sanctioned = idents.iter().any(|i| {
        SORT_METHODS.contains(&i.as_str())
            || ORDERED_SINK_TYPES.contains(&i.as_str())
            || ORDER_FREE_TERMINALS.contains(&i.as_str())
    });
    let float_reduction = idents.iter().any(|i| REDUCERS.contains(&i.as_str())) && has_float_hint;
    // `let v = …collect::<Vec<_>>()` followed by a later `v.sort…()` in the
    // same function is sanctioned.
    if !sanctioned && has_collect {
        let s = statement_start(pf, k);
        if let Some(binder) = binder_of_statement(pf, s) {
            if let Some(f) = pf.enclosing_fn(k) {
                if let Some((_, body_end)) = f.body {
                    let mut p = chain_end;
                    while p + 2 < body_end {
                        if pf.ct(p).is_ident(&binder)
                            && pf.ct(p + 1).is_punct(".")
                            && SORT_METHODS.contains(&pf.ct(p + 2).text.as_str())
                        {
                            sanctioned = true;
                            break;
                        }
                        p += 1;
                    }
                }
            }
        }
    }
    (sanctioned, float_reduction)
}

/// `true` when function `f` produces ordered output (name hint or body
/// writes).
fn is_output_fn(pf: &ParsedFile, f: &crate::ast::FnInfo) -> bool {
    let lname = f.name.to_lowercase();
    if OUTPUT_NAME_HINTS.iter().any(|h| lname.contains(h)) {
        return true;
    }
    let Some((start, end)) = f.body else {
        return false;
    };
    (start..end).any(|k| {
        let t = pf.ct(k);
        t.kind == TokKind::Ident && OUTPUT_BODY_HINTS.contains(&t.text.as_str())
    })
}

/// PA201 + PA204 over one file.
fn check_unordered_iteration(
    pf: &ParsedFile,
    unordered: &BTreeSet<String>,
    report: &mut Report,
    seen: &mut BTreeSet<(&'static str, usize)>,
) {
    if unordered.is_empty() {
        return;
    }
    for k in 0..pf.code_len() {
        if pf.in_test(pf.ct(k).line) {
            continue;
        }
        let Some(site) = iteration_site(pf, k, unordered) else {
            continue;
        };
        let loc = format!("{}:{}", pf.label, site.line);
        if site.float_reduction
            && !pf.allowed(site.line, "PA204")
            && seen.insert(("PA204", site.line))
        {
            report.push(
                Diagnostic::error(
                    "PA204",
                    loc.clone(),
                    "float reduction over an unordered collection".to_string(),
                )
                .with_help(
                    "float addition is not associative: summing HashMap/HashSet values in \
                     hash order changes low bits run-to-run; sort first or use an ordered \
                     collection (BTreeMap)",
                ),
            );
            continue;
        }
        let in_output_fn = pf.enclosing_fn(k).is_some_and(|f| is_output_fn(pf, f));
        if !site.sanctioned
            && in_output_fn
            && !pf.allowed(site.line, "PA201")
            && seen.insert(("PA201", site.line))
        {
            report.push(
                Diagnostic::error(
                    "PA201",
                    loc,
                    "unordered HashMap/HashSet iteration reaches ordered output without a sort"
                        .to_string(),
                )
                .with_help(
                    "snapshot/export bytes must not depend on hash order: iterate a BTreeMap, \
                     or collect and sort before writing",
                ),
            );
        }
    }
}

/// PA202 over one file.
fn check_wall_time(
    pf: &ParsedFile,
    report: &mut Report,
    seen: &mut BTreeSet<(&'static str, usize)>,
) {
    if is_clock_file(&pf.label) {
        return;
    }
    let n = pf.code_len();
    for k in 0..n {
        let t = pf.ct(k);
        if pf.in_test(t.line) {
            continue;
        }
        let is_instant_now = t.is_ident("Instant")
            && k + 2 < n
            && pf.ct(k + 1).is_punct("::")
            && pf.ct(k + 2).is_ident("now");
        let is_system_time = t.is_ident("SystemTime");
        if (is_instant_now || is_system_time)
            && !pf.allowed(t.line, "PA202")
            && seen.insert(("PA202", t.line))
        {
            report.push(
                Diagnostic::error(
                    "PA202",
                    format!("{}:{}", pf.label, t.line),
                    "wall-clock read outside the sanctioned Clock abstraction".to_string(),
                )
                .with_help(
                    "route time through runtime's clock seam (Clock / WallStopwatch in \
                     clock.rs): determinism-critical paths must not observe real time \
                     directly",
                ),
            );
        }
    }
}

/// PA203 over one file.
fn check_threads_and_channels(
    pf: &ParsedFile,
    report: &mut Report,
    seen: &mut BTreeSet<(&'static str, usize)>,
) {
    if is_pool_file(&pf.label) {
        return;
    }
    let n = pf.code_len();
    for k in 0..n {
        let t = pf.ct(k);
        if pf.in_test(t.line) {
            continue;
        }
        let Some(what) = is_spawn_or_recv(pf, k, n) else {
            continue;
        };
        if pf.allowed(t.line, "PA203") || !seen.insert(("PA203", t.line)) {
            continue;
        }
        let (message, help) = match what {
            ThreadUse::Spawn => (
                "thread spawn outside the shard worker pool",
                "shard/pool.rs is the one sanctioned parallelism site (results merged in \
                 fixed shard-index order); ad-hoc threads make scheduling observable",
            ),
            ThreadUse::Recv => (
                "channel receive merges results in completion order",
                "receiving in arrival order makes the merge depend on thread scheduling; \
                 join handles (or index results) in fixed shard order instead",
            ),
        };
        report.push(
            Diagnostic::error("PA203", format!("{}:{}", pf.label, t.line), message.to_string())
                .with_help(help),
        );
    }
}

/// What kind of scheduling-sensitive construct sits at `k`, if any.
enum ThreadUse {
    Spawn,
    Recv,
}

fn is_spawn_or_recv(pf: &ParsedFile, k: usize, end: usize) -> Option<ThreadUse> {
    let t = pf.ct(k);
    if t.is_ident("thread")
        && k + 2 < end
        && pf.ct(k + 1).is_punct("::")
        && (pf.ct(k + 2).is_ident("spawn")
            || pf.ct(k + 2).is_ident("scope")
            || pf.ct(k + 2).is_ident("Builder"))
    {
        return Some(ThreadUse::Spawn);
    }
    if t.is_ident("spawn") && k >= 1 && pf.ct(k - 1).is_punct(".") {
        return Some(ThreadUse::Spawn);
    }
    if (t.is_ident("recv") || t.is_ident("try_recv") || t.is_ident("recv_timeout"))
        && k >= 1
        && pf.ct(k - 1).is_punct(".")
        && k + 1 < end
        && pf.ct(k + 1).is_punct("(")
    {
        return Some(ThreadUse::Recv);
    }
    None
}

/// PA205 over one billing/ledger file.
fn check_lossy_casts(
    pf: &ParsedFile,
    report: &mut Report,
    seen: &mut BTreeSet<(&'static str, usize)>,
) {
    const NARROW: &[&str] = &["f32", "i8", "u8", "i16", "u16", "i32", "u32"];
    const WIDE_INT: &[&str] = &["usize", "u64", "i64", "isize", "u128", "i128"];
    const FLOAT_PRODUCERS: &[&str] = &["ceil", "floor", "round", "trunc", "f64", "f32"];
    let n = pf.code_len();
    for k in 0..n {
        let t = pf.ct(k);
        if !t.is_ident("as") || k + 1 >= n || pf.ct(k + 1).kind != TokKind::Ident {
            continue;
        }
        if pf.in_test(t.line) {
            continue;
        }
        let target = pf.ct(k + 1).text.as_str();
        let lossy = if NARROW.contains(&target) {
            true
        } else if WIDE_INT.contains(&target) {
            // Float → integer truncates (and saturates on NaN/∞): only
            // lossy when the operand is visibly floating-point.
            let mut j = k;
            let mut found = false;
            while j > 0 {
                j -= 1;
                let p = pf.ct(j);
                if p.kind == TokKind::Punct {
                    match p.text.as_str() {
                        ")" | "]" => {
                            if let Some(open) = pf.partner[j] {
                                if (open..=j).any(|q| {
                                    let it = pf.ct(q);
                                    it.kind == TokKind::Float
                                        || (it.kind == TokKind::Ident
                                            && FLOAT_PRODUCERS.contains(&it.text.as_str()))
                                }) {
                                    found = true;
                                    break;
                                }
                                j = open;
                                continue;
                            }
                            break;
                        }
                        "(" | "[" | "{" | "}" | ";" | "," | "=" | "==" | "&&" | "||" => break,
                        _ => continue,
                    }
                }
                if p.kind == TokKind::Float
                    || (p.kind == TokKind::Ident && FLOAT_PRODUCERS.contains(&p.text.as_str()))
                {
                    found = true;
                    break;
                }
                if p.kind == TokKind::Ident
                    && matches!(p.text.as_str(), "let" | "return" | "if" | "while" | "match")
                {
                    break;
                }
            }
            found
        } else {
            false
        };
        if lossy && !pf.allowed(t.line, "PA205") && seen.insert(("PA205", t.line)) {
            report.push(
                Diagnostic::warning(
                    "PA205",
                    format!("{}:{}", pf.label, t.line),
                    format!("lossy `as {target}` cast in billing/ledger arithmetic"),
                )
                .with_help(
                    "billing math must not silently truncate or saturate: widen the type, \
                     use a checked conversion, or `allow` with a written bound argument",
                ),
            );
        }
    }
}

/// PA206 over one file: a `let`-bound lock guard alive across a solve call.
fn check_locks_across_solves(
    pf: &ParsedFile,
    report: &mut Report,
    seen: &mut BTreeSet<(&'static str, usize)>,
) {
    for f in &pf.fns {
        if f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else {
            continue;
        };
        for k in start..end {
            let t = pf.ct(k);
            // `… .lock()` / `.read()` / `.write()` with empty parens.
            let is_guard_call = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                && k >= 1
                && pf.ct(k - 1).is_punct(".")
                && k + 2 < end
                && pf.ct(k + 1).is_punct("(")
                && pf.ct(k + 2).is_punct(")");
            if !is_guard_call {
                continue;
            }
            let s = statement_start(pf, k);
            // Only a let-bound guard outlives its statement.
            if !pf.ct(s).is_ident("let") {
                continue;
            }
            let Some(guard) = binder_of_statement(pf, s) else {
                continue;
            };
            // Find the end of the lock statement, then scan the rest of the
            // body for a solve call before `drop(guard)`.
            let mut j = k;
            while j < end && !pf.ct(j).is_punct(";") {
                j += 1;
            }
            let mut dropped = false;
            while j < end {
                let u = pf.ct(j);
                if u.is_ident("drop")
                    && j + 2 < end
                    && pf.ct(j + 1).is_punct("(")
                    && pf.ct(j + 2).is_ident(&guard)
                {
                    dropped = true;
                    break;
                }
                if u.kind == TokKind::Ident
                    && SOLVE_CALLS.contains(&u.text.as_str())
                    && j + 1 < end
                    && pf.ct(j + 1).is_punct("(")
                {
                    if !pf.allowed(u.line, "PA206") && seen.insert(("PA206", u.line)) {
                        report.push(
                            Diagnostic::warning(
                                "PA206",
                                format!("{}:{}", pf.label, u.line),
                                format!(
                                    "lock guard `{guard}` is held across a solve call \
                                     (`{}`)",
                                    u.text
                                ),
                            )
                            .with_help(
                                "a solve can run for the whole slot budget; holding a lock \
                                 across it serializes shards and risks deadlock — drop the \
                                 guard first",
                            ),
                        );
                    }
                    break;
                }
                j += 1;
            }
            let _ = dropped;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(label: &str, src: &str, krate: &str) -> Report {
        let pf = ParsedFile::parse(label, src, krate);
        let mut r = check_file(&pf);
        r.merge(check_taint(std::slice::from_ref(&pf)));
        r
    }

    fn codes(r: &Report) -> Vec<&'static str> {
        r.iter().map(|d| d.code).collect()
    }

    #[test]
    fn pa201_unordered_iteration_in_output_fn() {
        let src = "use std::collections::HashMap;\n\
                   fn export_metrics(m: &HashMap<String, u64>) -> String {\n\
                       let mut out = String::new();\n\
                       for (k, v) in m.iter() {\n\
                           out.push_str(k);\n\
                       }\n\
                       out\n\
                   }\n";
        // `m.iter()` inside the for-expr is the method-form site.
        assert!(codes(&lint("src/metrics.rs", src, "runtime")).contains(&"PA201"));
        // A sort in the chain sanctions it.
        let sorted = "use std::collections::HashMap;\n\
                      fn export_metrics(m: &HashMap<String, u64>) -> String {\n\
                          let mut keys: Vec<_> = m.keys().collect();\n\
                          keys.sort();\n\
                          String::new()\n\
                      }\n";
        assert!(lint("src/metrics.rs", sorted, "runtime").is_empty());
        // Same iteration in a non-output function stays silent (PA201's
        // scope is ordered output; PA207 covers the call-graph hop).
        let compute = "use std::collections::HashMap;\n\
                       fn lookup(m: &HashMap<u32, u32>) -> usize {\n\
                           m.iter().count()\n\
                       }\n";
        assert!(lint("src/lib.rs", compute, "runtime").is_empty());
    }

    #[test]
    fn pa202_wall_time_outside_clock() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(codes(&lint("src/runtime.rs", src, "runtime")), vec!["PA202"]);
        // Sanctioned in clock.rs.
        assert!(lint("crates/runtime/src/clock.rs", src, "runtime").is_empty());
        // Not a determinism crate → silent.
        assert!(lint("src/main.rs", src, "bench").is_empty());
        // SystemTime anywhere.
        let st = "fn f() { let t = SystemTime::now(); }\n";
        assert_eq!(codes(&lint("src/x.rs", st, "net")), vec!["PA202"]);
    }

    #[test]
    fn pa203_threads_and_channels() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(codes(&lint("src/x.rs", spawn, "runtime")), vec!["PA203"]);
        assert!(lint("crates/runtime/src/shard/pool.rs", spawn, "runtime").is_empty());
        let recv = "fn merge_results(rx: Receiver<u8>) { while let Ok(r) = rx.recv() { } }\n";
        assert_eq!(codes(&lint("src/x.rs", recv, "runtime")), vec!["PA203"]);
    }

    #[test]
    fn pa204_float_reduction_over_unordered() {
        let src = "use std::collections::HashMap;\n\
                   fn total(m: &HashMap<u32, f64>) -> f64 {\n\
                       m.values().sum::<f64>()\n\
                   }\n";
        assert_eq!(codes(&lint("src/x.rs", src, "net")), vec!["PA204"]);
        // Vec iteration is ordered: no finding.
        let vec_src = "fn total(v: &Vec<f64>) -> f64 { v.iter().sum::<f64>() }\n";
        assert!(lint("src/x.rs", vec_src, "net").is_empty());
    }

    #[test]
    fn pa205_lossy_casts_in_billing_files() {
        let src =
            "fn rank(q: f64, n: usize) -> usize { ((q / 100.0) * n as f64).ceil() as usize }\n";
        assert_eq!(codes(&lint("src/charging.rs", src, "net")), vec!["PA205"]);
        // Same file name matters: non-billing files are out of scope.
        assert!(lint("src/paths.rs", src, "net").is_empty());
        // Integer widening is not lossy.
        let ok = "fn len_u64(v: &[u8]) -> u64 { v.len() as u64 }\n";
        assert!(lint("src/ledger.rs", ok, "net").is_empty());
        // Narrowing targets always flag.
        let narrow = "fn squeeze(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(codes(&lint("src/ledger.rs", narrow, "net")), vec!["PA205"]);
    }

    #[test]
    fn pa206_lock_across_solve() {
        let src = "fn run(m: &Mutex<u8>) {\n\
                       let guard = m.lock();\n\
                       solve(x);\n\
                   }\n";
        assert_eq!(codes(&lint("src/x.rs", src, "runtime")), vec!["PA206"]);
        let dropped = "fn run(m: &Mutex<u8>) {\n\
                           let guard = m.lock();\n\
                           drop(guard);\n\
                           solve(x);\n\
                       }\n";
        assert!(lint("src/x.rs", dropped, "runtime").is_empty());
        // A temporary guard does not outlive its statement.
        let temp = "fn run(m: &Mutex<u8>) {\n\
                        m.lock();\n\
                        solve(x);\n\
                    }\n";
        assert!(lint("src/x.rs", temp, "runtime").is_empty());
    }

    #[test]
    fn pa207_taint_one_hop_into_snapshot_writer() {
        let src = "fn stamp() -> u64 { Instant::now(); 0 }\n\
                   fn write_snapshot(out: &mut String) {\n\
                       let t = stamp();\n\
                   }\n";
        let r = lint("src/x.rs", src, "runtime");
        // The source itself is PA202; the hop into the writer is PA207.
        assert!(codes(&r).contains(&"PA202"));
        assert!(codes(&r).contains(&"PA207"));
    }

    #[test]
    fn pa208_uncovered_fixture_version() {
        let dir = std::env::temp_dir().join(format!("pa208_test_{}", std::process::id()));
        let fixtures = dir.join("tests").join("fixtures");
        std::fs::create_dir_all(&fixtures).unwrap();
        std::fs::write(fixtures.join("snapshot_v3.json"), "{}").unwrap();
        std::fs::write(fixtures.join("snapshot_v4.json"), "{}").unwrap();
        std::fs::write(
            dir.join("tests").join("probe.rs"),
            "// loads snapshot_v3 only\nconst P: &str = \"snapshot_v3.json\";\n",
        )
        .unwrap();
        let r = check_fixture_coverage(&dir);
        assert_eq!(codes(&r), vec!["PA208"]);
        assert!(r.iter().next().unwrap().location.contains("snapshot_v4"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suppressions_silence_pa2xx() {
        let src = "fn f() {\n\
                       // postcard-analyze: allow(PA202) — metrics only\n\
                       let t = Instant::now();\n\
                   }\n";
        assert!(lint("src/x.rs", src, "runtime").is_empty());
    }
}
