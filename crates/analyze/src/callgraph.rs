//! A lightweight call graph over the parsed workspace.
//!
//! Resolution is *by simple name*: a call site `foo(…)` / `x.foo(…)` /
//! `Path::foo(…)` is an edge to every workspace function named `foo`.
//! That over-approximates (two crates may each define a `merge`) and
//! under-approximates (closures, function pointers, and trait dispatch are
//! invisible), which is exactly the right trade for a lint: the taint pass
//! (PA207) walks only one hop and reports at warning level, so an
//! ambiguous edge costs a reviewer a glance, not a broken build. The blind
//! spots are documented in DESIGN's static-analysis section.

use crate::ast::{FnInfo, ParsedFile};
use std::collections::BTreeMap;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee's simple name.
    pub callee: String,
    /// 1-based line of the call.
    pub line: usize,
}

/// Identifiers that look like calls but are control flow or bindings.
const NON_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "in", "as", "where",
    "unsafe", "else",
];

/// Collects the call sites of `f` (identifier directly followed by `(`,
/// excluding macro invocations `name!(…)` and control-flow keywords).
pub fn callees(pf: &ParsedFile, f: &FnInfo) -> Vec<CallSite> {
    let Some((start, end)) = f.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for k in start..end {
        let t = pf.ct(k);
        if t.kind != crate::lexer::TokKind::Ident || NON_CALLEES.contains(&t.text.as_str()) {
            continue;
        }
        if k + 1 >= end || !pf.ct(k + 1).is_punct("(") {
            continue;
        }
        // `name!(…)` is a macro; the bang sits between name and parens, so
        // `k + 1` being `(` already excludes it — but exclude `name!(` with
        // the bang adjacent on the *left* of `(` anyway for clarity.
        out.push(CallSite { callee: t.text.clone(), line: t.line });
    }
    out
}

/// The workspace call graph: every named function, with by-name resolution.
#[derive(Debug)]
pub struct CallGraph {
    /// `(file index, fn index)` for every function, in scan order.
    pub fns: Vec<(usize, usize)>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over a set of parsed files.
    pub fn build(files: &[ParsedFile]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, pf) in files.iter().enumerate() {
            for (gi, f) in pf.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push(fns.len());
                fns.push((fi, gi));
            }
        }
        Self { fns, by_name }
    }

    /// Graph node ids of every function with this simple name.
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callees_skip_keywords_and_macros() {
        let pf = ParsedFile::parse(
            "t.rs",
            "fn f() {\n    if cond() { helper(x); }\n    for i in items(0) {}\n    write!(w, \"x\");\n    s.method(1);\n}\n",
            "runtime",
        );
        let sites = callees(&pf, &pf.fns[0]);
        let names: Vec<&str> = sites.iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&"cond"));
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"items"));
        assert!(names.contains(&"method"));
        assert!(!names.contains(&"write"));
        assert!(!names.contains(&"if"));
        assert!(!names.contains(&"for"));
    }

    #[test]
    fn graph_resolves_by_simple_name_across_files() {
        let a = ParsedFile::parse("a.rs", "fn shared() {}\nfn only_a() {}\n", "runtime");
        let b = ParsedFile::parse("b.rs", "fn shared() {}\n", "net");
        let g = CallGraph::build(&[a, b]);
        assert_eq!(g.resolve("shared").len(), 2);
        assert_eq!(g.resolve("only_a").len(), 1);
        assert!(g.resolve("absent").is_empty());
    }
}
