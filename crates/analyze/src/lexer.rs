//! A hand-rolled Rust lexer for the source front.
//!
//! The offline build container rules out `syn`/`proc-macro2`, so the
//! analyzer lexes the workspace's own `.rs` files with `std` alone. The
//! output is a flat, line-stamped token stream that the [`crate::ast`]
//! layer turns into token trees, items, and suppression tables.
//!
//! Fidelity targets (everything the lints need, nothing more):
//!
//! * comments survive as [`TokKind::Comment`] tokens (suppression
//!   directives live there); string/char literal *contents* are dropped so
//!   no lint can ever fire on text inside a literal;
//! * multi-char operators (`==`, `::`, `->`, `+=`, …) are glued into one
//!   punct token so downstream pattern matching is unambiguous;
//! * numeric literals are classified `Int` vs `Float` with rustc's rules
//!   for the awkward cases (`1.max(2)` is an int method call, `pair.0` is
//!   tuple indexing, `0x1e` is hex, `1e9` and `2.` and `1_000.5f32` are
//!   floats, a `f32`/`f64` suffix floats an otherwise-integer literal);
//! * lifetimes are distinguished from char literals with lookahead.
//!
//! The lexer is total: bytes it does not understand become one-char punct
//! tokens, so a pathological file degrades to weaker linting, never a
//! panic.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `r#match` → `match`).
    Ident,
    /// A lifetime (`'a`, `'static`) — text excludes the quote.
    Lifetime,
    /// An integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2.`, `1e-9`, `3f64`).
    Float,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`); contents blanked.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`); contents blanked.
    Char,
    /// Punctuation; multi-char operators are glued (`==`, `::`, `=>` …).
    Punct,
    /// A `//…` or `/*…*/` comment, full text preserved.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is preserved vs blanked).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// `true` when this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` when this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// Multi-char operators, longest first so gluing is greedy.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
];

/// Lexes `src` into a token stream. Never fails; see the module docs for
/// the degradation contract.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Comment,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Token {
                kind: TokKind::Comment,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings r"…" / r#"…"# and raw byte strings br#"…"#.
        if (c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')))
            && raw_string_open(&chars, i + usize::from(c == 'b'))
        {
            let probe = i + usize::from(c == 'b') + 1;
            let mut hashes = 0usize;
            let mut j = probe;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // `raw_string_open` guaranteed a quote here.
            j += 1;
            // Scan to the closing quote followed by `hashes` hashes.
            let start_line = line;
            while j < n {
                if chars[j] == '\n' {
                    line += 1;
                } else if chars[j] == '"' && (0..hashes).all(|k| chars.get(j + 1 + k) == Some(&'#'))
                {
                    j += 1 + hashes;
                    break;
                }
                j += 1;
            }
            toks.push(Token { kind: TokKind::Str, text: String::new(), line: start_line });
            i = j;
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let start_line = line;
            let mut j = i + if c == 'b' { 2 } else { 1 };
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Token { kind: TokKind::Str, text: String::new(), line: start_line });
            i = j;
            continue;
        }
        // Char literal vs lifetime (also byte chars b'x').
        if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'')) {
            let q = if c == 'b' { i + 1 } else { i };
            match char_literal_end(&chars, q) {
                Some(end) => {
                    toks.push(Token { kind: TokKind::Char, text: String::new(), line });
                    i = end;
                    continue;
                }
                None if c == '\'' => {
                    // A lifetime: consume the identifier after the quote.
                    let mut j = i + 1;
                    while j < n && is_ident_cont(chars[j]) {
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        text: chars[i + 1..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
                None => {
                    // `b` not followed by a valid byte char: fall through to
                    // the identifier path below.
                }
            }
        }
        // Identifiers / keywords (including raw identifiers r#name).
        if is_ident_start(c) {
            let mut j = i;
            if c == 'r'
                && chars.get(i + 1) == Some(&'#')
                && chars.get(i + 2).is_some_and(|&c| is_ident_start(c))
            {
                j = i + 2;
            }
            let word_start = j;
            while j < n && is_ident_cont(chars[j]) {
                j += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: chars[word_start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Numeric literals.
        if c.is_ascii_digit() {
            let (tok, next) = lex_number(&chars, i, line);
            toks.push(tok);
            i = next;
            continue;
        }
        // Punctuation: glue multi-char operators greedily.
        let mut glued = false;
        for op in MULTI_PUNCT {
            let oc: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&oc) {
                toks.push(Token { kind: TokKind::Punct, text: (*op).to_string(), line });
                i += oc.len();
                glued = true;
                break;
            }
        }
        if !glued {
            toks.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
            i += 1;
        }
    }
    toks
}

/// `true` when `chars[i]` begins `r"…"` / `r#"…"#` (with `i` at the `r`).
fn raw_string_open(chars: &[char], i: usize) -> bool {
    if chars.get(i) != Some(&'r') {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    j > i && chars.get(j) == Some(&'"')
}

/// If `chars[q]` opens a char/byte literal, returns the index one past its
/// closing quote; `None` means it is a lifetime (or stray quote).
fn char_literal_end(chars: &[char], q: usize) -> Option<usize> {
    match chars.get(q + 1) {
        Some('\\') => {
            // Escaped char: scan (bounded) for the closing quote.
            let mut j = q + 2;
            let limit = (q + 12).min(chars.len());
            while j < limit {
                if chars[j] == '\'' {
                    return Some(j + 1);
                }
                j += 1;
            }
            None
        }
        Some(c) if *c != '\'' => {
            if chars.get(q + 2) == Some(&'\'') {
                Some(q + 3)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Lexes the numeric literal starting at `chars[i]` (an ASCII digit).
fn lex_number(chars: &[char], i: usize, line: usize) -> (Token, usize) {
    let n = chars.len();
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';
    let start = i;
    let mut j = i;
    // Hex / octal / binary: always integers.
    if chars[i] == '0' && matches!(chars.get(i + 1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B')) {
        j = i + 2;
        while j < n && is_ident_cont(chars[j]) {
            j += 1;
        }
        return (Token { kind: TokKind::Int, text: chars[start..j].iter().collect(), line }, j);
    }
    let mut float = false;
    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: a dot NOT followed by an identifier character or a
    // second dot — `1.max(2)` and `pair.0` and `0..n` stay integers.
    if j < n && chars[j] == '.' {
        let after = chars.get(j + 1).copied();
        let is_frac = match after {
            Some(c) if c.is_ascii_digit() => true,
            Some(c) if c.is_alphabetic() || c == '_' || c == '.' => false,
            _ => true, // trailing-dot float like `2.`
        };
        if is_frac {
            float = true;
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < n && (chars[j] == 'e' || chars[j] == 'E') {
        let mut k = j + 1;
        if matches!(chars.get(k), Some('+' | '-')) {
            k += 1;
        }
        let digits_start = k;
        while k < n && chars[k].is_ascii_digit() {
            k += 1;
        }
        if k > digits_start
            && !chars.get(k).copied().is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            float = true;
            j = k;
        }
    }
    // Type suffix (`u64`, `f32` …): an `f` suffix floats the literal.
    if j < n && chars[j].is_alphabetic() {
        let suffix_start = j;
        while j < n && is_ident_cont(chars[j]) {
            j += 1;
        }
        if chars[suffix_start] == 'f' {
            float = true;
        }
    }
    let kind = if float { TokKind::Float } else { TokKind::Int };
    (Token { kind, text: chars[start..j].iter().collect(), line }, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn numbers_classify_like_rustc() {
        assert_eq!(kinds("1.0")[0].0, TokKind::Float);
        assert_eq!(kinds("2.")[0].0, TokKind::Float);
        assert_eq!(kinds("1e-9")[0].0, TokKind::Float);
        assert_eq!(kinds("3f64")[0].0, TokKind::Float);
        assert_eq!(kinds("1_000.5f32")[0].0, TokKind::Float);
        assert_eq!(kinds("42")[0].0, TokKind::Int);
        assert_eq!(kinds("0x1e")[0].0, TokKind::Int);
        assert_eq!(kinds("7u64")[0].0, TokKind::Int);
        // `1.max(2)` — integer, dot, method.
        let t = kinds("1.max(2)");
        assert_eq!(t[0], (TokKind::Int, "1".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[2], (TokKind::Ident, "max".into()));
        // Tuple indexing keeps the field an Int.
        let t = kinds("pair.0");
        assert_eq!(t[2], (TokKind::Int, "0".into()));
        // Ranges stay integers.
        let t = kinds("0..n");
        assert_eq!(t[0], (TokKind::Int, "0".into()));
        assert_eq!(t[1], (TokKind::Punct, "..".into()));
    }

    #[test]
    fn strings_and_chars_blank_contents() {
        let t = kinds("let s = \"x == 1.0 .unwrap()\";");
        assert!(t.iter().all(|(k, _)| *k != TokKind::Float));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
        let t = kinds("let c = '\"'; let l: &'a str = s;");
        assert!(t.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "a"));
        let t = kinds("r#\"a == 1.0\"# b\"bytes\" b'x'");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn multiline_strings_track_lines() {
        let toks = lex("let a = \"line\none\";\nlet b = 1;\n");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comments_preserved_with_lines() {
        let toks =
            lex("let a = 1; // postcard-analyze: allow(PA101)\n/* block\nspan */ let b = 2;\n");
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("allow(PA101)"));
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still */ let x = 1;\n");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Comment).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn operators_glue() {
        let t = kinds("a == b != c :: d -> e => f += 1 ..= 2");
        let puncts: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, s)| s.as_str()).collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "=>", "+=", "..="]);
    }

    #[test]
    fn raw_identifiers_and_keywords() {
        let t = kinds("r#match fn r#fn");
        assert_eq!(t[0], (TokKind::Ident, "match".into()));
        assert_eq!(t[1], (TokKind::Ident, "fn".into()));
        assert_eq!(t[2], (TokKind::Ident, "fn".into()));
    }

    #[test]
    fn lifetimes_in_generics_are_not_chars() {
        let t = kinds("fn f<'a, 'b>(x: &'a str, y: &'b u8) {}");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 4);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 0);
    }

    #[test]
    fn lexer_is_total_on_garbage() {
        // Unknown bytes degrade to one-char puncts, never a panic.
        let toks = lex("§ @ ` \u{3bb} #!/bin/sh");
        assert!(!toks.is_empty());
    }
}
