//! `postcard-analyze` — standalone binary for the two analysis fronts.
//!
//! ```text
//! postcard-analyze src [--deny] [--json] [ROOT]   lint workspace sources
//! postcard-analyze model --fixtures [--json]      self-check the model passes
//! ```
//!
//! `src` exits nonzero only when `--deny` is given and findings exist (CI
//! runs it with `--deny`). `model --fixtures` exits nonzero unless every
//! malformed fixture is flagged with its documented code and the clean
//! builder-produced problem passes.

use postcard_analyze::fixtures::run_fixtures;
use postcard_analyze::srclint::check_workspace_with_stats;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let flag = |name: &str| args.iter().any(|a| a == name);
    match mode {
        Some("src") => {
            let root = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."));
            let started = Instant::now();
            let (report, files) = check_workspace_with_stats(&root);
            let elapsed = started.elapsed();
            eprintln!("postcard-analyze: scanned {files} file(s) in {}ms", elapsed.as_millis());
            if flag("--json") {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if flag("--deny") && !report.is_empty() {
                eprintln!("postcard-analyze: denying {} finding(s)", report.len());
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("model") => {
            if !flag("--fixtures") {
                eprintln!(
                    "postcard-analyze model: only `--fixtures` mode is available standalone; \
                     use `postcard analyze model` (the main CLI) to check scenario models"
                );
                return ExitCode::FAILURE;
            }
            let mut failed = 0usize;
            for outcome in run_fixtures() {
                let verdict = if outcome.passed() { "ok" } else { "FAILED" };
                match outcome.expected {
                    Some(code) => {
                        println!("fixture {:<32} expect {code:<6} {verdict}", outcome.name)
                    }
                    None => println!("fixture {:<32} expect clean  {verdict}", outcome.name),
                }
                if flag("--json") {
                    print!("{}", outcome.report.render_json());
                }
                if !outcome.passed() {
                    failed += 1;
                    eprint!("{}", outcome.report.render_text());
                }
            }
            if failed > 0 {
                eprintln!("postcard-analyze: {failed} fixture(s) failed");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: postcard-analyze src [--deny] [--json] [ROOT]\n       \
                 postcard-analyze model --fixtures [--json]"
            );
            ExitCode::FAILURE
        }
    }
}
