//! Pre-solve static analysis for Postcard.
//!
//! Two fronts share one diagnostic engine ([`diag`]):
//!
//! * **Model analysis** ([`model`]) — structural checks on LP models,
//!   time-expanded graphs, and assembled [`postcard_core::PostcardProblem`]s
//!   that catch malformed formulations *without solving*: deadline-window
//!   violations (PA001), broken graph structure (PA002/PA003), degenerate
//!   rows and columns (PA004–PA008), and poor conditioning (PA009).
//! * **Source lint** ([`srclint`]) — a self-contained analyzer over the
//!   workspace's own `.rs` files, built on a hand-rolled lexer ([`lexer`]),
//!   bracket-matched token trees with per-file item tables ([`ast`]), and a
//!   simple-name call graph ([`callgraph`]). It enforces numerics and
//!   error-handling hygiene (PA101–PA105) plus the determinism &
//!   concurrency family ([`determinism`], PA201–PA208) guarding PR 7's
//!   byte-identical sharded-reconciliation invariant.
//!
//! Every code is documented in `crates/analyze/LINTS.md`. The `postcard
//! analyze` CLI subcommand and the `postcard-analyze` binary expose both
//! fronts; `postcard-runtime` calls [`model::check_problem`] before each
//! solve when strict analysis is enabled.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod callgraph;
pub mod determinism;
pub mod diag;
pub mod fixtures;
pub mod lexer;
pub mod model;
pub mod srclint;

pub use diag::{Diagnostic, Level, Report};
pub use model::{check_graph, check_model, check_problem, CONDITIONING_RATIO_LIMIT};
pub use srclint::{check_source, check_workspace, check_workspace_with_stats};
