//! Token trees, items, and suppression tables over the [`crate::lexer`]
//! stream.
//!
//! The analyzer does not build a real AST — the lints need far less:
//!
//! * **bracket structure**: every `(`/`[`/`{` code token knows its partner
//!   and every code token knows its nesting depth, which is what operand
//!   scans and statement-boundary walks actually consume;
//! * **items**: the `fn` items of a file with their body token ranges, so
//!   passes can attribute findings to an enclosing function and the call
//!   graph can collect callees per function;
//! * **`#[cfg(test)]` regions**: line ranges the source lints skip,
//!   mirroring the PA1xx contract that test code may unwrap/panic freely;
//! * **suppressions**: `// postcard-analyze: allow(PAxxx)` (same or next
//!   code line) and `allow-file(PAxxx)` directives, parsed from comment
//!   tokens with the exact semantics the PA1xx front has always had.

use crate::lexer::{lex, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` item of a parsed file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's simple name (no path or `impl` qualification).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body token range `[start, end)` as positions into
    /// [`ParsedFile::code`] (the tokens strictly inside the braces).
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// The function sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// A lexed and structured source file, the input to every source lint.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Diagnostic label (workspace-relative path).
    pub label: String,
    /// The crate the file belongs to (selects which lints apply).
    pub crate_name: String,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into [`Self::tokens`] of the non-comment tokens.
    pub code: Vec<usize>,
    /// For code position `k` holding a bracket, the code position of its
    /// partner bracket. Parallel to [`Self::code`].
    pub partner: Vec<Option<usize>>,
    /// Nesting depth of each code position (brackets carry the depth of
    /// the context they sit in). Parallel to [`Self::code`].
    pub depth: Vec<usize>,
    /// The file's `fn` items in source order.
    pub fns: Vec<FnInfo>,
    /// `#[cfg(test)]` line ranges (inclusive).
    test_ranges: Vec<(usize, usize)>,
    /// Suppression directives.
    suppress: Suppressions,
}

impl ParsedFile {
    /// Lexes and structures one source file.
    pub fn parse(label: &str, content: &str, crate_name: &str) -> Self {
        let tokens = lex(content);
        let code: Vec<usize> =
            (0..tokens.len()).filter(|&i| tokens[i].kind != TokKind::Comment).collect();
        let (partner, depth) = match_brackets(&tokens, &code);
        let mut pf = Self {
            label: label.to_string(),
            crate_name: crate_name.to_string(),
            tokens,
            code,
            partner,
            depth,
            fns: Vec::new(),
            test_ranges: Vec::new(),
            suppress: Suppressions::default(),
        };
        pf.test_ranges = find_test_ranges(&pf);
        pf.fns = find_fns(&pf);
        pf.suppress = Suppressions::build(&pf);
        pf
    }

    /// The code token at code position `k`.
    pub fn ct(&self, k: usize) -> &Token {
        &self.tokens[self.code[k]]
    }

    /// Number of code tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// `true` when `line` sits inside a `#[cfg(test)]` region.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// `true` when a suppression covers `code` at `line`.
    pub fn allowed(&self, line: usize, code: &str) -> bool {
        self.suppress.allowed(line, code)
    }

    /// The innermost function whose body contains code position `k`.
    pub fn enclosing_fn(&self, k: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| (s..e).contains(&k)))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }
}

/// Computes bracket partners and nesting depths over the code positions.
fn match_brackets(tokens: &[Token], code: &[usize]) -> (Vec<Option<usize>>, Vec<usize>) {
    let mut partner = vec![None; code.len()];
    let mut depth = vec![0usize; code.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (k, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        if t.kind != TokKind::Punct || t.text.len() != 1 {
            depth[k] = stack.len();
            continue;
        }
        match t.text.as_bytes()[0] {
            b'(' | b'[' | b'{' => {
                depth[k] = stack.len();
                stack.push((t.text.as_bytes()[0] as char, k));
            }
            b')' | b']' | b'}' => {
                let open = match t.text.as_bytes()[0] {
                    b')' => '(',
                    b']' => '[',
                    _ => '{',
                };
                if stack.last().is_some_and(|&(c, _)| c == open) {
                    // postcard-analyze: allow(PA102) — guarded by the
                    // `is_some_and` just above.
                    let (_, ok) = stack.pop().expect("non-empty checked");
                    partner[k] = Some(ok);
                    partner[ok] = Some(k);
                }
                depth[k] = stack.len();
            }
            _ => depth[k] = stack.len(),
        }
    }
    (partner, depth)
}

/// Finds `#[cfg(test)]` attribute regions as inclusive line ranges: from
/// the attribute through the close of the brace block (or the `;`) of the
/// item that follows it.
fn find_test_ranges(pf: &ParsedFile) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let n = pf.code_len();
    for k in 0..n {
        if !pf.ct(k).is_punct("#") || k + 1 >= n || !pf.ct(k + 1).is_punct("[") {
            continue;
        }
        let Some(close) = pf.partner[k + 1] else {
            continue;
        };
        // The attribute must be exactly `cfg(test)`.
        let inner: Vec<&Token> = (k + 2..close).map(|j| pf.ct(j)).collect();
        let is_cfg_test = inner.len() == 4
            && inner[0].is_ident("cfg")
            && inner[1].is_punct("(")
            && inner[2].is_ident("test")
            && inner[3].is_punct(")");
        if !is_cfg_test {
            continue;
        }
        let start_line = pf.ct(k).line;
        let base = pf.depth[k];
        // Scan forward for the item's body braces (or a `;` for an
        // item-less form) at the attribute's depth.
        let mut j = close + 1;
        let mut end_line = pf.ct(close).line;
        while j < n {
            let t = pf.ct(j);
            if pf.depth[j] == base && t.is_punct("{") {
                if let Some(p) = pf.partner[j] {
                    end_line = pf.ct(p).line;
                }
                break;
            }
            if pf.depth[j] == base && t.is_punct(";") {
                end_line = t.line;
                break;
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
    }
    ranges
}

/// Finds the file's `fn` items.
fn find_fns(pf: &ParsedFile) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let n = pf.code_len();
    for k in 0..n {
        if !pf.ct(k).is_ident("fn") || k + 1 >= n || pf.ct(k + 1).kind != TokKind::Ident {
            continue;
        }
        let name = pf.ct(k + 1).text.clone();
        let line = pf.ct(k).line;
        let base = pf.depth[k];
        let mut body = None;
        let mut j = k + 2;
        while j < n {
            let t = pf.ct(j);
            if pf.depth[j] == base {
                if t.is_punct("{") {
                    if let Some(p) = pf.partner[j] {
                        body = Some((j + 1, p));
                    }
                    break;
                }
                if t.is_punct(";") {
                    break;
                }
            }
            j += 1;
        }
        fns.push(FnInfo { name, line, body, is_test: pf.in_test(line) });
    }
    fns
}

/// Parsed `postcard-analyze:` suppression directives.
#[derive(Debug, Clone, Default)]
struct Suppressions {
    file_allows: BTreeSet<String>,
    line_allows: BTreeMap<usize, BTreeSet<String>>,
}

impl Suppressions {
    /// `true` when `code` is allowed at `line`.
    fn allowed(&self, line: usize, code: &str) -> bool {
        self.file_allows.contains(code)
            || self.line_allows.get(&line).is_some_and(|s| s.contains(code))
    }

    /// Builds the tables from a file's comment tokens. A trailing comment
    /// covers its own line; a standalone comment covers the next line of
    /// code, skipping the rest of a multi-line justification comment (but
    /// stopping at a fully blank line).
    fn build(pf: &ParsedFile) -> Self {
        let mut lines_with_code: BTreeSet<usize> = BTreeSet::new();
        for &i in &pf.code {
            lines_with_code.insert(pf.tokens[i].line);
        }
        let mut comment_lines: BTreeSet<usize> = BTreeSet::new();
        for t in &pf.tokens {
            if t.kind == TokKind::Comment {
                for off in 0..=t.text.matches('\n').count() {
                    comment_lines.insert(t.line + off);
                }
            }
        }
        let mut s = Self::default();
        for t in &pf.tokens {
            if t.kind != TokKind::Comment {
                continue;
            }
            for (off, piece) in t.text.split('\n').enumerate() {
                let at = t.line + off;
                for code in parse_directive(piece, "allow-file(") {
                    s.file_allows.insert(code);
                }
                let codes = parse_directive(piece, "allow(");
                if codes.is_empty() {
                    continue;
                }
                let mut target = at;
                if !lines_with_code.contains(&target) {
                    target += 1;
                    while !lines_with_code.contains(&target) && comment_lines.contains(&target) {
                        target += 1;
                    }
                }
                s.line_allows.entry(target).or_default().extend(codes);
            }
        }
        s
    }
}

/// Extracts the comma-separated codes of a `postcard-analyze: <kind>...)`
/// directive from one comment line (empty when absent).
pub fn parse_directive(comment: &str, kind: &str) -> Vec<String> {
    let Some(pos) = comment.find("postcard-analyze:") else {
        return Vec::new();
    };
    let rest = comment[pos + "postcard-analyze:".len()..].trim_start();
    let Some(args) = rest.strip_prefix(kind) else {
        return Vec::new();
    };
    let Some(end) = args.find(')') else {
        return Vec::new();
    };
    args[..end].split(',').map(|c| c.trim().to_string()).filter(|c| !c.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("t.rs", src, "lp")
    }

    #[test]
    fn brackets_match_and_depths_nest() {
        let pf = parse("fn f(a: u8) { g(h(a)); }\n");
        // `{` partners with `}`.
        let open = (0..pf.code_len()).find(|&k| pf.ct(k).is_punct("{")).unwrap();
        let close = pf.partner[open].unwrap();
        assert!(pf.ct(close).is_punct("}"));
        assert_eq!(pf.depth[open], pf.depth[close]);
        // h's args are two levels inside the body.
        let a_inner = (0..pf.code_len()).filter(|&k| pf.ct(k).is_ident("a")).max().unwrap();
        assert!(pf.depth[a_inner] > pf.depth[open]);
    }

    #[test]
    fn fns_discovered_with_bodies() {
        let src = "impl T {\n    fn one(&self) -> u8 { 1 }\n}\npub fn two() {}\ntrait Q { fn decl(&self); }\n";
        let pf = parse(src);
        let names: Vec<&str> = pf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two", "decl"]);
        assert!(pf.fns[0].body.is_some());
        assert!(pf.fns[1].body.is_some());
        assert!(pf.fns[2].body.is_none());
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn outer() {\n    fn inner() { mark(); }\n}\n";
        let pf = parse(src);
        let mark = (0..pf.code_len()).find(|&k| pf.ct(k).is_ident("mark")).unwrap();
        assert_eq!(pf.enclosing_fn(mark).unwrap().name, "inner");
    }

    #[test]
    fn cfg_test_ranges_cover_the_block() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {}\n}\nfn h() {}\n";
        let pf = parse(src);
        assert!(!pf.in_test(1));
        assert!(pf.in_test(2));
        assert!(pf.in_test(4));
        assert!(pf.in_test(5));
        assert!(!pf.in_test(6));
        assert!(pf.fns.iter().find(|f| f.name == "g").unwrap().is_test);
        assert!(!pf.fns.iter().find(|f| f.name == "h").unwrap().is_test);
    }

    #[test]
    fn other_cfg_attrs_are_not_test_ranges() {
        let pf = parse("#[cfg(feature = \"x\")]\nfn f() {}\n#[cfg(all(test, unix))]\nfn g() {}\n");
        assert!(!pf.in_test(2));
        // `cfg(all(test, …))` is not the literal `cfg(test)` — documented
        // blind spot, matching the historical line scanner.
        assert!(!pf.in_test(4));
    }

    #[test]
    fn suppressions_cover_same_and_next_line() {
        let src = "// postcard-analyze: allow(PA101)\nlet a = 1;\nlet b = 2; // postcard-analyze: allow(PA102)\nlet c = 3;\n";
        let pf = parse(src);
        assert!(pf.allowed(2, "PA101"));
        assert!(!pf.allowed(3, "PA101"));
        assert!(pf.allowed(3, "PA102"));
        assert!(!pf.allowed(4, "PA102"));
    }

    #[test]
    fn standalone_suppression_skips_multiline_justification() {
        let src = "// postcard-analyze: allow(PA103) — because\n// of reasons spanning\n// three lines\npanic!(\"x\");\n";
        let pf = parse(src);
        assert!(pf.allowed(4, "PA103"));
    }

    #[test]
    fn file_suppression_is_global() {
        let src = "// postcard-analyze: allow-file(PA101)\nlet a = 1;\nlet b = 2;\n";
        let pf = parse(src);
        assert!(pf.allowed(2, "PA101") && pf.allowed(3, "PA101"));
        assert!(!pf.allowed(2, "PA102"));
    }

    #[test]
    fn directive_parsing() {
        assert_eq!(
            parse_directive("// postcard-analyze: allow(PA101, PA102)", "allow("),
            vec!["PA101", "PA102"]
        );
        assert!(parse_directive("// postcard-analyze: allow-file(PA101)", "allow(").is_empty());
        assert_eq!(
            parse_directive("// postcard-analyze: allow-file(PA101)", "allow-file("),
            vec!["PA101"]
        );
        assert!(parse_directive("// nothing here", "allow(").is_empty());
    }
}
