//! Malformed-model fixtures exercising every model pass.
//!
//! Each fixture is a deliberately broken model/graph/problem paired with the
//! PA code that must flag it; `run_fixtures` runs all of them plus a clean
//! builder-produced problem that must pass. The CI step
//! `postcard-analyze model --fixtures` fails unless every expectation holds,
//! which keeps the analyzer honest: a pass that stops firing on its own
//! fixture is a regression, and a pass that starts firing on the clean
//! builder output is a false positive.

use crate::diag::Report;
use crate::model::{check_model, check_problem};
use postcard_core::{build_postcard_problem, PostcardConfig, PostcardProblem};
use postcard_lp::{LinExpr, Model, Sense};
use postcard_net::{
    Arc, ArcKind, DcId, FileId, Network, TimeExpandedGraph, TrafficLedger, TransferRequest,
};

/// One fixture's outcome: the report the analyzer produced and what was
/// expected of it.
#[derive(Debug)]
pub struct FixtureOutcome {
    /// Fixture name (stable, used in CI output).
    pub name: &'static str,
    /// The code that must appear — or `None` for the clean fixture, which
    /// must produce an empty report.
    pub expected: Option<&'static str>,
    /// What the analyzer reported.
    pub report: Report,
}

impl FixtureOutcome {
    /// `true` when the report matches the expectation.
    pub fn passed(&self) -> bool {
        match self.expected {
            Some(code) => self.report.has_code(code),
            None => self.report.is_empty(),
        }
    }
}

/// A problem whose variable map retains arc variables outside a file's
/// deadline window (PA001): built correctly for a 3-slot deadline, then the
/// deadline is tightened to 1 slot without rebuilding, exactly the bug class
/// where workload mutation and model construction fall out of sync.
pub fn deadline_violating_problem() -> PostcardProblem {
    let network = Network::complete(2, 1.0, 100.0);
    let files = vec![TransferRequest::new(FileId(0), DcId(0), DcId(1), 10.0, 3, 0)];
    let ledger = TrafficLedger::new(2);
    let mut problem = build_postcard_problem(&network, &files, &ledger, &PostcardConfig::default())
        .expect("fixture problem builds");
    problem.files[0].deadline_slots = 1;
    problem
}

/// A graph with a storage arc that changes datacenter and an arc whose slot
/// skips out of the expansion window (PA002).
pub fn layer_skipping_graph() -> TimeExpandedGraph {
    let storage = |dc: usize, slot: u64| Arc {
        from: DcId(dc),
        to: DcId(dc),
        slot,
        kind: ArcKind::Storage,
        price: 0.0,
        capacity: f64::INFINITY,
    };
    let mut arcs = vec![storage(0, 0), storage(1, 0), storage(0, 1), storage(1, 1)];
    // Storage arc that moves data between datacenters.
    arcs.push(Arc {
        from: DcId(0),
        to: DcId(1),
        slot: 0,
        kind: ArcKind::Storage,
        price: 0.0,
        capacity: f64::INFINITY,
    });
    // Transit arc in a slot outside the two-slot window [0, 1].
    arcs.push(Arc {
        from: DcId(0),
        to: DcId(1),
        slot: 5,
        kind: ArcKind::Transit,
        price: 1.0,
        capacity: 10.0,
    });
    TimeExpandedGraph::from_arcs(0, 2, 2, arcs)
}

/// A graph missing its holdover arcs (PA003): datacenter 1 has no storage
/// arc in slot 0, so conservation cannot carry unsent data forward.
pub fn broken_conservation_graph() -> TimeExpandedGraph {
    let arcs = vec![
        Arc {
            from: DcId(0),
            to: DcId(0),
            slot: 0,
            kind: ArcKind::Storage,
            price: 0.0,
            capacity: f64::INFINITY,
        },
        Arc {
            from: DcId(0),
            to: DcId(1),
            slot: 0,
            kind: ArcKind::Transit,
            price: 1.0,
            capacity: 10.0,
        },
    ];
    TimeExpandedGraph::from_arcs(0, 1, 2, arcs)
}

/// A model with an exactly duplicated constraint row (PA004).
pub fn duplicate_row_model() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, 10.0);
    let y = m.add_var("y", 0.0, 10.0);
    m.set_objective(1.0 * x + 1.0 * y);
    m.leq(2.0 * x + 3.0 * y, 12.0);
    m.leq(2.0 * x + 3.0 * y, 9.0);
    m
}

/// A model with a scalar-multiple (linearly dependent) row pair (PA005).
pub fn dependent_row_model() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, 10.0);
    let y = m.add_var("y", 0.0, 10.0);
    m.set_objective(1.0 * x + 1.0 * y);
    m.geq(1.0 * x + 2.0 * y, 4.0);
    m.geq(3.0 * x + 6.0 * y, 12.0);
    m
}

/// A model with a free column (PA006): the variable appears in no
/// constraint and its objective improves without bound.
pub fn free_column_model() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, 5.0);
    let free = m.add_var("free", 0.0, f64::INFINITY);
    m.set_objective(1.0 * x - 1.0 * free);
    m.leq(LinExpr::term(x, 1.0), 5.0);
    m
}

/// A model whose constraint coefficients span nine orders of magnitude
/// (PA009) — e.g. mixing bytes and gigabytes in one formulation.
pub fn ill_conditioned_model() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var("x", 0.0, 10.0);
    let y = m.add_var("y", 0.0, 10.0);
    m.set_objective(1.0 * x + 1.0 * y);
    m.leq(1.0 * x + 1e9 * y, 1e9);
    m
}

/// A well-formed builder-produced problem over a 3-datacenter network with
/// two overlapping files; every pass must stay silent on it.
pub fn clean_problem() -> PostcardProblem {
    let network = Network::complete(3, 2.0, 50.0);
    let files = vec![
        TransferRequest::new(FileId(0), DcId(0), DcId(2), 30.0, 4, 0),
        TransferRequest::new(FileId(1), DcId(1), DcId(0), 12.0, 2, 1),
    ];
    let ledger = TrafficLedger::new(3);
    build_postcard_problem(&network, &files, &ledger, &PostcardConfig::default())
        .expect("clean fixture builds")
}

/// Runs every fixture and returns the outcomes (clean fixture last).
pub fn run_fixtures() -> Vec<FixtureOutcome> {
    vec![
        FixtureOutcome {
            name: "deadline-violating-arc-variable",
            expected: Some("PA001"),
            report: check_problem(&deadline_violating_problem()),
        },
        FixtureOutcome {
            name: "layer-skipping-storage-arc",
            expected: Some("PA002"),
            report: check_problem(&PostcardProblem {
                model: Model::new(Sense::Minimize),
                graph: layer_skipping_graph(),
                files: Vec::new(),
                mvars: Vec::new(),
                xvars: Default::default(),
            }),
        },
        FixtureOutcome {
            name: "broken-conservation-degree",
            expected: Some("PA003"),
            report: crate::model::check_graph(&broken_conservation_graph()),
        },
        FixtureOutcome {
            name: "duplicate-row",
            expected: Some("PA004"),
            report: check_model(&duplicate_row_model()),
        },
        FixtureOutcome {
            name: "scalar-multiple-row",
            expected: Some("PA005"),
            report: check_model(&dependent_row_model()),
        },
        FixtureOutcome {
            name: "free-column",
            expected: Some("PA006"),
            report: check_model(&free_column_model()),
        },
        FixtureOutcome {
            name: "coefficient-spread-1e9",
            expected: Some("PA009"),
            report: check_model(&ill_conditioned_model()),
        },
        FixtureOutcome {
            name: "clean-builder-problem",
            expected: None,
            report: check_problem(&clean_problem()),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_meets_its_expectation() {
        for outcome in run_fixtures() {
            assert!(
                outcome.passed(),
                "fixture `{}` failed: expected {:?}, got:\n{}",
                outcome.name,
                outcome.expected,
                outcome.report.render_text()
            );
        }
    }

    #[test]
    fn deadline_fixture_names_the_window() {
        let report = check_problem(&deadline_violating_problem());
        assert!(report.has_code("PA001"));
        assert!(report.has_errors());
        let d = report.iter().find(|d| d.code == "PA001").expect("PA001 present");
        assert!(d.message.contains("window"));
    }

    #[test]
    fn layer_skip_fixture_flags_both_defects() {
        let report = crate::model::check_graph(&layer_skipping_graph());
        let pa002: Vec<_> = report.iter().filter(|d| d.code == "PA002").collect();
        // One for the dc-changing storage arc, one for the out-of-window slot.
        assert_eq!(pa002.len(), 2);
    }

    #[test]
    fn clean_fixture_is_silent() {
        let report = check_problem(&clean_problem());
        assert!(report.is_empty(), "unexpected findings:\n{}", report.render_text());
    }

    #[test]
    fn duplicate_and_dependent_rows_are_distinguished() {
        assert!(check_model(&duplicate_row_model()).has_code("PA004"));
        assert!(!check_model(&duplicate_row_model()).has_code("PA005"));
        assert!(check_model(&dependent_row_model()).has_code("PA005"));
        assert!(!check_model(&dependent_row_model()).has_code("PA004"));
    }
}
