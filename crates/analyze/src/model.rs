//! Front 1 — structural static analysis of Postcard LP models and
//! time-expanded graphs, *without solving*.
//!
//! The paper's tractability rests on structural properties (Eq. 8–10): no
//! arc variable outside a file's deadline window, storage arcs only between
//! consecutive layers of the same datacenter, and exactly one holdover arc
//! per datacenter per slot so conservation can telescope. These passes
//! verify those properties — plus generic LP hygiene (duplicate/dependent
//! rows, free columns, empty rows/columns, coefficient conditioning) —
//! and report violations with stable `PA0xx` codes (see `LINTS.md`).

use crate::diag::{Diagnostic, Report};
use postcard_core::PostcardProblem;
use postcard_lp::{Model, Relation, Sense};
use postcard_net::{ArcKind, TimeExpandedGraph};

/// Coefficient-magnitude ratio above which PA009 warns.
pub const CONDITIONING_RATIO_LIMIT: f64 = 1e8;

/// Relative tolerance used when testing rows for proportionality (PA005).
const PROPORTIONALITY_TOL: f64 = 1e-9;

/// Checks a time-expanded graph for structural defects (PA002, PA003).
pub fn check_graph(graph: &TimeExpandedGraph) -> Report {
    let mut report = Report::new();
    let first = graph.first_slot();
    let last = graph.last_slot();

    for (id, arc) in graph.arcs() {
        let loc = format!("arc #{} ({}->{}@{})", id.index(), arc.from.0, arc.to.0, arc.slot);
        if arc.slot < first || arc.slot > last {
            report.push(
                Diagnostic::error(
                    "PA002",
                    loc.clone(),
                    format!(
                        "arc slot {} lies outside the expansion window [{first}, {last}] — it \
                         skips layers of the time expansion",
                        arc.slot
                    ),
                )
                .with_help("every arc must connect two consecutive in-window layers"),
            );
        }
        if arc.kind == ArcKind::Storage && arc.from != arc.to {
            report.push(
                Diagnostic::error(
                    "PA002",
                    loc,
                    format!(
                        "storage arc changes datacenter ({} -> {}); holdover must stay in place",
                        arc.from.0, arc.to.0
                    ),
                )
                .with_help("storage arcs model i^n -> i^{n+1}; use a Transit arc to move data"),
            );
        }
    }

    // Conservation degree: every datacenter needs exactly one holdover
    // (storage) arc per in-window slot, or flow cannot telescope across
    // layers (Eq. 8).
    let mut storage_count = vec![0usize; graph.num_slots() * graph.num_dcs()];
    for (_, arc) in graph.arcs() {
        if arc.kind == ArcKind::Storage
            && arc.from == arc.to
            && arc.slot >= first
            && arc.slot <= last
        {
            storage_count[(arc.slot - first) as usize * graph.num_dcs() + arc.from.0] += 1;
        }
    }
    for off in 0..graph.num_slots() {
        for dc in 0..graph.num_dcs() {
            let count = storage_count[off * graph.num_dcs() + dc];
            if count != 1 {
                let slot = first + off as u64;
                report.push(
                    Diagnostic::error(
                        "PA003",
                        format!("node {dc}^{slot}"),
                        format!(
                            "datacenter {dc} has {count} storage arcs in slot {slot} (expected \
                             exactly 1) — conservation degree is broken"
                        ),
                    )
                    .with_help(
                        "each node i^n needs one i^n -> i^{n+1} holdover arc so per-layer \
                         conservation can carry unsent data forward",
                    ),
                );
            }
        }
    }
    report
}

/// Checks a bare LP model for generic structural hygiene (PA004–PA009).
pub fn check_model(model: &Model) -> Report {
    let mut report = Report::new();
    let columns = model.columns();

    // --- Rows: empty (PA007), duplicates (PA004), scalar multiples (PA005).
    // LinExpr iterates its terms sorted by variable index, so two rows with
    // equal left-hand sides produce identical term sequences.
    let mut row_terms: Vec<Vec<(usize, f64)>> = Vec::with_capacity(model.num_constraints());
    let mut row_relations: Vec<Relation> = Vec::with_capacity(model.num_constraints());
    for (id, con) in model.constraints() {
        row_relations.push(con.relation());
        let terms: Vec<(usize, f64)> = con
            .expr()
            .iter()
            // postcard-analyze: allow(PA101) — exact-zero sparsity filter.
            .filter(|&(_, c)| c != 0.0)
            .map(|(v, c)| (v.index(), c))
            .collect();
        if terms.is_empty() {
            report.push(
                Diagnostic::warning(
                    "PA007",
                    format!("row #{}", id.index()),
                    format!(
                        "constraint has an empty left-hand side (reads `0 {} {}`)",
                        relation_symbol(con.relation()),
                        con.rhs()
                    ),
                )
                .with_help(
                    "the presolver drops empty rows (proving infeasibility when violated); \
                     emitting one usually indicates a model-building bug",
                ),
            );
        }
        row_terms.push(terms);
    }

    // Group rows by (variable signature, relation) so the pairwise
    // dependence tests below only compare rows that could possibly match.
    let mut groups: std::collections::BTreeMap<(Vec<usize>, u8), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (idx, terms) in row_terms.iter().enumerate() {
        if terms.is_empty() {
            continue;
        }
        let signature: Vec<usize> = terms.iter().map(|&(v, _)| v).collect();
        let rel_tag = match row_relations[idx] {
            Relation::Leq => 0u8,
            Relation::Geq => 1,
            Relation::Eq => 2,
        };
        groups.entry((signature, rel_tag)).or_default().push(idx);
    }

    let mut flagged_dup = vec![false; row_terms.len()];
    for rows in groups.values() {
        for (pos, &i) in rows.iter().enumerate() {
            if flagged_dup[i] {
                continue;
            }
            for &j in &rows[pos + 1..] {
                if flagged_dup[j] {
                    continue;
                }
                let exact = row_terms[i]
                    .iter()
                    .zip(&row_terms[j])
                    .all(|(a, b)| a.1.to_bits() == b.1.to_bits());
                if exact {
                    flagged_dup[j] = true;
                    report.push(
                        Diagnostic::warning(
                            "PA004",
                            format!("row #{j}"),
                            format!("constraint duplicates the left-hand side of row #{i}"),
                        )
                        .with_help(
                            "the presolver keeps only the tightest right-hand side; drop the \
                             redundant row at build time",
                        ),
                    );
                    continue;
                }
                let factor = row_terms[j][0].1 / row_terms[i][0].1;
                if factor.is_finite()
                    && row_terms[i].iter().zip(&row_terms[j]).all(|(a, b)| {
                        (b.1 - factor * a.1).abs() <= PROPORTIONALITY_TOL * (1.0 + b.1.abs())
                    })
                {
                    flagged_dup[j] = true;
                    report.push(
                        Diagnostic::warning(
                            "PA005",
                            format!("row #{j}"),
                            format!(
                                "constraint is a scalar multiple (×{factor}) of row #{i} — the \
                                 rows are linearly dependent"
                            ),
                        )
                        .with_help(
                            "dependent rows waste pivots and can leave artificials in the basis",
                        ),
                    );
                }
            }
        }
    }

    // --- Columns: free (PA006) and empty (PA008).
    for v in model.variables() {
        if !columns[v.index()].is_empty() {
            continue;
        }
        let (lo, hi) = model.bounds(v);
        let c = model.objective_expr().coefficient(v);
        // postcard-analyze: allow(PA101) — infinity sentinel test.
        let up_unbounded = hi == f64::INFINITY;
        // postcard-analyze: allow(PA101) — infinity sentinel test.
        let down_unbounded = lo == f64::NEG_INFINITY;
        let improving_direction_unbounded = match model.sense() {
            Sense::Minimize => (c < 0.0 && up_unbounded) || (c > 0.0 && down_unbounded),
            Sense::Maximize => (c > 0.0 && up_unbounded) || (c < 0.0 && down_unbounded),
        };
        if improving_direction_unbounded {
            report.push(
                Diagnostic::error(
                    "PA006",
                    format!("var `{}`", model.var_name(v)),
                    "free column: the variable appears in no constraint and its objective \
                     coefficient improves without bound"
                        .to_string(),
                )
                .with_help(
                    "the LP is trivially unbounded; bound the variable or add the missing \
                     constraint rows",
                ),
            );
        // postcard-analyze: allow(PA101) — exact-zero objective coefficient.
        } else if c == 0.0 {
            report.push(
                Diagnostic::warning(
                    "PA008",
                    format!("var `{}`", model.var_name(v)),
                    "empty column: the variable appears in no constraint and has no objective \
                     coefficient"
                        .to_string(),
                )
                .with_help("dead variables inflate the basis for no benefit; drop them"),
            );
        }
    }

    // --- Conditioning report (PA009) over the constraint matrix.
    let mut min_abs = f64::INFINITY;
    let mut max_abs: f64 = 0.0;
    for terms in &row_terms {
        for &(_, c) in terms {
            let a = c.abs();
            min_abs = min_abs.min(a);
            max_abs = max_abs.max(a);
        }
    }
    if max_abs > 0.0 && max_abs / min_abs > CONDITIONING_RATIO_LIMIT {
        report.push(
            Diagnostic::warning(
                "PA009",
                "model",
                format!(
                    "constraint coefficient magnitudes span [{min_abs:e}, {max_abs:e}] \
                     (ratio {:e} > {CONDITIONING_RATIO_LIMIT:e})",
                    max_abs / min_abs
                ),
            )
            .with_help(
                "wide coefficient ranges degrade basis conditioning; rescale units (e.g. GB \
                 instead of bytes) before solving",
            ),
        );
    }
    report
}

/// Checks an assembled [`PostcardProblem`]: the graph passes, the model
/// passes, and the Postcard-specific deadline pass (PA001) tying LP
/// variables to graph arcs and file windows.
pub fn check_problem(problem: &PostcardProblem) -> Report {
    let mut report = check_graph(&problem.graph);
    report.merge(check_model(&problem.model));

    for (k, per_arc) in problem.mvars.iter().enumerate() {
        let Some(file) = problem.files.get(k) else {
            report.push(Diagnostic::error(
                "PA001",
                format!("file #{k}"),
                "variable map entry has no corresponding file in the batch".to_string(),
            ));
            continue;
        };
        for (&arc_id, &var) in per_arc {
            if arc_id.index() >= problem.graph.num_arcs() {
                report.push(
                    Diagnostic::error(
                        "PA001",
                        format!("var `{}`", problem.model.var_name(var)),
                        format!("variable references nonexistent arc #{}", arc_id.index()),
                    )
                    .with_help("the variable map and the graph were built from different data"),
                );
                continue;
            }
            let arc = problem.graph.arc(arc_id);
            if !file.active_in(arc.slot) {
                report.push(
                    Diagnostic::error(
                        "PA001",
                        format!("var `{}`", problem.model.var_name(var)),
                        format!(
                            "file {} has an arc variable in slot {} outside its window \
                             [{}, {}] — Eq. 10 is violated structurally",
                            file.id,
                            arc.slot,
                            file.first_slot(),
                            file.last_slot()
                        ),
                    )
                    .with_help(
                        "variables must only exist for arcs inside [release, release + T_k); \
                         a variable past the deadline lets flow arrive late",
                    ),
                );
            }
        }
    }
    report
}

fn relation_symbol(r: Relation) -> &'static str {
    match r {
        Relation::Leq => "<=",
        Relation::Eq => "=",
        Relation::Geq => ">=",
    }
}
