//! Front 2 — a self-contained source lint pass over the workspace's own
//! `.rs` files.
//!
//! The offline build container rules out external lint frameworks, so this
//! is a line/token-level scanner built on `std` alone. It scrubs comments
//! and string literals, skips `#[cfg(test)]` blocks, honors
//! `// postcard-analyze: allow(<code>)` suppressions (same or next line;
//! `allow-file(<code>)` for a whole file), and enforces:
//!
//! * **PA101** — no `==`/`!=` where either operand is obviously a float
//!   (float literal, `f64`/`f32` mention). Token-level: float-typed
//!   variables compared without such a hint are not caught.
//! * **PA102** — no `.unwrap()` / `.expect(` in non-test code of the
//!   library crates (`lp`, `flow`, `core`, `net`, `runtime`).
//! * **PA103** — no `panic!` in the same crates' non-test code.
//! * **PA104** — no `todo!` / `unimplemented!` anywhere in non-test code.
//! * **PA105** — solver-result types must carry `#[must_use]`.

use crate::diag::{Diagnostic, Report};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must not unwrap/expect/panic (PA102, PA103).
const NO_PANIC_CRATES: &[&str] = &["lp", "flow", "core", "net", "runtime"];

/// `(crate, type)` pairs that must carry `#[must_use]` (PA105).
const MUST_USE_TYPES: &[(&str, &str)] =
    &[("lp", "Solution"), ("lp", "Status"), ("lp", "RawSolution"), ("lp", "Presolved")];

/// Scans the workspace rooted at `root`: the root package's `src/` plus
/// every `crates/<name>/src/` except the vendored `crates/compat` shims.
/// Test/bench/example directories are not scanned (they may unwrap freely).
pub fn check_workspace(root: &Path) -> Report {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    collect_rs_files(&root.join("src"), &mut |p| files.push(("postcard".to_string(), p)));
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name == "compat" {
                continue;
            }
            collect_rs_files(&dir.join("src"), &mut |p| files.push((name.clone(), p)));
        }
    }
    let mut report = Report::new();
    for (crate_name, path) in files {
        let Ok(content) = fs::read_to_string(&path) else {
            continue;
        };
        let label = path.strip_prefix(root).unwrap_or(&path).display().to_string();
        report.merge(check_source(&label, &content, &crate_name));
    }
    report
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs_files(dir: &Path, sink: &mut impl FnMut(PathBuf)) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, sink);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            sink(p);
        }
    }
}

/// Lints one source file. `label` is used in diagnostics; `crate_name`
/// selects which rules apply (see the module docs).
pub fn check_source(label: &str, content: &str, crate_name: &str) -> Report {
    let mut report = Report::new();
    let (code_lines, comment_lines) = scrub(content);
    let n = code_lines.len();

    // Suppressions.
    let mut file_allows: BTreeSet<String> = BTreeSet::new();
    let mut line_allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        for code in parse_directive(comment, "allow-file(") {
            file_allows.insert(code);
        }
        let codes = parse_directive(comment, "allow(");
        if !codes.is_empty() {
            // A trailing comment covers its own line; a standalone comment
            // covers the next line of code, skipping the rest of a
            // multi-line justification comment.
            let mut target = idx;
            if code_lines[idx].trim().is_empty() {
                target += 1;
                while target < n
                    && code_lines[target].trim().is_empty()
                    && !comment_lines[target].trim().is_empty()
                {
                    target += 1;
                }
            }
            line_allows.entry(target).or_default().extend(codes);
        }
    }
    let allowed = |idx: usize, code: &str| {
        file_allows.contains(code) || line_allows.get(&idx).is_some_and(|s| s.contains(code))
    };

    // `#[cfg(test)]` regions: from the attribute to the close of the brace
    // block that follows it.
    let mut skip = vec![false; n];
    let mut in_test = false;
    let mut seen_open = false;
    let mut depth: i64 = 0;
    for (idx, line) in code_lines.iter().enumerate() {
        if !in_test {
            if !line.contains("#[cfg(test)]") {
                continue;
            }
            in_test = true;
            seen_open = false;
            depth = 0;
        }
        skip[idx] = true;
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if seen_open && depth <= 0 {
            in_test = false;
        }
    }

    let deny_panics = NO_PANIC_CRATES.contains(&crate_name);
    for (idx, line) in code_lines.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        let lineno = idx + 1;
        let loc = format!("{label}:{lineno}");
        if !find_float_comparisons(line).is_empty() && !allowed(idx, "PA101") {
            report.push(
                Diagnostic::warning(
                    "PA101",
                    loc.clone(),
                    "`==`/`!=` on a floating-point operand".to_string(),
                )
                .with_help(
                    "compare against a tolerance (e.g. (a - b).abs() < TOL), or annotate \
                     `// postcard-analyze: allow(PA101)` where bit-equality is intended",
                ),
            );
        }
        if deny_panics {
            if (line.contains(".unwrap()") || line.contains(".expect(")) && !allowed(idx, "PA102") {
                report.push(
                    Diagnostic::error(
                        "PA102",
                        loc.clone(),
                        "`unwrap()`/`expect()` in non-test library code".to_string(),
                    )
                    .with_help("propagate a proper error (LpError/PostcardError) instead"),
                );
            }
            if contains_macro(line, "panic") && !allowed(idx, "PA103") {
                report.push(
                    Diagnostic::error(
                        "PA103",
                        loc.clone(),
                        "`panic!` in non-test library code".to_string(),
                    )
                    .with_help("return an error; panics take down the whole controller"),
                );
            }
        }
        if (contains_macro(line, "todo") || contains_macro(line, "unimplemented"))
            && !allowed(idx, "PA104")
        {
            report.push(
                Diagnostic::error(
                    "PA104",
                    loc,
                    "`todo!`/`unimplemented!` left in non-test code".to_string(),
                )
                .with_help("finish the implementation or return a structured error"),
            );
        }
    }

    // PA105: `#[must_use]` presence on designated solver-result types.
    for &(krate, type_name) in MUST_USE_TYPES {
        if krate != crate_name {
            continue;
        }
        for idx in 0..n {
            if skip[idx] || !declares_type(&code_lines[idx], type_name) {
                continue;
            }
            let mut found = false;
            let mut back = idx;
            while back > 0 {
                back -= 1;
                let t = code_lines[back].trim();
                let is_attr_or_doc = t.starts_with('#') || t.starts_with('/') || t.ends_with(']');
                if !is_attr_or_doc && !comment_lines[back].trim().starts_with('/') {
                    break;
                }
                if t.contains("#[must_use") {
                    found = true;
                    break;
                }
            }
            if !found && !allowed(idx, "PA105") {
                report.push(
                    Diagnostic::warning(
                        "PA105",
                        format!("{label}:{}", idx + 1),
                        format!("solver-result type `{type_name}` is missing `#[must_use]`"),
                    )
                    .with_help("a silently dropped result hides infeasible/unbounded outcomes"),
                );
            }
        }
    }
    report
}

/// `true` if `line` declares `pub struct <name>` / `pub enum <name>` with a
/// word boundary after the name.
fn declares_type(line: &str, name: &str) -> bool {
    for kw in ["pub struct ", "pub enum "] {
        if let Some(pos) = line.find(kw) {
            let rest = &line[pos + kw.len()..];
            if let Some(stripped) = rest.strip_prefix(name) {
                let boundary =
                    stripped.chars().next().is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
                if boundary {
                    return true;
                }
            }
        }
    }
    false
}

/// Extracts the comma-separated codes of a `postcard-analyze: <kind>...)`
/// directive from a comment line (empty when absent).
fn parse_directive(comment: &str, kind: &str) -> Vec<String> {
    let Some(pos) = comment.find("postcard-analyze:") else {
        return Vec::new();
    };
    let rest = &comment[pos + "postcard-analyze:".len()..];
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix(kind) else {
        return Vec::new();
    };
    let Some(end) = args.find(')') else {
        return Vec::new();
    };
    args[..end].split(',').map(|c| c.trim().to_string()).filter(|c| !c.is_empty()).collect()
}

/// `true` if the scrubbed line invokes `name!` as a macro token.
fn contains_macro(line: &str, name: &str) -> bool {
    let needle = format!("{name}!");
    let mut start = 0;
    while let Some(pos) = line[start..].find(&needle) {
        let abs = start + pos;
        let preceded_by_ident = abs > 0
            && line[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded_by_ident {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Byte offsets of `==`/`!=` comparisons on a scrubbed line where either
/// operand is obviously floating-point.
fn find_float_comparisons(line: &str) -> Vec<usize> {
    let b = line.as_bytes();
    let mut hits = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        let is_cmp = (b[i] == b'=' || b[i] == b'!') && b[i + 1] == b'=';
        let clean_before = i == 0
            || !matches!(
                b[i - 1],
                b'<' | b'>' | b'=' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
            );
        let clean_after = i + 2 >= b.len() || b[i + 2] != b'=';
        if is_cmp && clean_before && clean_after {
            let left = operand_left(line, i);
            let right = operand_right(line, i + 2);
            if has_float_hint(left) || has_float_hint(right) {
                hits.push(i);
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    hits
}

/// The text of the operand ending just before byte `end` (exclusive).
fn operand_left(line: &str, end: usize) -> &str {
    let b = line.as_bytes();
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut i = end;
    while i > 0 {
        let c = b[i - 1];
        match c {
            b')' => paren += 1,
            b'(' => {
                if paren == 0 {
                    break;
                }
                paren -= 1;
            }
            b']' => bracket += 1,
            b'[' => {
                if bracket == 0 {
                    break;
                }
                bracket -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'=' | b'<' | b'>' | b'!' | b'&' | b'|'
                if paren == 0 && bracket == 0 =>
            {
                break;
            }
            _ => {}
        }
        i -= 1;
    }
    &line[i..end]
}

/// The text of the operand starting at byte `start`.
fn operand_right(line: &str, start: usize) -> &str {
    let b = line.as_bytes();
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut i = start;
    while i < b.len() {
        let c = b[i];
        match c {
            b'(' => paren += 1,
            b')' => {
                if paren == 0 {
                    break;
                }
                paren -= 1;
            }
            b'[' => bracket += 1,
            b']' => {
                if bracket == 0 {
                    break;
                }
                bracket -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'=' | b'<' | b'>' | b'!' | b'&' | b'|'
                if paren == 0 && bracket == 0 =>
            {
                break;
            }
            _ => {}
        }
        i += 1;
    }
    &line[start..i]
}

/// `true` when the operand text is obviously floating-point.
fn has_float_hint(s: &str) -> bool {
    contains_float_literal(s) || s.contains("f64") || s.contains("f32")
}

/// Detects a float literal (`1.0`, `2.`, `.5` is not valid Rust, `1e-9`)
/// while rejecting tuple indexing (`pair.0`), integer method calls
/// (`1.max(x)`), hex literals, and identifier-embedded digits.
fn contains_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    let n = b.len();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut i = 0;
    while i < n {
        if !b[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // A digit run must not continue an identifier, a decimal tail, or a
        // hex literal.
        if i > 0 && (is_ident(b[i - 1]) || b[i - 1] == b'.') {
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            continue;
        }
        while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
        if i < n && b[i] == b'.' {
            if i + 1 < n && b[i + 1].is_ascii_digit() {
                return true; // 1.0
            }
            if i + 1 >= n || (!is_ident(b[i + 1]) && b[i + 1] != b'.') {
                return true; // trailing-dot float like `1.`
            }
            // `1.max(x)`: an integer method call, not a float.
        }
        if i < n && (b[i] == b'e' || b[i] == b'E') {
            let mut j = i + 1;
            if j < n && (b[j] == b'+' || b[j] == b'-') {
                j += 1;
            }
            let exp_start = j;
            while j < n && b[j].is_ascii_digit() {
                j += 1;
            }
            if j > exp_start && (j >= n || !is_ident(b[j])) {
                return true; // 1e9 / 1e-9
            }
        }
    }
    false
}

/// Splits a source file into per-line `(code, comments)` where `code` has
/// comments and string/char literals blanked out and `comments` has
/// everything *except* comment text blanked out. Handles line comments,
/// nested block comments, string escapes, raw strings, char literals, and
/// lifetimes.
fn scrub(content: &str) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum S {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let chars: Vec<char> = content.chars().collect();
    let mut code = String::with_capacity(content.len());
    let mut comment = String::with_capacity(content.len());
    let mut state = S::Code;
    let mut i = 0;
    let push = |code: &mut String, comment: &mut String, c: char, to_code: bool| {
        if to_code {
            code.push(c);
            comment.push(' ');
        } else {
            code.push(' ');
            comment.push(c);
        }
    };
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
            if state == S::Line {
                state = S::Code;
            }
            i += 1;
            continue;
        }
        match state {
            S::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = S::Line;
                    push(&mut code, &mut comment, '/', false);
                    push(&mut code, &mut comment, '/', false);
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = S::Block(1);
                    push(&mut code, &mut comment, '/', false);
                    push(&mut code, &mut comment, '*', false);
                    i += 2;
                } else if c == '"' {
                    state = S::Str;
                    push(&mut code, &mut comment, ' ', true);
                    i += 1;
                } else if c == 'r'
                    && matches!(next, Some('"') | Some('#'))
                    && (i == 0 || !chars[i - 1].is_alphanumeric() && chars[i - 1] != '_')
                {
                    // Raw string r"..." / r#"..."# — count the hashes.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            push(&mut code, &mut comment, ' ', true);
                        }
                        state = S::RawStr(hashes);
                        i = j + 1;
                    } else {
                        push(&mut code, &mut comment, c, true);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: 'x' / '\n' are literals,
                    // 'a (no closing quote nearby) is a lifetime.
                    let close = (1..=12)
                        .find(|&k| chars.get(i + k) == Some(&'\'') && k != 1)
                        .filter(|&k| k <= 2 || chars.get(i + 1) == Some(&'\\') || k == 2);
                    let is_literal = match chars.get(i + 1) {
                        Some('\\') => close.is_some(),
                        Some(ch) if *ch != '\'' => chars.get(i + 2) == Some(&'\''),
                        _ => false,
                    };
                    if is_literal {
                        let end = if chars.get(i + 1) == Some(&'\\') {
                            close.map_or(i + 1, |k| i + k)
                        } else {
                            i + 2
                        };
                        for _ in i..=end.min(chars.len() - 1) {
                            push(&mut code, &mut comment, ' ', true);
                        }
                        i = end + 1;
                    } else {
                        push(&mut code, &mut comment, c, true);
                        i += 1;
                    }
                } else {
                    push(&mut code, &mut comment, c, true);
                    i += 1;
                }
            }
            S::Line => {
                push(&mut code, &mut comment, c, false);
                i += 1;
            }
            S::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    push(&mut code, &mut comment, '*', false);
                    push(&mut code, &mut comment, '/', false);
                    state = if depth == 1 { S::Code } else { S::Block(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    push(&mut code, &mut comment, '/', false);
                    push(&mut code, &mut comment, '*', false);
                    state = S::Block(depth + 1);
                    i += 2;
                } else {
                    push(&mut code, &mut comment, c, false);
                    i += 1;
                }
            }
            S::Str => {
                if c == '\\' {
                    push(&mut code, &mut comment, ' ', true);
                    if chars.get(i + 1).is_some_and(|&ch| ch != '\n') {
                        push(&mut code, &mut comment, ' ', true);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else {
                    if c == '"' {
                        state = S::Code;
                    }
                    push(&mut code, &mut comment, ' ', true);
                    i += 1;
                }
            }
            S::RawStr(hashes) => {
                if c == '"' {
                    let closed = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closed {
                        for _ in 0..=hashes {
                            push(&mut code, &mut comment, ' ', true);
                        }
                        state = S::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                push(&mut code, &mut comment, ' ', true);
                i += 1;
            }
        }
    }
    let code_lines = code.lines().map(String::from).collect();
    let comment_lines = comment.lines().map(String::from).collect();
    (code_lines, comment_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.iter().map(|d| d.code).collect()
    }

    #[test]
    fn float_literal_detection() {
        assert!(contains_float_literal("x == 0.0"));
        assert!(contains_float_literal("1e-9"));
        assert!(contains_float_literal("2."));
        assert!(!contains_float_literal("pair.0"));
        assert!(!contains_float_literal("self.0"));
        assert!(!contains_float_literal("x1e")); // identifier
        assert!(!contains_float_literal("0x1e")); // hex literal
        assert!(!contains_float_literal("1.max(2)")); // integer method call
        assert!(!contains_float_literal("i == 0"));
    }

    #[test]
    fn comparison_operand_scoping() {
        // The float literal is in another argument, not an operand of `==`.
        assert!(find_float_comparisons("assert(x.len() == 2, 3.5)").is_empty());
        assert!(!find_float_comparisons("if volume == 0.0 {").is_empty());
        assert!(!find_float_comparisons("a != b * 2.0").is_empty());
        assert!(!find_float_comparisons("x as f64 == y").is_empty());
        // <= and >= are not equality comparisons.
        assert!(find_float_comparisons("a <= 2.0 && b >= 0.5").is_empty());
        // Integer comparison next to a float in a separate statement.
        assert!(find_float_comparisons("if i == 0 { x = 1.0 }").is_empty());
    }

    #[test]
    fn scrubber_blanks_comments_and_strings() {
        let src = "let a = \"1.0 == 2.0\"; // 3.0 == 4.0\nlet b = 5;\n";
        let (code, comment) = scrub(src);
        assert!(!code[0].contains("1.0"));
        assert!(!code[0].contains("3.0"));
        assert!(comment[0].contains("3.0 == 4.0"));
        assert_eq!(code[1], "let b = 5;");
    }

    #[test]
    fn scrubber_handles_char_literals_and_lifetimes() {
        let (code, _) = scrub("fn f<'a>(x: &'a str) -> char { '\"' }\n");
        // The double quote inside the char literal must not open a string.
        assert!(code[0].contains("fn f<'a>"));
        assert!(code[0].contains('}'));
    }

    #[test]
    fn scrubber_handles_raw_strings() {
        let (code, _) = scrub("let s = r#\"a == 1.0\"#; let t = 2;\n");
        assert!(!code[0].contains("1.0"));
        assert!(code[0].contains("let t = 2;"));
    }

    #[test]
    fn unwrap_flagged_only_in_library_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(codes(&check_source("a.rs", src, "lp")), vec!["PA102"]);
        assert!(check_source("a.rs", src, "cli").is_empty());
        // unwrap_or is fine.
        assert!(check_source("a.rs", "fn f() { x.unwrap_or(0); }\n", "lp").is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); let a = b == 1.0; }\n}\nfn h() { y.expect(\"boom\"); }\n";
        let report = check_source("a.rs", src, "lp");
        assert_eq!(codes(&report), vec!["PA102"]);
        assert!(report.iter().next().is_some_and(|d| d.location.ends_with(":6")));
    }

    #[test]
    fn allow_comments_suppress_same_and_next_line() {
        let src = "// postcard-analyze: allow(PA101)\nlet a = x == 0.0;\nlet b = y == 0.0; // postcard-analyze: allow(PA101)\nlet c = z == 0.0;\n";
        let report = check_source("a.rs", src, "net");
        assert_eq!(report.len(), 1);
        assert!(report.iter().next().is_some_and(|d| d.location.ends_with(":4")));
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// postcard-analyze: allow-file(PA101)\nlet a = x == 0.0;\nlet b = y == 1.0;\n";
        assert!(check_source("a.rs", src, "net").is_empty());
    }

    #[test]
    fn panic_todo_unimplemented_flagged() {
        let report = check_source("a.rs", "fn f() { panic!(\"boom\") }\n", "core");
        assert_eq!(codes(&report), vec!["PA103"]);
        // debug_assert! must not trip the panic rule.
        assert!(check_source("a.rs", "debug_assert!(x > 0);\n", "core").is_empty());
        let report = check_source("a.rs", "fn f() { todo!() }\n", "cli");
        assert_eq!(codes(&report), vec!["PA104"]);
        let report = check_source("a.rs", "fn f() { unimplemented!() }\n", "sim");
        assert_eq!(codes(&report), vec!["PA104"]);
    }

    #[test]
    fn must_use_presence_checked() {
        let missing = "/// Docs.\n#[derive(Debug)]\npub struct Solution {\n    x: u8,\n}\n";
        let report = check_source("s.rs", missing, "lp");
        assert_eq!(codes(&report), vec!["PA105"]);
        let present =
            "/// Docs.\n#[must_use]\n#[derive(Debug)]\npub struct Solution {\n    x: u8,\n}\n";
        assert!(check_source("s.rs", present, "lp").is_empty());
        // Other crates' types of the same name are not checked.
        assert!(check_source("s.rs", missing, "net").is_empty());
        // Prefix names must not match (word boundary).
        assert!(check_source("s.rs", "pub struct SolutionMap {}\n", "lp").is_empty());
    }

    #[test]
    fn directive_parsing() {
        assert_eq!(
            parse_directive("// postcard-analyze: allow(PA101, PA102)", "allow("),
            vec!["PA101", "PA102"]
        );
        assert!(parse_directive("// postcard-analyze: allow-file(PA101)", "allow(").is_empty());
        assert_eq!(
            parse_directive("// postcard-analyze: allow-file(PA101)", "allow-file("),
            vec!["PA101"]
        );
        assert!(parse_directive("// nothing here", "allow(").is_empty());
    }
}
