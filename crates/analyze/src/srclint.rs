//! Front 2 — the source lints over the workspace's own `.rs` files.
//!
//! Since PR 8 the pass runs on the [`crate::lexer`]/[`crate::ast`] token
//! layer instead of per-line regex-ish scans: string literals, comments,
//! and multi-line expressions can no longer produce false positives,
//! because the lints see tokens (a `Float` literal token, an `Ident`
//! exactly equal to `f64`) rather than substrings. Diagnostics, codes, and
//! the `// postcard-analyze: allow(<code>)` suppression syntax are
//! unchanged.
//!
//! Two families run here:
//!
//! * **PA101–PA105** (this module) — numerics and error-handling hygiene:
//!   float `==`/`!=`, `unwrap`/`expect`/`panic!` in library crates,
//!   `todo!`/`unimplemented!`, missing `#[must_use]` on solver results.
//! * **PA201–PA208** ([`crate::determinism`]) — the determinism &
//!   concurrency family guarding byte-identical sharded solves; wired in
//!   through [`check_source`] / [`check_workspace`] below.

use crate::ast::ParsedFile;
use crate::determinism;
use crate::diag::{Diagnostic, Report};
use crate::lexer::TokKind;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must not unwrap/expect/panic (PA102, PA103).
pub(crate) const NO_PANIC_CRATES: &[&str] = &["lp", "flow", "core", "net", "runtime"];

/// `(crate, type)` pairs that must carry `#[must_use]` (PA105).
const MUST_USE_TYPES: &[(&str, &str)] =
    &[("lp", "Solution"), ("lp", "Status"), ("lp", "RawSolution"), ("lp", "Presolved")];

/// Scans the workspace rooted at `root`: the root package's `src/` plus
/// every `crates/<name>/src/` except the vendored `crates/compat` shims.
/// Test/bench/example directories are not scanned (they may unwrap freely),
/// though the PA208 fixture-coverage check reads `tests/fixtures` metadata.
pub fn check_workspace(root: &Path) -> Report {
    check_workspace_with_stats(root).0
}

/// [`check_workspace`], also returning the number of files scanned (for CI
/// timing lines).
pub fn check_workspace_with_stats(root: &Path) -> (Report, usize) {
    let mut files: Vec<(String, PathBuf)> = Vec::new();
    collect_rs_files(&root.join("src"), &mut |p| files.push(("postcard".to_string(), p)));
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name == "compat" {
                continue;
            }
            collect_rs_files(&dir.join("src"), &mut |p| files.push((name.clone(), p)));
        }
    }
    let mut parsed = Vec::new();
    for (crate_name, path) in &files {
        let Ok(content) = fs::read_to_string(path) else {
            continue;
        };
        let label = path.strip_prefix(root).unwrap_or(path).display().to_string();
        parsed.push(ParsedFile::parse(&label, &content, crate_name));
    }
    let mut report = Report::new();
    for pf in &parsed {
        report.merge(check_parsed(pf));
        report.merge(determinism::check_file(pf));
    }
    report.merge(determinism::check_taint(&parsed));
    report.merge(determinism::check_fixture_coverage(root));
    (report, parsed.len())
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs_files(dir: &Path, sink: &mut impl FnMut(PathBuf)) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, sink);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            sink(p);
        }
    }
}

/// Lints one source file with both the PA1xx and the per-file PA2xx
/// passes. `label` is used in diagnostics (and selects PA2xx sanctioned
/// files by path); `crate_name` selects which rules apply.
pub fn check_source(label: &str, content: &str, crate_name: &str) -> Report {
    let pf = ParsedFile::parse(label, content, crate_name);
    let mut report = check_parsed(&pf);
    report.merge(determinism::check_file(&pf));
    report.merge(determinism::check_taint(std::slice::from_ref(&pf)));
    report
}

/// The PA101–PA105 pass over one parsed file.
pub(crate) fn check_parsed(pf: &ParsedFile) -> Report {
    let mut report = Report::new();
    let deny_panics = NO_PANIC_CRATES.contains(&pf.crate_name.as_str());
    let n = pf.code_len();
    // Dedupe by (code, line) so several hits on one line report once, as
    // the historical line scanner did.
    let mut seen: BTreeSet<(&str, usize)> = BTreeSet::new();

    for k in 0..n {
        let tok = pf.ct(k);
        let line = tok.line;
        if pf.in_test(line) {
            continue;
        }
        let loc = format!("{}:{line}", pf.label);

        // PA101 — float equality.
        if tok.kind == TokKind::Punct
            && (tok.text == "==" || tok.text == "!=")
            && (operand_has_float_hint(pf, k, Side::Left)
                || operand_has_float_hint(pf, k, Side::Right))
            && !pf.allowed(line, "PA101")
            && seen.insert(("PA101", line))
        {
            report.push(
                Diagnostic::warning(
                    "PA101",
                    loc.clone(),
                    "`==`/`!=` on a floating-point operand".to_string(),
                )
                .with_help(
                    "compare against a tolerance (e.g. (a - b).abs() < TOL), or annotate \
                     `// postcard-analyze: allow(PA101)` where bit-equality is intended",
                ),
            );
        }

        if deny_panics {
            // PA102 — `.unwrap()` / `.expect(…)`.
            let is_unwrap = k >= 1
                && tok.is_ident("unwrap")
                && pf.ct(k - 1).is_punct(".")
                && k + 2 < n
                && pf.ct(k + 1).is_punct("(")
                && pf.ct(k + 2).is_punct(")");
            let is_expect = k >= 1
                && tok.is_ident("expect")
                && pf.ct(k - 1).is_punct(".")
                && k + 1 < n
                && pf.ct(k + 1).is_punct("(");
            if (is_unwrap || is_expect)
                && !pf.allowed(line, "PA102")
                && seen.insert(("PA102", line))
            {
                report.push(
                    Diagnostic::error(
                        "PA102",
                        loc.clone(),
                        "`unwrap()`/`expect()` in non-test library code".to_string(),
                    )
                    .with_help("propagate a proper error (LpError/PostcardError) instead"),
                );
            }
            // PA103 — `panic!`.
            if tok.is_ident("panic")
                && k + 1 < n
                && pf.ct(k + 1).is_punct("!")
                && !pf.allowed(line, "PA103")
                && seen.insert(("PA103", line))
            {
                report.push(
                    Diagnostic::error(
                        "PA103",
                        loc.clone(),
                        "`panic!` in non-test library code".to_string(),
                    )
                    .with_help("return an error; panics take down the whole controller"),
                );
            }
        }

        // PA104 — `todo!` / `unimplemented!`, any crate.
        if (tok.is_ident("todo") || tok.is_ident("unimplemented"))
            && k + 1 < n
            && pf.ct(k + 1).is_punct("!")
            && !pf.allowed(line, "PA104")
            && seen.insert(("PA104", line))
        {
            report.push(
                Diagnostic::error(
                    "PA104",
                    loc,
                    "`todo!`/`unimplemented!` left in non-test code".to_string(),
                )
                .with_help("finish the implementation or return a structured error"),
            );
        }
    }

    // PA105 — `#[must_use]` presence on designated solver-result types.
    for &(krate, type_name) in MUST_USE_TYPES {
        if krate != pf.crate_name {
            continue;
        }
        for k in 0..n {
            if !pf.ct(k).is_ident("pub")
                || k + 2 >= n
                || !(pf.ct(k + 1).is_ident("struct") || pf.ct(k + 1).is_ident("enum"))
                || !pf.ct(k + 2).is_ident(type_name)
            {
                continue;
            }
            let line = pf.ct(k).line;
            if pf.in_test(line) {
                continue;
            }
            if !preceding_attrs_contain(pf, k, "must_use") && !pf.allowed(line, "PA105") {
                report.push(
                    Diagnostic::warning(
                        "PA105",
                        format!("{}:{line}", pf.label),
                        format!("solver-result type `{type_name}` is missing `#[must_use]`"),
                    )
                    .with_help("a silently dropped result hides infeasible/unbounded outcomes"),
                );
            }
        }
    }
    report
}

/// Which side of a comparison operator to scan.
enum Side {
    Left,
    Right,
}

/// `true` when the operand on `side` of the comparison at code position
/// `cmp` contains an obvious float hint: a float literal token or an
/// identifier token exactly `f64`/`f32`. The scan walks sibling tokens at
/// the comparison's nesting level, descending into bracketed groups it
/// passes, and stops at expression boundaries (`,` `;` `=` logical ops,
/// unmatched brackets, statement keywords).
fn operand_has_float_hint(pf: &ParsedFile, cmp: usize, side: Side) -> bool {
    let boundary_punct = |t: &str| {
        matches!(
            t,
            ";" | ","
                | "="
                | "=="
                | "!="
                | "&&"
                | "||"
                | "=>"
                | "->"
                | "<"
                | ">"
                | "<="
                | ">="
                | "+="
                | "-="
                | "*="
                | "/="
                | "%="
                | "&="
                | "|="
                | "^="
                | "<<="
                | ">>="
                | "{"
                | "}"
                | "#"
        )
    };
    let boundary_ident =
        |t: &str| matches!(t, "return" | "if" | "else" | "while" | "match" | "in" | "let" | "for");
    let hint = |k: usize| -> bool {
        let t = pf.ct(k);
        t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32")
    };
    match side {
        Side::Left => {
            let mut k = cmp;
            while k > 0 {
                k -= 1;
                let t = pf.ct(k);
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        ")" | "]" => {
                            // An operand sub-group: scan its contents, then
                            // jump over it.
                            let Some(open) = pf.partner[k] else {
                                return false;
                            };
                            if (open..=k).any(hint) {
                                return true;
                            }
                            k = open;
                            continue;
                        }
                        "(" | "[" => return false, // enclosing group edge
                        t if boundary_punct(t) => return false,
                        _ => continue,
                    }
                }
                if t.kind == TokKind::Ident && boundary_ident(&t.text) {
                    return false;
                }
                if hint(k) {
                    return true;
                }
            }
            false
        }
        Side::Right => {
            let mut k = cmp + 1;
            while k < pf.code_len() {
                let t = pf.ct(k);
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => {
                            let Some(close) = pf.partner[k] else {
                                return false;
                            };
                            if (k..=close).any(hint) {
                                return true;
                            }
                            k = close + 1;
                            continue;
                        }
                        ")" | "]" => return false, // enclosing group edge
                        t if boundary_punct(t) => return false,
                        _ => {
                            k += 1;
                            continue;
                        }
                    }
                }
                if t.kind == TokKind::Ident && boundary_ident(&t.text) {
                    return false;
                }
                if hint(k) {
                    return true;
                }
                k += 1;
            }
            false
        }
    }
}

/// `true` when the attributes directly preceding the item at code position
/// `k` (walking back over `#[…]` groups) contain the identifier `needle`.
fn preceding_attrs_contain(pf: &ParsedFile, k: usize, needle: &str) -> bool {
    let mut j = k;
    while j > 0 {
        j -= 1;
        let t = pf.ct(j);
        if t.is_punct("]") {
            let Some(open) = pf.partner[j] else {
                return false;
            };
            if (open..j).any(|p| pf.ct(p).is_ident(needle)) {
                return true;
            }
            // Jump over the attr body, then the `#` (and optional `!`).
            j = open;
            if j > 0 && pf.ct(j - 1).is_punct("!") {
                j -= 1;
            }
            if j > 0 && pf.ct(j - 1).is_punct("#") {
                j -= 1;
                continue;
            }
            return false;
        }
        // `pub struct` may also directly follow another modifier of its own
        // item; anything else ends the attribute run.
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.iter().map(|d| d.code).collect()
    }

    fn lint(src: &str, krate: &str) -> Report {
        check_source("a.rs", src, krate)
    }

    #[test]
    fn float_equality_flagged_with_literal_or_type_hint() {
        assert_eq!(codes(&lint("fn f(x: f64) -> bool { x == 0.0 }\n", "net")), vec!["PA101"]);
        assert_eq!(codes(&lint("fn f() -> bool { a != b * 2.0 }\n", "net")), vec!["PA101"]);
        assert_eq!(codes(&lint("fn f() -> bool { x as f64 == y }\n", "net")), vec!["PA101"]);
        // Integer comparisons stay silent.
        assert!(lint("fn f(i: usize) -> bool { i == 0 }\n", "net").is_empty());
        // <= / >= are not equality comparisons.
        assert!(lint("fn f() -> bool { a <= 2.0 && b >= 0.5 }\n", "net").is_empty());
    }

    #[test]
    fn float_hint_in_another_argument_is_not_an_operand() {
        assert!(lint("fn f() { assert(x.len() == 2, 3.5); }\n", "net").is_empty());
        assert!(lint("fn f() { if i == 0 { x = 1.0 } }\n", "net").is_empty());
    }

    #[test]
    fn identifiers_embedding_f64_are_not_hints() {
        // `count_f64s` is one identifier, not the type `f64` — the line
        // scanner used to false-positive here.
        assert!(lint("fn f(count_f64s: usize) -> bool { count_f64s == 0 }\n", "net").is_empty());
    }

    #[test]
    fn multiline_comparisons_are_caught() {
        // Operator and hint on different lines — invisible to a per-line
        // scanner, visible to the token layer.
        let report = lint("fn f() -> bool {\n    total ==\n        1.5\n}\n", "net");
        assert_eq!(codes(&report), vec!["PA101"]);
        assert!(report.iter().next().is_some_and(|d| d.location.ends_with(":2")));
    }

    #[test]
    fn strings_and_comments_never_trip_lints() {
        let src = "fn f() -> &'static str {\n    // a == 1.0 and x.unwrap() and panic! in prose\n    \"b == 2.0 .unwrap() panic! todo!\"\n}\n";
        assert!(lint(src, "lp").is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_library_crates() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(codes(&lint(src, "lp")), vec!["PA102"]);
        assert!(lint(src, "cli").is_empty());
        // unwrap_or is a different identifier token.
        assert!(lint("fn f() { x.unwrap_or(0); }\n", "lp").is_empty());
        assert_eq!(codes(&lint("fn f() { y.expect(\"boom\"); }\n", "flow")), vec!["PA102"]);
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); let a = b == 1.0; }\n}\nfn h() { y.expect(\"boom\"); }\n";
        let report = lint(src, "lp");
        assert_eq!(codes(&report), vec!["PA102"]);
        assert!(report.iter().next().is_some_and(|d| d.location.ends_with(":6")));
    }

    #[test]
    fn allow_comments_suppress_same_and_next_line() {
        let src = "fn f() {\n// postcard-analyze: allow(PA101)\nlet a = x == 0.0;\nlet b = y == 0.0; // postcard-analyze: allow(PA101)\nlet c = z == 0.0;\n}\n";
        let report = lint(src, "net");
        assert_eq!(report.len(), 1);
        assert!(report.iter().next().is_some_and(|d| d.location.ends_with(":5")));
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// postcard-analyze: allow-file(PA101)\nfn f() {\nlet a = x == 0.0;\nlet b = y == 1.0;\n}\n";
        assert!(lint(src, "net").is_empty());
    }

    #[test]
    fn panic_todo_unimplemented_flagged() {
        assert_eq!(codes(&lint("fn f() { panic!(\"boom\") }\n", "core")), vec!["PA103"]);
        // debug_assert! is one identifier; it must not trip the panic rule.
        assert!(lint("fn f() { debug_assert!(x > 0); }\n", "core").is_empty());
        assert_eq!(codes(&lint("fn f() { todo!() }\n", "cli")), vec!["PA104"]);
        assert_eq!(codes(&lint("fn f() { unimplemented!() }\n", "sim")), vec!["PA104"]);
    }

    #[test]
    fn must_use_presence_checked() {
        let missing = "/// Docs.\n#[derive(Debug)]\npub struct Solution {\n    x: u8,\n}\n";
        let report = lint(missing, "lp");
        assert_eq!(codes(&report), vec!["PA105"]);
        let present =
            "/// Docs.\n#[must_use]\n#[derive(Debug)]\npub struct Solution {\n    x: u8,\n}\n";
        assert!(lint(present, "lp").is_empty());
        // Other crates' types of the same name are not checked.
        assert!(lint(missing, "net").is_empty());
        // Prefix names must not match (identifier tokens, not substrings).
        assert!(lint("pub struct SolutionMap {}\n", "lp").is_empty());
    }
}
