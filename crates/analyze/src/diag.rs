//! The diagnostic engine shared by both analysis fronts.
//!
//! Diagnostics follow the rustc shape — a level, a stable code, a location,
//! a message, and an optional help line — and render to either a human
//! `text` form or a line-oriented `json` form (one object per diagnostic)
//! that CI can postprocess without a JSON library.

use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Suspicious but not necessarily wrong; never fails a strict check.
    Warning,
    /// A structural defect: the model is malformed or the source violates a
    /// hard rule.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Warning => write!(f, "warning"),
            Level::Error => write!(f, "error"),
        }
    }
}

/// One finding, in rustc style: `level[code]: message` plus a location and
/// an optional help line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub level: Level,
    /// Stable `PAxxx` code (documented in `LINTS.md`).
    pub code: &'static str,
    /// Where the finding is anchored: `path:line` for source findings,
    /// `row #3` / `arc 0->2@5` / `var M[...]` for model findings.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix or silence it.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates an error-level diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            level: Level::Error,
            code,
            location: location.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Creates a warning-level diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            level: Level::Warning,
            code,
            location: location.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}\n  --> {}", self.level, self.code, self.message, self.location)?;
        if let Some(h) = &self.help {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics from one analysis run.
#[must_use = "a Report may carry errors that should fail the caller"]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every diagnostic of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Iterates the diagnostics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// `true` when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-level diagnostics.
    pub fn num_errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.level == Level::Error).count()
    }

    /// Number of warning-level diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.level == Level::Warning).count()
    }

    /// `true` when at least one diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.num_errors() > 0
    }

    /// `true` when a diagnostic with the given code is present.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the rustc-style text form, one block per diagnostic, followed
    /// by a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.num_errors(),
            self.num_warnings()
        ));
        out
    }

    /// Renders one JSON object per line:
    /// `{"level":"error","code":"PA001","location":"...","message":"...","help":...}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str("{\"level\":\"");
            out.push_str(&d.level.to_string());
            out.push_str("\",\"code\":\"");
            out.push_str(d.code);
            out.push_str("\",\"location\":\"");
            out.push_str(&escape_json(&d.location));
            out.push_str("\",\"message\":\"");
            out.push_str(&escape_json(&d.message));
            out.push_str("\",\"help\":");
            match &d.help {
                Some(h) => {
                    out.push('"');
                    out.push_str(&escape_json(h));
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_code_location_and_help() {
        let mut r = Report::new();
        r.push(
            Diagnostic::error("PA001", "arc 0->1@7", "arc outside the deadline window")
                .with_help("drop the variable"),
        );
        r.push(Diagnostic::warning("PA009", "model", "coefficient ratio 1e9"));
        let text = r.render_text();
        assert!(text.contains("error[PA001]: arc outside the deadline window"));
        assert!(text.contains("--> arc 0->1@7"));
        assert!(text.contains("help: drop the variable"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_rendering_escapes_and_line_orients() {
        let mut r = Report::new();
        r.push(Diagnostic::error("PA004", "row #1", "duplicate of \"row #0\""));
        let json = r.render_json();
        assert_eq!(json.lines().count(), 1);
        assert!(json.contains("\\\"row #0\\\""));
        assert!(json.contains("\"help\":null"));
    }

    #[test]
    fn counters() {
        let mut r = Report::new();
        assert!(r.is_empty() && !r.has_errors());
        r.push(Diagnostic::warning("PA007", "row #2", "empty row"));
        assert!(!r.has_errors() && r.has_code("PA007"));
        let mut other = Report::new();
        other.push(Diagnostic::error("PA006", "var x", "free column"));
        r.merge(other);
        assert!(r.has_errors());
        assert_eq!(r.len(), 2);
        assert_eq!(r.num_warnings(), 1);
    }
}
