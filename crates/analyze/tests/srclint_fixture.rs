//! The source scanner must flag every planted defect in the annotated bad
//! file — and nothing else — when the file is scanned as library crate `lp`.

use postcard_analyze::srclint::check_source;

#[test]
fn bad_source_fixture_is_fully_flagged() {
    let content = include_str!("fixtures/bad_source.rs");
    let report = check_source("fixtures/bad_source.rs", content, "lp");

    for code in ["PA101", "PA102", "PA103", "PA104", "PA105"] {
        assert!(report.has_code(code), "expected {code} in:\n{}", report.render_text());
    }
    // Exactly one finding per planted defect: the allow-annotated comparison
    // and the whole cfg(test) module must stay silent.
    assert_eq!(report.len(), 5, "unexpected findings:\n{}", report.render_text());
    assert_eq!(report.num_errors(), 3); // PA102, PA103, PA104
    assert_eq!(report.num_warnings(), 2); // PA101, PA105
}

#[test]
fn bad_source_fixture_is_clean_outside_library_crates() {
    let content = include_str!("fixtures/bad_source.rs");
    // In a non-library crate only PA101 and PA104 apply (PA105 only checks
    // `lp` types; PA102/PA103 only library crates).
    let report = check_source("fixtures/bad_source.rs", content, "cli");
    assert!(report.has_code("PA101"));
    assert!(report.has_code("PA104"));
    assert!(!report.has_code("PA102"));
    assert!(!report.has_code("PA103"));
    assert!(!report.has_code("PA105"));
}
