//! Property: the analyzer never flags a builder-produced problem.
//!
//! `build_postcard_problem` is the only sanctioned way to turn a workload
//! into an LP; every structural property the model passes check for (window
//! discipline, holdover arcs, row independence, bounded columns) holds by
//! construction. A finding on builder output is therefore a false positive
//! — this test keeps the analyzer's precision honest on randomized
//! instances, the mirror image of the malformed-fixture recall check.

use postcard_analyze::model::check_problem;
use postcard_core::{build_postcard_problem, PostcardConfig};
use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn instance(seed: u64, num_dcs: usize, num_files: usize) -> (Network, Vec<TransferRequest>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = Network::complete_with_prices(num_dcs, 500.0, |_, _| rng.gen_range(1.0..=10.0));
    let files = (0..num_files)
        .map(|k| {
            let src = rng.gen_range(0..num_dcs);
            let mut dst = rng.gen_range(0..num_dcs);
            while dst == src {
                dst = rng.gen_range(0..num_dcs);
            }
            TransferRequest::new(
                FileId(k as u64),
                DcId(src),
                DcId(dst),
                rng.gen_range(5.0..=80.0),
                rng.gen_range(1..=4),
                rng.gen_range(0..3),
            )
        })
        .collect();
    (network, files)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn builder_problems_pass_all_model_checks(
        seed in 0u64..5000,
        nf in 1usize..5,
        nd in 2usize..6,
        relay_bit in 0u8..2,
    ) {
        let relay = relay_bit == 1;
        let (network, files) = instance(seed, nd, nf);
        let ledger = TrafficLedger::new(nd);
        let config = PostcardConfig { allow_relay_storage: relay, ..PostcardConfig::default() };
        let problem = build_postcard_problem(&network, &files, &ledger, &config)
            .expect("complete network builds");
        let report = check_problem(&problem);
        prop_assert!(report.is_empty(), "false positives:\n{}", report.render_text());
    }

    #[test]
    fn empty_batches_also_pass(nd in 1usize..5) {
        let network = Network::complete(nd.max(2), 1.0, 10.0);
        let ledger = TrafficLedger::new(nd.max(2));
        let problem =
            build_postcard_problem(&network, &[], &ledger, &PostcardConfig::default())
                .expect("empty batch builds");
        let report = check_problem(&problem);
        prop_assert!(report.is_empty(), "false positives:\n{}", report.render_text());
    }
}
