//! Recall corpus for the PA2xx determinism & concurrency family.
//!
//! Each fixture under `tests/fixtures/determinism/` is a deliberately
//! nondeterministic source that must produce *exactly* its documented
//! diagnostics — the lines to flag carry a `//~ CODE` marker (the rustc
//! UI-test idiom), so the expectation lives next to the trigger and the
//! test cross-checks the multiset of `(code, line)` pairs precisely.
//! A stray extra finding (precision loss) fails just as hard as a missed
//! one (recall loss).

use postcard_analyze::determinism::check_fixture_coverage;
use postcard_analyze::srclint::check_source;
use std::path::Path;

/// `(code, line)` pairs expected from a fixture, read off its `//~` markers.
fn expected_from_markers(src: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            let code = line[pos + 3..].split_whitespace().next().unwrap_or("");
            // Prose that merely mentions the marker syntax is not a marker.
            if code.starts_with("PA") && code[2..].chars().all(|c| c.is_ascii_digit()) {
                out.push((code.to_string(), i + 1));
            }
        }
    }
    assert!(!out.is_empty(), "fixture has no //~ markers");
    out.sort();
    out
}

/// Lints `src` and asserts the findings match the fixture's markers exactly.
fn golden(label: &str, krate: &str, src: &str) {
    let report = check_source(label, src, krate);
    let mut got: Vec<(String, usize)> = report
        .iter()
        .map(|d| {
            let line = d
                .location
                .rsplit(':')
                .next()
                .and_then(|l| l.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("unparseable location {:?}", d.location));
            (d.code.to_string(), line)
        })
        .collect();
    got.sort();
    assert_eq!(got, expected_from_markers(src), "diagnostic mismatch for {label} (crate {krate})");
}

#[test]
fn pa201_fixture_exact_diagnostics() {
    golden("src/dashboard.rs", "runtime", include_str!("fixtures/determinism/pa201.rs"));
}

#[test]
fn pa202_fixture_exact_diagnostics() {
    golden("src/latency.rs", "runtime", include_str!("fixtures/determinism/pa202.rs"));
}

#[test]
fn pa203_fixture_exact_diagnostics() {
    golden("src/worker.rs", "runtime", include_str!("fixtures/determinism/pa203.rs"));
}

#[test]
fn pa204_fixture_exact_diagnostics() {
    golden("src/volumes.rs", "net", include_str!("fixtures/determinism/pa204.rs"));
}

#[test]
fn pa205_fixture_exact_diagnostics() {
    // The ledger filename puts the cast in PA205's billing scope.
    golden("src/ledger.rs", "net", include_str!("fixtures/determinism/pa205.rs"));
}

#[test]
fn pa206_fixture_exact_diagnostics() {
    golden("src/shard_run.rs", "runtime", include_str!("fixtures/determinism/pa206.rs"));
}

#[test]
fn pa207_fixture_exact_diagnostics() {
    golden("src/snapshot.rs", "runtime", include_str!("fixtures/determinism/pa207.rs"));
}

#[test]
fn pa208_fixture_uncovered_version_is_flagged() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pa208_root");
    let report = check_fixture_coverage(&root);
    let codes: Vec<_> = report.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec!["PA208"], "pa208_root must yield exactly one PA208");
    let d = report.iter().next().unwrap();
    assert!(
        d.location.contains("snapshot_v9"),
        "PA208 must anchor to the uncovered fixture file, got {:?}",
        d.location
    );
}

#[test]
fn fixtures_are_silent_outside_determinism_crates() {
    // The PA2xx family is scoped to the determinism-critical crates: the
    // same sources lint clean under a bench/tool crate name.
    for src in [
        include_str!("fixtures/determinism/pa201.rs"),
        include_str!("fixtures/determinism/pa202.rs"),
        include_str!("fixtures/determinism/pa203.rs"),
        include_str!("fixtures/determinism/pa204.rs"),
        include_str!("fixtures/determinism/pa206.rs"),
        include_str!("fixtures/determinism/pa207.rs"),
    ] {
        let report = check_source("src/tool.rs", src, "bench");
        assert!(
            report.is_empty(),
            "PA2xx fired outside determinism crates: {}",
            report.render_text()
        );
    }
}
