//! PA208 recall fixture: this mini-workspace's probe tests mention only
//! version 8 — the committed version-9 snapshot fixture is uncovered.

const PROBED: &str = "snapshot_v8.json";
