//! PA207 recall fixture: nondeterminism taint one call-graph hop into a
//! snapshot writer. Deliberately wrong — never compiled, only linted. The
//! helper is silent on its own (not an output function), but a
//! snapshot-writing caller inherits its hash-order dependence.

use std::collections::HashMap;

/// Any key — hash-order dependent.
fn first_key(m: &HashMap<u64, u64>) -> Option<u64> {
    m.keys().next().copied()
}

/// Writes a snapshot header keyed by whatever `first_key` returned.
pub fn write_snapshot_header(m: &HashMap<u64, u64>, out: &mut String) {
    if let Some(k) = first_key(m) { //~ PA207
        out.push_str(&k.to_string());
    }
}
