//! PA202 recall fixture: wall-clock read outside the sanctioned Clock
//! seam. Deliberately nondeterministic — never compiled, only linted.

use std::time::Instant;

/// Samples solve latency for an ad-hoc log line — bypassing clock.rs means
/// a resumed run observes different elapsed times than the original.
pub fn sample_latency() -> f64 {
    let started = Instant::now(); //~ PA202
    started.elapsed().as_secs_f64()
}
