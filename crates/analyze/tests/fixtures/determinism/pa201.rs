//! PA201 recall fixture: HashMap iteration reaches ordered output without
//! a sort. Deliberately nondeterministic — never compiled, only linted.
//! Lines carrying a tilde marker must be flagged with exactly that code.

use std::collections::HashMap;

/// Renders per-DC totals for the ops dashboard — ordered output, so the
/// hash-order iteration makes the rendered bytes differ run-to-run.
pub fn render_totals(totals: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (dc, total) in totals.iter() { //~ PA201
        out.push_str(dc);
        let _ = total;
    }
    out
}
