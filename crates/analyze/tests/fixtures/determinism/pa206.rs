//! PA206 recall fixture: lock guard held across a solve call.
//! Deliberately wrong — never compiled, only linted. A solve can run for
//! the whole slot budget; holding the ledger lock across it serializes
//! every other shard.

use std::sync::Mutex;

/// Runs one shard's solve while (wrongly) holding the ledger lock.
pub fn run_shard(ledger: &Mutex<u64>, batch: u64) -> u64 {
    let guard = ledger.lock();
    solve_shard(batch) //~ PA206
}

fn solve_shard(batch: u64) -> u64 {
    batch
}
