//! PA203 recall fixture: ad-hoc thread spawn and a completion-order
//! channel merge. Deliberately nondeterministic — never compiled, only
//! linted. Expected: one PA203 at the spawn, one at the receive.

use std::sync::mpsc::Receiver;

/// Accumulates shard results in whatever order they arrive — the result
/// of the merge depends on thread scheduling.
pub fn merge_results(rx: Receiver<u64>) -> u64 {
    std::thread::spawn(|| ()); //~ PA203
    let mut acc = 0;
    while let Ok(v) = rx.recv() { //~ PA203
        acc += v;
    }
    acc
}
