//! PA205 recall fixture: lossy `as` cast in billing arithmetic (linted
//! under a ledger filename). Deliberately wrong — never compiled, only
//! linted. Truncating money silently loses fractional cents.

/// Converts a bill in dollars to whole cents.
pub fn bill_cents(dollars: f64) -> u32 {
    (dollars * 100.0) as u32 //~ PA205
}
