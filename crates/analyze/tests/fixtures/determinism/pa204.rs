//! PA204 recall fixture: float reduction over an unordered collection.
//! Deliberately nondeterministic — never compiled, only linted. Float
//! addition is not associative, so summing in hash order perturbs low bits.

use std::collections::HashMap;

/// Total billed volume across DCs.
pub fn total_volume(per_dc: &HashMap<u64, f64>) -> f64 {
    per_dc.values().sum::<f64>() //~ PA204
}
