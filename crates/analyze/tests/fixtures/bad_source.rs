//! Deliberately bad source used by the scanner's fixture test. This file
//! lives under `tests/fixtures/`, which the workspace scan never visits —
//! it is only read as *data* by `srclint_fixture.rs`.

/// PA105: missing `#[must_use]` when scanned as crate `lp`.
#[derive(Debug)]
pub struct Solution {
    objective: f64,
}

pub fn pa101_float_eq(x: f64) -> bool {
    x == 0.0
}

pub fn pa102_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn pa103_panic() {
    panic!("boom");
}

pub fn pa104_todo() {
    todo!()
}

pub fn suppressed(x: f64) -> bool {
    // postcard-analyze: allow(PA101) — intended bit-exact comparison.
    x == 1.0
}

#[cfg(test)]
mod tests {
    // Inside cfg(test): none of these may be reported.
    fn fine() {
        let v: Option<u32> = None;
        let _ = v.unwrap_or_default();
        let _ = 1.0_f64 == 2.0;
    }
}
