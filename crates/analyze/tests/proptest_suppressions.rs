//! Property: a `// postcard-analyze: allow(PAxxx)` comment silences
//! *exactly* the named lint — PAyyy with `y != x` neither silences the
//! finding nor conjures new ones.
//!
//! Each case is a minimal single-finding source with a `//~` marker on its
//! trigger line; the property inserts a standalone allow directive for a
//! (possibly different) randomly chosen code directly above the trigger
//! and checks the finding survives iff the codes differ. This pins the
//! suppression plumbing (directive parsing, line attribution, per-code
//! matching) across both the PA1xx and PA2xx families.

use postcard_analyze::srclint::check_source;
use proptest::prelude::*;

struct Case {
    code: &'static str,
    label: &'static str,
    krate: &'static str,
    src: &'static str,
}

const CASES: &[Case] = &[
    Case {
        code: "PA101",
        label: "src/x.rs",
        krate: "lp",
        src: "pub fn near(a: f64) -> bool {\n    a == 0.5 //~\n}\n",
    },
    Case {
        code: "PA102",
        label: "src/x.rs",
        krate: "lp",
        src: "pub fn get(v: Vec<u64>) -> u64 {\n    v.first().copied().unwrap() //~\n}\n",
    },
    Case {
        code: "PA201",
        label: "src/x.rs",
        krate: "runtime",
        src: "use std::collections::HashMap;\npub fn render(m: &HashMap<u64, u64>) -> String {\n    let mut out = String::new();\n    for (_k, _v) in m.iter() {} //~\n    out\n}\n",
    },
    Case {
        code: "PA202",
        label: "src/x.rs",
        krate: "runtime",
        src: "pub fn f() -> u64 {\n    let _t = Instant::now(); //~\n    0\n}\n",
    },
    Case {
        code: "PA203",
        label: "src/x.rs",
        krate: "runtime",
        src: "pub fn f() {\n    std::thread::spawn(|| ()); //~\n}\n",
    },
    Case {
        code: "PA204",
        label: "src/x.rs",
        krate: "net",
        src: "use std::collections::HashMap;\npub fn total(m: &HashMap<u64, f64>) -> f64 {\n    m.values().sum::<f64>() //~\n}\n",
    },
    Case {
        code: "PA205",
        label: "src/ledger.rs",
        krate: "net",
        src: "pub fn cents(d: f64) -> u32 {\n    (d * 100.0) as u32 //~\n}\n",
    },
    Case {
        code: "PA206",
        label: "src/x.rs",
        krate: "runtime",
        src: "pub fn run(m: &std::sync::Mutex<u64>) -> u64 {\n    let _guard = m.lock();\n    solve(3) //~\n}\nfn solve(x: u64) -> u64 { x }\n",
    },
    Case {
        code: "PA207",
        label: "src/x.rs",
        krate: "runtime",
        src: "use std::collections::HashMap;\nfn any_key(m: &HashMap<u64, u64>) -> Option<u64> {\n    m.keys().next().copied()\n}\npub fn write_snapshot(m: &HashMap<u64, u64>) -> Option<u64> {\n    any_key(m) //~\n}\n",
    },
];

/// Inserts a standalone allow directive directly above the `//~` line.
fn with_allow(src: &str, code: &str) -> String {
    let mut out = String::new();
    for line in src.lines() {
        if line.contains("//~") {
            out.push_str(&format!("    // postcard-analyze: allow({code}) — test\n"));
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

proptest! {
    #[test]
    fn allow_silences_exactly_its_lint(
        case_idx in 0..CASES.len(),
        allow_idx in 0..CASES.len(),
    ) {
        let case = &CASES[case_idx];
        let allow_code = CASES[allow_idx].code;
        let patched = with_allow(case.src, allow_code);
        let report = check_source(case.label, &patched, case.krate);
        let still_fires = report.iter().any(|d| d.code == case.code);
        prop_assert_eq!(
            still_fires,
            allow_code != case.code,
            "case {} with allow({}) — report:\n{}",
            case.code, allow_code, report.render_text()
        );
        // The directive must never introduce findings of other codes.
        for d in report.iter() {
            prop_assert_eq!(d.code, case.code, "unexpected {} in case {}", d.code, case.code);
        }
    }
}

#[test]
fn every_case_fires_unsuppressed() {
    for case in CASES {
        let report = check_source(case.label, case.src, case.krate);
        let codes: Vec<_> = report.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![case.code], "case {} baseline", case.code);
    }
}
