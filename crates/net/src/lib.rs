//! # postcard-net — the inter-datacenter network substrate
//!
//! Everything the [Postcard](https://doi.org/10.1109/ICDCS.2012.39)
//! reproduction needs to *describe* an inter-datacenter network and its
//! traffic, independent of any particular optimization algorithm:
//!
//! * [`Network`] — geographically distributed datacenters connected by
//!   directed overlay links, each with a per-slot capacity `c_ij` and a unit
//!   price `a_ij` (paper Sec. III);
//! * [`TransferRequest`] — the paper's four-tuple `(s_k, d_k, F_k, T_k)`
//!   describing one delay-tolerant inter-datacenter *file*;
//! * [`TimeExpandedGraph`] — the Ford–Fulkerson time expansion of Sec. V:
//!   one virtual node per datacenter per slot boundary, transit arcs between
//!   consecutive layers, and zero-cost infinite-capacity *storage* arcs
//!   `i^n → i^{n+1}` expressing store-and-forward;
//! * [`PercentileScheme`] and cost functions — the q-th percentile charging
//!   model of Sec. II-A (the paper's evaluation uses `q = 100`);
//! * [`TrafficLedger`] — per-slot, per-link traffic volumes with charged
//!   volume tracking `X_ij(t)` and residual capacities;
//! * [`TransferPlan`] — the decision tensor `M_ij^k(n)` with full validation
//!   (capacity, conservation, deadlines) and cost evaluation.
//!
//! All volumes are in **GB**, all times in **slots** (one slot = the 5-minute
//! charging interval `t̄`), and all prices in **$ / GB**, matching the
//! paper's evaluation setup.
//!
//! # Example
//!
//! Build a network, record some traffic, and read the bill:
//!
//! ```
//! use postcard_net::{DcId, NetworkBuilder, TrafficLedger};
//!
//! let network = NetworkBuilder::new(2)
//!     .link(DcId(0), DcId(1), 2.0, 100.0) // $2/GB, 100 GB per slot
//!     .build();
//! let mut ledger = TrafficLedger::new(2);
//! ledger.record(DcId(0), DcId(1), 0, 30.0);
//! ledger.record(DcId(0), DcId(1), 1, 10.0);
//! // 100-th percentile charging: the peak (30 GB) sets the bill.
//! assert_eq!(ledger.cost_per_slot(&network), 60.0);
//! // Slot 1 idles 20 GB under the paid peak — free capacity to time-shift
//! // into, which is the whole point of Postcard.
//! assert_eq!(ledger.peak(DcId(0), DcId(1)) - ledger.volume(DcId(0), DcId(1), 1), 20.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod charging;
mod file;
mod ledger;
pub mod paths;
mod plan;
mod timeexp;
mod topology;

pub use charging::{
    ChargingScheme, CostFunction, LinearCost, PercentileScheme, PiecewiseLinearCost,
};
pub use file::{FileId, TransferRequest, TENANT_BITS};
pub use ledger::TrafficLedger;
pub use plan::{PlanEntry, PlanViolation, TransferPlan};
pub use timeexp::{Arc, ArcId, ArcKind, TimeExpandedGraph, TimeNode};
pub use topology::{DcId, LinkView, Network, NetworkBuilder};

/// Numeric tolerance for plan validation and conservation checks.
pub const VOLUME_TOL: f64 = 1e-6;
