//! Percentile-based charging schemes and cost functions.
//!
//! ISPs charge inter-datacenter traffic with the *q-th percentile* scheme
//! (paper Sec. II-A): the per-slot traffic volumes of a charging period are
//! sorted ascending and the volume at the q-th percentile position becomes
//! the *charging volume* `x`, priced through a non-decreasing piece-wise
//! linear cost function `c(x)`. The paper's formulation and evaluation use
//! `q = 100` (the maximum) with a linear cost `c(x) = a · x`.

use serde::{Deserialize, Serialize};

/// A non-decreasing cost function mapping a charged volume (GB) to dollars.
///
/// The trait is sealed by convention to the two shapes the paper discusses:
/// linear and piece-wise linear; user types may implement it for custom
/// tariffs.
pub trait CostFunction: std::fmt::Debug {
    /// Cost in dollars of a charged volume `x ≥ 0`.
    fn cost(&self, x: f64) -> f64;
}

/// `c(x) = rate · x` — the flat per-GB price used throughout the paper's
/// examples and evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    /// Price per GB.
    pub rate: f64,
}

impl LinearCost {
    /// Creates a linear cost function.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite and non-negative");
        Self { rate }
    }
}

impl CostFunction for LinearCost {
    fn cost(&self, x: f64) -> f64 {
        self.rate * x
    }
}

/// A piece-wise linear, non-decreasing cost function given by breakpoints.
///
/// Segment `i` applies between `breakpoints[i].0` and `breakpoints[i+1].0`
/// with slope `breakpoints[i].1`. A typical volume-discount tariff:
///
/// ```
/// use postcard_net::{CostFunction, PiecewiseLinearCost};
/// // First 100 GB at $5/GB, beyond that $3/GB.
/// let c = PiecewiseLinearCost::new(vec![(0.0, 5.0), (100.0, 3.0)]);
/// assert_eq!(c.cost(50.0), 250.0);
/// assert_eq!(c.cost(150.0), 500.0 + 150.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinearCost {
    /// `(volume threshold, slope beyond it)`, thresholds strictly increasing
    /// starting at 0, slopes non-negative.
    breakpoints: Vec<(f64, f64)>,
}

impl PiecewiseLinearCost {
    /// Creates a piece-wise linear cost function.
    ///
    /// # Panics
    ///
    /// Panics if `breakpoints` is empty, does not start at volume 0, has
    /// non-increasing thresholds, or has a negative slope (the function must
    /// be non-decreasing, as the paper requires).
    pub fn new(breakpoints: Vec<(f64, f64)>) -> Self {
        assert!(!breakpoints.is_empty(), "need at least one segment");
        assert_eq!(breakpoints[0].0, 0.0, "first threshold must be 0");
        for w in breakpoints.windows(2) {
            assert!(w[1].0 > w[0].0, "thresholds must be strictly increasing");
        }
        assert!(
            breakpoints.iter().all(|&(_, s)| s >= 0.0 && s.is_finite()),
            "slopes must be finite and non-negative"
        );
        Self { breakpoints }
    }

    /// Number of linear segments.
    pub fn num_segments(&self) -> usize {
        self.breakpoints.len()
    }
}

impl CostFunction for PiecewiseLinearCost {
    fn cost(&self, x: f64) -> f64 {
        let mut total = 0.0;
        for (i, &(lo, slope)) in self.breakpoints.iter().enumerate() {
            if x <= lo {
                break;
            }
            let hi = self.breakpoints.get(i + 1).map_or(f64::INFINITY, |b| b.0);
            total += slope * (x.min(hi) - lo);
        }
        total
    }
}

/// The q-th percentile charging scheme.
///
/// With per-slot volumes `v_1..v_I` of a charging period sorted ascending,
/// the charged volume is the entry at 1-based rank `⌈q/100 · I⌉` (so `q=100`
/// charges the maximum, the setting the paper's formulation optimizes for,
/// and `q=95` discards the top 5 % of slots).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PercentileScheme {
    /// The percentile `q ∈ (0, 100]`.
    pub q: f64,
}

impl PercentileScheme {
    /// The 95-th percentile scheme predominant in practice (Sec. II-A).
    pub const P95: PercentileScheme = PercentileScheme { q: 95.0 };
    /// The 100-th percentile (maximum) scheme used by the paper's
    /// formulation and evaluation.
    pub const MAX: PercentileScheme = PercentileScheme { q: 100.0 };

    /// Creates a scheme.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q ≤ 100`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q <= 100.0, "percentile must be in (0, 100]");
        Self { q }
    }

    /// Charged volume of a (not necessarily sorted) slice of per-slot
    /// volumes; 0 for an empty slice.
    ///
    /// Selects the charged rank with `select_nth_unstable_by` — O(I) per
    /// call instead of the O(I log I) full sort, which matters because
    /// [`crate::TrafficLedger::cost_per_slot_with`] runs this for every
    /// link every slot. Selection with the same `total_cmp` order picks the
    /// identical element a sort would place at the charged index.
    pub fn charged_volume(&self, volumes: &[f64]) -> f64 {
        if volumes.is_empty() {
            return 0.0;
        }
        let mut work = volumes.to_vec();
        // postcard-analyze: allow(PA205) — rank lives in (0, len]: q is
        // asserted ≤ 100 so the product is ≤ len, ceil of a positive value
        // is ≥ 1, and the clamp below re-establishes the bound even for
        // pathological float rounding. The cast picks an index, not money.
        let rank = ((self.q / 100.0) * work.len() as f64).ceil() as usize;
        let index = rank.clamp(1, work.len()) - 1;
        *work.select_nth_unstable_by(index, |a, b| a.total_cmp(b)).1
    }

    /// The 1-based sorted rank charged for a period of `num_slots` slots.
    ///
    /// For the paper's example — 95-th percentile over a year of 5-minute
    /// slots — this is slot 99864:
    ///
    /// ```
    /// use postcard_net::PercentileScheme;
    /// let slots = 365 * 24 * 60 / 5;
    /// assert_eq!(PercentileScheme::P95.charged_rank(slots), 99864);
    /// ```
    pub fn charged_rank(&self, num_slots: usize) -> usize {
        if num_slots == 0 {
            return 0;
        }
        // postcard-analyze: allow(PA205) — same bound as charged_volume:
        // q ∈ (0, 100] keeps the product in (0, num_slots] and the clamp
        // makes the truncation harmless; the result is a rank, not a bill.
        (((self.q / 100.0) * num_slots as f64).ceil() as usize).clamp(1, num_slots)
    }
}

/// How a link's traffic series turns into billed volume.
///
/// `MaxPerSlot` is the paper formulation's objective (`X_ij ≥ x_ij(t)` for
/// every slot — equivalently the 100th percentile over the whole horizon)
/// and what the repo has always charged. `Percentile` is real transit
/// billing (Sec. II-A): the horizon splits into aligned windows
/// `[k·W, (k+1)·W)` of `window_slots` slots each, and every window is
/// charged independently at the q-th percentile of its per-slot volumes —
/// the top `(100−q)%` of each window's slots are *free*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChargingScheme {
    /// Charge the running per-slot maximum over the whole horizon.
    MaxPerSlot,
    /// q-th percentile charging over aligned billing windows.
    Percentile {
        /// The percentile `q ∈ (0, 100]`.
        q: f64,
        /// Billing window length in slots, ≥ 1.
        window_slots: usize,
    },
}

impl ChargingScheme {
    /// Parses a CLI spec: `max`, or `p<q>:<window>` (e.g. `p95:288` for the
    /// 95-th percentile over 288-slot windows).
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "max" {
            return Ok(ChargingScheme::MaxPerSlot);
        }
        let body = spec
            .strip_prefix('p')
            .ok_or_else(|| format!("bad charging spec `{spec}` (want `max` or `p<q>:<window>`)"))?;
        let (q_str, w_str) = body
            .split_once(':')
            .ok_or_else(|| format!("bad charging spec `{spec}` (want `max` or `p<q>:<window>`)"))?;
        let q: f64 = q_str.parse().map_err(|_| format!("bad percentile in `{spec}`"))?;
        if !(q > 0.0 && q <= 100.0) {
            return Err(format!("percentile in `{spec}` must be in (0, 100]"));
        }
        let window_slots: usize =
            w_str.parse().map_err(|_| format!("bad window length in `{spec}`"))?;
        if window_slots == 0 {
            return Err(format!("window length in `{spec}` must be ≥ 1"));
        }
        Ok(ChargingScheme::Percentile { q, window_slots })
    }

    /// The canonical spec string `parse` round-trips.
    pub fn spec(&self) -> String {
        match self {
            ChargingScheme::MaxPerSlot => "max".to_string(),
            ChargingScheme::Percentile { q, window_slots } => format!("p{q}:{window_slots}"),
        }
    }

    /// The per-window percentile scheme; `MaxPerSlot` degenerates to q=100.
    pub fn percentile(&self) -> PercentileScheme {
        match self {
            ChargingScheme::MaxPerSlot => PercentileScheme::MAX,
            ChargingScheme::Percentile { q, .. } => PercentileScheme::new(*q),
        }
    }

    /// Billing window length in slots; `MaxPerSlot` has a single unbounded
    /// window, reported as `usize::MAX`.
    pub fn window_slots(&self) -> usize {
        match self {
            ChargingScheme::MaxPerSlot => usize::MAX,
            ChargingScheme::Percentile { window_slots, .. } => *window_slots,
        }
    }

    /// First slot of the aligned billing window containing `slot`.
    pub fn window_start(&self, slot: u64) -> u64 {
        match self {
            ChargingScheme::MaxPerSlot => 0,
            ChargingScheme::Percentile { window_slots, .. } => {
                let w = *window_slots as u64;
                (slot / w) * w
            }
        }
    }

    /// Number of *free* slots per billing window — slots whose volume the
    /// percentile rank discards. Zero for `MaxPerSlot` (and for q=100).
    pub fn free_slots(&self) -> usize {
        match self {
            ChargingScheme::MaxPerSlot => 0,
            ChargingScheme::Percentile { window_slots, .. } => {
                window_slots - self.percentile().charged_rank(*window_slots)
            }
        }
    }
}

impl std::fmt::Display for ChargingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost() {
        let c = LinearCost::new(2.5);
        assert_eq!(c.cost(4.0), 10.0);
        assert_eq!(c.cost(0.0), 0.0);
    }

    #[test]
    fn piecewise_cost_continuity() {
        let c = PiecewiseLinearCost::new(vec![(0.0, 5.0), (100.0, 3.0), (200.0, 1.0)]);
        assert_eq!(c.cost(100.0), 500.0);
        assert!((c.cost(100.0 + 1e-9) - 500.0).abs() < 1e-6);
        assert_eq!(c.cost(250.0), 500.0 + 300.0 + 50.0);
        assert_eq!(c.num_segments(), 3);
    }

    #[test]
    fn piecewise_is_non_decreasing() {
        let c = PiecewiseLinearCost::new(vec![(0.0, 2.0), (10.0, 0.0), (20.0, 4.0)]);
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.5;
            let v = c.cost(x);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_rejects_bad_thresholds() {
        PiecewiseLinearCost::new(vec![(0.0, 1.0), (0.0, 2.0)]);
    }

    #[test]
    fn max_percentile_charges_maximum() {
        let s = PercentileScheme::MAX;
        assert_eq!(s.charged_volume(&[3.0, 9.0, 1.0]), 9.0);
        assert_eq!(s.charged_volume(&[]), 0.0);
    }

    #[test]
    fn p95_discards_top_slots() {
        // 20 slots, one huge spike: p95 charges the 19th sorted slot.
        let mut v = vec![1.0; 19];
        v.push(1000.0);
        assert_eq!(PercentileScheme::P95.charged_volume(&v), 1.0);
        // Two spikes in 20 slots: the 19th sorted value is the smaller spike.
        let mut v = vec![1.0; 18];
        v.push(500.0);
        v.push(1000.0);
        assert_eq!(PercentileScheme::P95.charged_volume(&v), 500.0);
    }

    #[test]
    fn paper_example_rank() {
        // 95% × 365 × 24 × 60 / 5 = 99864 (paper Sec. II-A).
        assert_eq!(PercentileScheme::P95.charged_rank(105120), 99864);
    }

    #[test]
    fn median_percentile() {
        let s = PercentileScheme::new(50.0);
        assert_eq!(s.charged_volume(&[1.0, 2.0, 3.0, 4.0]), 2.0);
        assert_eq!(s.charged_volume(&[5.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be")]
    fn zero_percentile_rejected() {
        PercentileScheme::new(0.0);
    }

    #[test]
    fn charging_scheme_parse_round_trip() {
        assert_eq!(ChargingScheme::parse("max").unwrap(), ChargingScheme::MaxPerSlot);
        let p = ChargingScheme::parse("p95:288").unwrap();
        assert_eq!(p, ChargingScheme::Percentile { q: 95.0, window_slots: 288 });
        assert_eq!(p.spec(), "p95:288");
        assert_eq!(ChargingScheme::parse(&p.spec()).unwrap(), p);
        assert_eq!(ChargingScheme::MaxPerSlot.spec(), "max");
    }

    #[test]
    fn charging_scheme_rejects_bad_specs() {
        for bad in ["", "p95", "p0:10", "p101:10", "p95:0", "p95:x", "px:10", "q95:10"] {
            assert!(ChargingScheme::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn charging_scheme_windows_and_free_slots() {
        let p = ChargingScheme::Percentile { q: 95.0, window_slots: 48 };
        // ⌈0.95 · 48⌉ = 46, so 2 of every 48 slots are free.
        assert_eq!(p.free_slots(), 2);
        assert_eq!(p.window_start(0), 0);
        assert_eq!(p.window_start(47), 0);
        assert_eq!(p.window_start(48), 48);
        assert_eq!(p.window_start(143), 96);
        let max = ChargingScheme::MaxPerSlot;
        assert_eq!(max.free_slots(), 0);
        assert_eq!(max.window_start(1_000_000), 0);
        // q=100 percentile billing has no free slots either.
        let p100 = ChargingScheme::Percentile { q: 100.0, window_slots: 10 };
        assert_eq!(p100.free_slots(), 0);
    }
}
