//! Price-weighted path utilities on the inter-datacenter overlay.
//!
//! The flow-based narratives in the paper revolve around *cheapest* and
//! *cheapest available* paths (Fig. 1, Fig. 3); this module provides the
//! shared machinery: Dijkstra over link prices with an arbitrary usability
//! filter, and Yen's algorithm for the k cheapest loopless paths.

use crate::topology::{DcId, Network};

/// A loopless path with its total price per GB.
#[derive(Debug, Clone, PartialEq)]
pub struct PricedPath {
    /// The hops as `(from, to)` pairs, source to destination.
    pub hops: Vec<(DcId, DcId)>,
    /// Sum of link prices along the path ($/GB).
    pub price: f64,
}

impl PricedPath {
    /// The nodes visited, source first.
    pub fn nodes(&self) -> Vec<DcId> {
        let mut out = Vec::with_capacity(self.hops.len() + 1);
        if let Some(&(first, _)) = self.hops.first() {
            out.push(first);
        }
        out.extend(self.hops.iter().map(|&(_, to)| to));
        out
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// `true` for the degenerate empty path.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// Cheapest (by price) path from `src` to `dst` over links for which
/// `usable` returns `true`. Returns `None` when `dst` is unreachable or
/// `src == dst`.
pub fn cheapest_path(
    network: &Network,
    src: DcId,
    dst: DcId,
    mut usable: impl FnMut(DcId, DcId) -> bool,
) -> Option<PricedPath> {
    if src == dst {
        return None;
    }
    let n = network.num_dcs();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut done = vec![false; n];
    dist[src.0] = 0.0;
    loop {
        let u = (0..n)
            .filter(|&u| !done[u] && dist[u].is_finite())
            .min_by(|&a, &b| dist[a].total_cmp(&dist[b]))?;
        if u == dst.0 {
            break;
        }
        done[u] = true;
        for v in network.neighbors_out(DcId(u)) {
            if done[v.0] || !usable(DcId(u), v) {
                continue;
            }
            let Some(w) = network.price(DcId(u), v) else { continue };
            if dist[u] + w < dist[v.0] - 1e-15 {
                dist[v.0] = dist[u] + w;
                prev[v.0] = Some(u);
            }
        }
    }
    let mut hops = Vec::new();
    let mut v = dst.0;
    while v != src.0 {
        let u = prev[v]?;
        hops.push((DcId(u), DcId(v)));
        v = u;
    }
    hops.reverse();
    Some(PricedPath { price: dist[dst.0], hops })
}

/// The `k` cheapest loopless paths from `src` to `dst` (Yen's algorithm),
/// cheapest first. Returns fewer than `k` when the graph runs out of
/// distinct paths.
pub fn k_cheapest_paths(network: &Network, src: DcId, dst: DcId, k: usize) -> Vec<PricedPath> {
    let mut found: Vec<PricedPath> = Vec::new();
    let Some(first) = cheapest_path(network, src, dst, |_, _| true) else {
        return found;
    };
    found.push(first);
    let mut candidates: Vec<PricedPath> = Vec::new();

    while found.len() < k {
        let Some(last) = found.last().cloned() else { break };
        let last_nodes = last.nodes();
        for spur_idx in 0..last.hops.len() {
            let spur_node = last_nodes[spur_idx];
            let root: &[(DcId, DcId)] = &last.hops[..spur_idx];
            // Links removed: the next hop of every found path sharing this
            // root, plus (to keep paths loopless) every root node.
            let removed_links: Vec<(DcId, DcId)> = found
                .iter()
                .filter(|p| p.hops.len() > spur_idx && p.hops[..spur_idx] == *root)
                .map(|p| p.hops[spur_idx])
                .collect();
            let root_nodes: Vec<DcId> = last_nodes[..spur_idx].to_vec();
            let spur = cheapest_path(network, spur_node, dst, |u, v| {
                !removed_links.contains(&(u, v))
                    && !root_nodes.contains(&v)
                    && !root_nodes.contains(&u)
            });
            if let Some(spur) = spur {
                let mut hops = root.to_vec();
                hops.extend(spur.hops);
                let price: f64 = hops
                    .iter()
                    // postcard-analyze: allow(PA102) — hops are copied from
                    // already-found paths over the same immutable network.
                    .map(|&(u, v)| network.price(u, v).expect("hop on existing link"))
                    .sum();
                let candidate = PricedPath { hops, price };
                if !found.contains(&candidate) && !candidates.contains(&candidate) {
                    candidates.push(candidate);
                }
            }
        }
        candidates.sort_by(|a, b| a.price.total_cmp(&b.price));
        if candidates.is_empty() {
            break;
        }
        found.push(candidates.remove(0));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NetworkBuilder;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// Diamond: 0→1→3 (1+1), 0→2→3 (2+2), 0→3 (5).
    fn diamond() -> Network {
        NetworkBuilder::new(4)
            .link(d(0), d(1), 1.0, 1.0)
            .link(d(1), d(3), 1.0, 1.0)
            .link(d(0), d(2), 2.0, 1.0)
            .link(d(2), d(3), 2.0, 1.0)
            .link(d(0), d(3), 5.0, 1.0)
            .build()
    }

    #[test]
    fn cheapest_path_finds_the_relay() {
        let p = cheapest_path(&diamond(), d(0), d(3), |_, _| true).unwrap();
        assert_eq!(p.hops, vec![(d(0), d(1)), (d(1), d(3))]);
        assert_eq!(p.price, 2.0);
        assert_eq!(p.nodes(), vec![d(0), d(1), d(3)]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn filter_excludes_links() {
        let p = cheapest_path(&diamond(), d(0), d(3), |u, v| (u, v) != (d(1), d(3))).unwrap();
        assert_eq!(p.price, 4.0);
    }

    #[test]
    fn unreachable_is_none() {
        let net = NetworkBuilder::new(3).link(d(0), d(1), 1.0, 1.0).build();
        assert!(cheapest_path(&net, d(0), d(2), |_, _| true).is_none());
        assert!(cheapest_path(&net, d(0), d(0), |_, _| true).is_none());
    }

    #[test]
    fn yen_orders_three_paths() {
        let ps = k_cheapest_paths(&diamond(), d(0), d(3), 5);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].price, 2.0);
        assert_eq!(ps[1].price, 4.0);
        assert_eq!(ps[2].price, 5.0);
        // All loopless and distinct.
        for p in &ps {
            let nodes = p.nodes();
            let set: std::collections::BTreeSet<_> = nodes.iter().collect();
            assert_eq!(set.len(), nodes.len(), "loop in {nodes:?}");
        }
    }

    #[test]
    fn yen_respects_k() {
        assert_eq!(k_cheapest_paths(&diamond(), d(0), d(3), 2).len(), 2);
        assert_eq!(k_cheapest_paths(&diamond(), d(0), d(3), 1).len(), 1);
    }

    #[test]
    fn yen_on_complete_graph_is_loopless_and_sorted() {
        let net = Network::complete_with_prices(5, 1.0, |i, j| (1 + (i.0 * 5 + j.0) % 7) as f64);
        let ps = k_cheapest_paths(&net, d(0), d(4), 8);
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].price <= w[1].price + 1e-12);
        }
        for p in &ps {
            assert_eq!(p.hops.first().unwrap().0, d(0));
            assert_eq!(p.hops.last().unwrap().1, d(4));
            let nodes = p.nodes();
            let set: std::collections::BTreeSet<_> = nodes.iter().collect();
            assert_eq!(set.len(), nodes.len());
        }
        // Distinct paths.
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i].hops, ps[j].hops);
            }
        }
    }
}
