//! Inter-datacenter network topology.
//!
//! The paper models the network as a complete directed graph
//! `G = (V, E)` of datacenters operated by a single cloud provider, each
//! directed overlay link `{i, j}` carrying a per-slot capacity `c_ij` and a
//! non-negative cost per traffic unit `a_ij` (Sec. III). This module also
//! supports sparse (non-complete) topologies, used by the motivating
//! examples and by tests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a datacenter, dense and 0-based within its [`Network`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DcId(pub usize);

impl DcId {
    /// The dense index of this datacenter.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Parameters of one directed overlay link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LinkParams {
    /// Cost per traffic unit, `a_ij ≥ 0` ($ / GB).
    price: f64,
    /// Capacity per slot, `c_ij` (GB / slot); `f64::INFINITY` allowed.
    capacity: f64,
}

/// A read-only view of one directed link, yielded by [`Network::links`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkView {
    /// Tail datacenter.
    pub from: DcId,
    /// Head datacenter.
    pub to: DcId,
    /// Cost per traffic unit ($ / GB).
    pub price: f64,
    /// Capacity (GB / slot).
    pub capacity: f64,
}

/// A directed inter-datacenter overlay network.
///
/// Construct via [`Network::complete`] (the paper's setting) or
/// [`NetworkBuilder`] for arbitrary topologies:
///
/// ```
/// use postcard_net::{DcId, NetworkBuilder};
///
/// let net = NetworkBuilder::new(3)
///     .link(DcId(1), DcId(0), 1.0, f64::INFINITY) // price, capacity
///     .link(DcId(0), DcId(2), 3.0, f64::INFINITY)
///     .link(DcId(1), DcId(2), 10.0, f64::INFINITY)
///     .build();
/// assert_eq!(net.num_dcs(), 3);
/// assert_eq!(net.price(DcId(1), DcId(0)), Some(1.0));
/// assert_eq!(net.price(DcId(0), DcId(1)), None); // directed
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    n: usize,
    names: Vec<String>,
    /// Dense `n × n` adjacency; `None` on the diagonal and for absent links.
    links: Vec<Option<LinkParams>>,
}

impl Network {
    /// Creates a complete directed graph over `n` datacenters where every
    /// link has the given uniform price and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `price < 0`, or `capacity` is negative or NaN.
    pub fn complete(n: usize, price: f64, capacity: f64) -> Self {
        let mut b = NetworkBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    b = b.link(DcId(i), DcId(j), price, capacity);
                }
            }
        }
        b.build()
    }

    /// Creates a complete directed graph with per-link prices supplied by a
    /// function `(from, to) -> price` and a uniform capacity.
    ///
    /// This is the paper's evaluation setting: `a_ij ~ U[1, 10]` with
    /// `c_ij ∈ {30, 100}` GB per slot.
    pub fn complete_with_prices(
        n: usize,
        capacity: f64,
        mut price: impl FnMut(DcId, DcId) -> f64,
    ) -> Self {
        let mut b = NetworkBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    b = b.link(DcId(i), DcId(j), price(DcId(i), DcId(j)), capacity);
                }
            }
        }
        b.build()
    }

    /// Number of datacenters.
    pub fn num_dcs(&self) -> usize {
        self.n
    }

    /// Number of directed links present.
    pub fn num_links(&self) -> usize {
        self.links.iter().filter(|l| l.is_some()).count()
    }

    /// Iterates over all datacenter ids.
    pub fn dcs(&self) -> impl Iterator<Item = DcId> {
        (0..self.n).map(DcId)
    }

    /// Display name of a datacenter.
    pub fn dc_name(&self, dc: DcId) -> &str {
        &self.names[dc.0]
    }

    /// Renames a datacenter.
    ///
    /// # Panics
    ///
    /// Panics if `dc` is out of range.
    pub fn set_dc_name(&mut self, dc: DcId, name: impl Into<String>) {
        self.names[dc.0] = name.into();
    }

    /// `true` if the directed link `from → to` exists.
    pub fn has_link(&self, from: DcId, to: DcId) -> bool {
        from != to && self.params(from, to).is_some()
    }

    /// Price per GB of a link, if present.
    pub fn price(&self, from: DcId, to: DcId) -> Option<f64> {
        self.params(from, to).map(|p| p.price)
    }

    /// Capacity per slot of a link, if present.
    pub fn capacity(&self, from: DcId, to: DcId) -> Option<f64> {
        self.params(from, to).map(|p| p.capacity)
    }

    /// Iterates over present directed links.
    pub fn links(&self) -> impl Iterator<Item = LinkView> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                self.links[i * self.n + j].map(|p| LinkView {
                    from: DcId(i),
                    to: DcId(j),
                    price: p.price,
                    capacity: p.capacity,
                })
            })
        })
    }

    /// Out-neighbors of a datacenter.
    pub fn neighbors_out(&self, dc: DcId) -> impl Iterator<Item = DcId> + '_ {
        let i = dc.0;
        (0..self.n).filter(move |&j| self.links[i * self.n + j].is_some()).map(DcId)
    }

    /// In-neighbors of a datacenter.
    pub fn neighbors_in(&self, dc: DcId) -> impl Iterator<Item = DcId> + '_ {
        let j = dc.0;
        (0..self.n).filter(move |&i| self.links[i * self.n + j].is_some()).map(DcId)
    }

    /// Overwrites the capacity of an existing link. A capacity of `0.0` is
    /// allowed and models a full outage: the link stays in the topology (it
    /// keeps its price and may be billed for past peaks) but can carry no
    /// new traffic.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist or `capacity` is negative or NaN.
    pub fn set_capacity(&mut self, from: DcId, to: DcId, capacity: f64) {
        assert!(capacity >= 0.0, "capacity must be non-negative");
        let n = self.n;
        // postcard-analyze: allow(PA102) — documented panic contract (see
        // the `# Panics` section above).
        let slot = self.links[from.0 * n + to.0].as_mut().expect("link must exist");
        slot.capacity = capacity;
    }

    /// Overwrites the per-GB price of an existing link, modeling a mid-cycle
    /// tariff change. Volume already recorded keeps being billed at whatever
    /// price the ledger's cost queries see at evaluation time — the ledger
    /// stores volumes, not dollars.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist or `price` is negative or NaN.
    pub fn set_price(&mut self, from: DcId, to: DcId, price: f64) {
        assert!(price >= 0.0, "price must be non-negative");
        let n = self.n;
        // postcard-analyze: allow(PA102) — documented panic contract (see
        // the `# Panics` section above).
        let slot = self.links[from.0 * n + to.0].as_mut().expect("link must exist");
        slot.price = price;
    }

    fn params(&self, from: DcId, to: DcId) -> Option<&LinkParams> {
        if from.0 >= self.n || to.0 >= self.n {
            return None;
        }
        self.links[from.0 * self.n + to.0].as_ref()
    }

    /// Serializes the topology to CSV: a header line, then one
    /// `from,to,price,capacity` line per directed link (`inf` allowed for
    /// capacity). Datacenter names are not persisted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("from,to,price,capacity\n");
        for l in self.links() {
            out.push_str(&format!("{},{},{},{}\n", l.from.0, l.to.0, l.price, l.capacity));
        }
        out
    }

    /// Parses the CSV produced by [`Network::to_csv`]. The datacenter count
    /// is one past the largest id mentioned.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_csv(text: &str) -> Result<Network, String> {
        let mut rows: Vec<(usize, usize, f64, f64)> = Vec::new();
        let mut max_dc = 0usize;
        for (i, line) in text.lines().enumerate() {
            if (i == 0 && line.starts_with("from,")) || line.trim().is_empty() {
                continue;
            }
            let err = |m: &str| format!("network CSV line {}: {m}", i + 1);
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 4 {
                return Err(err("expected `from,to,price,capacity`"));
            }
            let from: usize = parts[0].trim().parse().map_err(|_| err("bad from"))?;
            let to: usize = parts[1].trim().parse().map_err(|_| err("bad to"))?;
            let price: f64 = parts[2].trim().parse().map_err(|_| err("bad price"))?;
            let capacity: f64 = match parts[3].trim() {
                "inf" | "INF" => f64::INFINITY,
                s => s.parse().map_err(|_| err("bad capacity"))?,
            };
            if from == to {
                return Err(err("self-loops are not links"));
            }
            if !price.is_finite() || price < 0.0 || capacity.is_nan() || capacity < 0.0 {
                return Err(err("price must be ≥ 0 and capacity ≥ 0"));
            }
            max_dc = max_dc.max(from).max(to);
            rows.push((from, to, price, capacity));
        }
        if rows.is_empty() {
            return Err("network CSV has no links".into());
        }
        let mut b = NetworkBuilder::new(max_dc + 1);
        for (from, to, price, capacity) in rows {
            b = b.link(DcId(from), DcId(to), price, capacity);
        }
        Ok(b.build())
    }
}

/// Incremental construction of a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    n: usize,
    names: Vec<String>,
    links: Vec<Option<LinkParams>>,
}

impl NetworkBuilder {
    /// Starts a builder for `n` datacenters with no links.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a network needs at least one datacenter");
        Self { n, names: (0..n).map(|i| format!("D{i}")).collect(), links: vec![None; n * n] }
    }

    /// Adds (or overwrites) the directed link `from → to`. A capacity of
    /// `0.0` is allowed (a fully degraded link — see
    /// [`Network::set_capacity`]) so snapshots of outage-degraded networks
    /// can be rebuilt.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop, out-of-range id, negative price, or
    /// negative/NaN capacity.
    pub fn link(mut self, from: DcId, to: DcId, price: f64, capacity: f64) -> Self {
        assert!(from != to, "self-loops are expressed as storage, not links");
        assert!(from.0 < self.n && to.0 < self.n, "datacenter id out of range");
        assert!(price >= 0.0 && price.is_finite(), "price must be finite and non-negative");
        assert!(capacity >= 0.0, "capacity must be non-negative");
        self.links[from.0 * self.n + to.0] = Some(LinkParams { price, capacity });
        self
    }

    /// Adds a symmetric pair of links with identical parameters.
    pub fn bidirectional(self, a: DcId, b: DcId, price: f64, capacity: f64) -> Self {
        self.link(a, b, price, capacity).link(b, a, price, capacity)
    }

    /// Names a datacenter.
    pub fn name(mut self, dc: DcId, name: impl Into<String>) -> Self {
        self.names[dc.0] = name.into();
        self
    }

    /// Finalizes the network.
    pub fn build(self) -> Network {
        Network { n: self.n, names: self.names, links: self.links }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_all_links() {
        let net = Network::complete(4, 2.0, 100.0);
        assert_eq!(net.num_dcs(), 4);
        assert_eq!(net.num_links(), 12);
        for i in net.dcs() {
            for j in net.dcs() {
                assert_eq!(net.has_link(i, j), i != j);
            }
        }
        assert_eq!(net.price(DcId(0), DcId(1)), Some(2.0));
        assert_eq!(net.capacity(DcId(3), DcId(2)), Some(100.0));
    }

    #[test]
    fn directed_links_are_independent() {
        let net = NetworkBuilder::new(2).link(DcId(0), DcId(1), 5.0, 10.0).build();
        assert!(net.has_link(DcId(0), DcId(1)));
        assert!(!net.has_link(DcId(1), DcId(0)));
        assert_eq!(net.num_links(), 1);
    }

    #[test]
    fn neighbors() {
        let net = NetworkBuilder::new(3)
            .link(DcId(0), DcId(1), 1.0, 1.0)
            .link(DcId(2), DcId(1), 1.0, 1.0)
            .build();
        let out: Vec<_> = net.neighbors_out(DcId(0)).collect();
        assert_eq!(out, vec![DcId(1)]);
        let inn: Vec<_> = net.neighbors_in(DcId(1)).collect();
        assert_eq!(inn, vec![DcId(0), DcId(2)]);
    }

    #[test]
    fn complete_with_prices_uses_function() {
        let net = Network::complete_with_prices(3, 50.0, |i, j| (i.0 * 10 + j.0) as f64);
        assert_eq!(net.price(DcId(1), DcId(2)), Some(12.0));
        assert_eq!(net.capacity(DcId(2), DcId(0)), Some(50.0));
    }

    #[test]
    fn names_default_and_custom() {
        let mut net = NetworkBuilder::new(2)
            .name(DcId(0), "us-east")
            .link(DcId(0), DcId(1), 1.0, 1.0)
            .build();
        assert_eq!(net.dc_name(DcId(0)), "us-east");
        assert_eq!(net.dc_name(DcId(1)), "D1");
        net.set_dc_name(DcId(1), "eu-west");
        assert_eq!(net.dc_name(DcId(1)), "eu-west");
    }

    #[test]
    fn set_capacity_overwrites() {
        let mut net = Network::complete(2, 1.0, 10.0);
        net.set_capacity(DcId(0), DcId(1), 33.0);
        assert_eq!(net.capacity(DcId(0), DcId(1)), Some(33.0));
        assert_eq!(net.capacity(DcId(1), DcId(0)), Some(10.0));
    }

    #[test]
    fn zero_capacity_models_full_outage() {
        // Capacity 0 is legal — the link keeps its price (and, upstream,
        // its billed past peaks) but can carry no new traffic — so fault
        // injection can kill a link and a snapshot of the degraded network
        // can rebuild.
        let mut net = Network::complete(2, 1.0, 10.0);
        net.set_capacity(DcId(0), DcId(1), 0.0);
        assert_eq!(net.capacity(DcId(0), DcId(1)), Some(0.0));
        assert_eq!(net.price(DcId(0), DcId(1)), Some(1.0));
        let rebuilt = NetworkBuilder::new(2).link(DcId(0), DcId(1), 1.0, 0.0).build();
        assert_eq!(rebuilt.capacity(DcId(0), DcId(1)), Some(0.0));
        let round = Network::from_csv(&rebuilt.to_csv()).unwrap();
        assert_eq!(round.capacity(DcId(0), DcId(1)), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let mut net = Network::complete(2, 1.0, 10.0);
        net.set_capacity(DcId(0), DcId(1), -1.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = NetworkBuilder::new(2).link(DcId(0), DcId(0), 1.0, 1.0);
    }

    #[test]
    fn bidirectional_adds_both() {
        let net = NetworkBuilder::new(2).bidirectional(DcId(0), DcId(1), 1.0, 2.0).build();
        assert!(net.has_link(DcId(0), DcId(1)) && net.has_link(DcId(1), DcId(0)));
    }

    #[test]
    fn display_of_dc_id() {
        assert_eq!(DcId(3).to_string(), "D3");
    }

    #[test]
    fn clone_preserves_structure() {
        let net = Network::complete(3, 2.5, 30.0);
        let clone = net.clone();
        assert_eq!(net, clone);
    }

    #[test]
    fn csv_round_trip() {
        let net = NetworkBuilder::new(3)
            .link(DcId(0), DcId(1), 1.5, 10.0)
            .link(DcId(2), DcId(0), 3.0, f64::INFINITY)
            .build();
        let back = Network::from_csv(&net.to_csv()).unwrap();
        assert_eq!(back.num_dcs(), 3);
        assert_eq!(back.price(DcId(0), DcId(1)), Some(1.5));
        assert_eq!(back.capacity(DcId(2), DcId(0)), Some(f64::INFINITY));
        assert!(!back.has_link(DcId(1), DcId(0)));
    }

    #[test]
    fn csv_parse_errors_are_specific() {
        assert!(Network::from_csv("").unwrap_err().contains("no links"));
        assert!(Network::from_csv("0,0,1.0,5.0\n").unwrap_err().contains("self-loops"));
        assert!(Network::from_csv("0,1,-1.0,5.0\n").unwrap_err().contains("price"));
        assert!(Network::from_csv("0,1,1.0\n").unwrap_err().contains("line 1"));
    }
}
