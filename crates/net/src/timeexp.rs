//! The time-expanded graph (paper Sec. V).
//!
//! Following Ford & Fulkerson's time expansion, the inter-datacenter network
//! `G = (V, E)` over slots `[t, t + H)` becomes a static graph `G(t)`:
//!
//! * one **node** `i^n` per datacenter `i` per *layer* `n ∈ [t, t + H]`
//!   (a layer marks the boundary between two slots);
//! * one **transit arc** `i^n → j^{n+1}` per link `{i,j} ∈ E` per slot,
//!   carrying the link's price and its (residual) capacity in that slot;
//! * one **storage arc** `i^n → i^{n+1}` per datacenter per slot, with
//!   infinite capacity and zero cost — holding data at a datacenter is free
//!   and unconstrained.
//!
//! A file `k` released at `t` with deadline `T_k` is the three-tuple
//! `(s_k^t, d_k^{t+T_k}, F_k)` in `G(t)` and may only use arcs in slots
//! `n ≤ t + T_k − 1` (the paper's Eq. 10).

use crate::file::TransferRequest;
use crate::topology::{DcId, Network};

/// A node `i^n` of the time-expanded graph: datacenter `dc` at layer
/// `layer` (the start-of-slot boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeNode {
    /// The datacenter.
    pub dc: DcId,
    /// The layer (slot boundary), absolute.
    pub layer: u64,
}

/// Dense identifier of an arc within one [`TimeExpandedGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub usize);

impl ArcId {
    /// Dense 0-based index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Whether an arc moves data between datacenters or holds it in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArcKind {
    /// `i^n → j^{n+1}`, `i ≠ j`: real inter-datacenter traffic.
    Transit,
    /// `i^n → i^{n+1}`: store-and-forward holdover, free and uncapacitated.
    Storage,
}

/// One arc of the time-expanded graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arc {
    /// Tail datacenter (at layer `slot`).
    pub from: DcId,
    /// Head datacenter (at layer `slot + 1`).
    pub to: DcId,
    /// The slot during which the data moves (tail layer).
    pub slot: u64,
    /// Transit or storage.
    pub kind: ArcKind,
    /// Cost per GB (`a_ij` for transit, 0 for storage).
    pub price: f64,
    /// Capacity in GB for this slot (possibly residual; ∞ for storage).
    pub capacity: f64,
}

impl Arc {
    /// Tail node.
    pub fn tail(&self) -> TimeNode {
        TimeNode { dc: self.from, layer: self.slot }
    }

    /// Head node.
    pub fn head(&self) -> TimeNode {
        TimeNode { dc: self.to, layer: self.slot + 1 }
    }

    /// `true` if file `k` is allowed to use this arc (the arc's slot lies in
    /// the file's active window — Eq. 10).
    pub fn usable_by(&self, file: &TransferRequest) -> bool {
        file.active_in(self.slot)
    }
}

/// The time-expanded graph over slots `[t0, t0 + num_slots)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeExpandedGraph {
    t0: u64,
    num_slots: usize,
    num_dcs: usize,
    arcs: Vec<Arc>,
    /// Arc ids grouped by slot offset for fast per-slot iteration.
    by_slot: Vec<Vec<ArcId>>,
}

impl TimeExpandedGraph {
    /// Builds the expansion of `network` over `num_slots` slots starting at
    /// `t0`, with transit capacities taken straight from the network.
    ///
    /// # Panics
    ///
    /// Panics if `num_slots == 0`.
    pub fn new(network: &Network, t0: u64, num_slots: usize) -> Self {
        Self::with_residual(network, t0, num_slots, |l, _slot| Some(l.capacity))
    }

    /// Builds the expansion with per-arc residual capacities supplied by
    /// `residual(link, slot)`; returning `None` keeps the base capacity, and
    /// any returned value is clamped to `≥ 0`.
    ///
    /// This is how the online controller exposes capacity already consumed
    /// by earlier files (paper Sec. III: `c_ij(t)` is the residual capacity).
    ///
    /// # Panics
    ///
    /// Panics if `num_slots == 0`.
    pub fn with_residual(
        network: &Network,
        t0: u64,
        num_slots: usize,
        mut residual: impl FnMut(crate::topology::LinkView, u64) -> Option<f64>,
    ) -> Self {
        assert!(num_slots > 0, "time expansion needs at least one slot");
        let num_dcs = network.num_dcs();
        let mut arcs = Vec::with_capacity(num_slots * (network.num_links() + num_dcs));
        let mut by_slot = vec![Vec::new(); num_slots];
        for (off, slot_arcs) in by_slot.iter_mut().enumerate() {
            let slot = t0 + off as u64;
            for link in network.links() {
                let cap = residual(link, slot).unwrap_or(link.capacity).max(0.0);
                slot_arcs.push(ArcId(arcs.len()));
                arcs.push(Arc {
                    from: link.from,
                    to: link.to,
                    slot,
                    kind: ArcKind::Transit,
                    price: link.price,
                    capacity: cap,
                });
            }
            for dc in network.dcs() {
                slot_arcs.push(ArcId(arcs.len()));
                arcs.push(Arc {
                    from: dc,
                    to: dc,
                    slot,
                    kind: ArcKind::Storage,
                    price: 0.0,
                    capacity: f64::INFINITY,
                });
            }
        }
        Self { t0, num_slots, num_dcs, arcs, by_slot }
    }

    /// Assembles a graph directly from an arc list, with **no validation**.
    ///
    /// Arcs whose slot lies outside `[t0, t0 + num_slots)` are kept in the
    /// arc list (and therefore visible to [`TimeExpandedGraph::arcs`]) but
    /// not indexed by slot. The regular constructors can only produce
    /// well-formed expansions; this one exists so that tests and the
    /// `postcard-analyze` malformed-graph fixtures can express structurally
    /// broken graphs — deadline-violating slots, storage arcs that change
    /// datacenter — and exercise the checks that reject them.
    ///
    /// # Panics
    ///
    /// Panics if `num_slots == 0`.
    pub fn from_arcs(t0: u64, num_slots: usize, num_dcs: usize, arcs: Vec<Arc>) -> Self {
        assert!(num_slots > 0, "time expansion needs at least one slot");
        let mut by_slot = vec![Vec::new(); num_slots];
        for (i, a) in arcs.iter().enumerate() {
            if a.slot >= t0 && a.slot < t0 + num_slots as u64 {
                by_slot[(a.slot - t0) as usize].push(ArcId(i));
            }
        }
        Self { t0, num_slots, num_dcs, arcs, by_slot }
    }

    /// Shifts the whole expansion so it starts at `new_t0`, keeping every
    /// [`ArcId`] valid: arc `k` still names "the `k`-th arc", now at slot
    /// `new_t0 + (old_slot − old_t0)`. Prices, capacities, and the per-slot
    /// index (which is keyed by relative offset) are untouched.
    ///
    /// This is the structural half of a slot advance: the delta formulation
    /// rebases the standing graph and then refreshes only capacities/RHS
    /// instead of rebuilding the expansion from scratch.
    pub fn rebase(&mut self, new_t0: u64) {
        if new_t0 == self.t0 {
            return;
        }
        for arc in &mut self.arcs {
            // Regular constructors only emit slots >= t0; `from_arcs`
            // fixtures may not, so saturate rather than underflow.
            arc.slot = new_t0 + arc.slot.saturating_sub(self.t0);
        }
        self.t0 = new_t0;
    }

    /// First slot covered.
    pub fn first_slot(&self) -> u64 {
        self.t0
    }

    /// Number of slots covered.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Last slot covered (inclusive).
    pub fn last_slot(&self) -> u64 {
        self.t0 + self.num_slots as u64 - 1
    }

    /// Number of datacenters per layer.
    pub fn num_dcs(&self) -> usize {
        self.num_dcs
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Arc lookup.
    pub fn arc(&self, id: ArcId) -> &Arc {
        &self.arcs[id.0]
    }

    /// Iterates all arcs with their ids.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, &Arc)> {
        self.arcs.iter().enumerate().map(|(i, a)| (ArcId(i), a))
    }

    /// Iterates the arcs of one absolute slot (empty iterator if the slot is
    /// outside the expansion).
    pub fn arcs_in_slot(&self, slot: u64) -> impl Iterator<Item = (ArcId, &Arc)> {
        let ids: &[ArcId] = if slot >= self.t0 && slot <= self.last_slot() {
            &self.by_slot[(slot - self.t0) as usize]
        } else {
            &[]
        };
        ids.iter().map(move |&id| (id, &self.arcs[id.0]))
    }

    /// Iterates arcs *leaving* node `i^layer` (i.e. arcs of slot `layer`
    /// with tail `dc`).
    pub fn arcs_out(&self, node: TimeNode) -> impl Iterator<Item = (ArcId, &Arc)> {
        self.arcs_in_slot(node.layer).filter(move |(_, a)| a.from == node.dc)
    }

    /// Iterates arcs *entering* node `i^layer` (arcs of slot `layer − 1`
    /// with head `dc`).
    pub fn arcs_in(&self, node: TimeNode) -> impl Iterator<Item = (ArcId, &Arc)> {
        let prev = node.layer.checked_sub(1);
        prev.into_iter()
            .flat_map(move |s| self.arcs_in_slot(s))
            .filter(move |(_, a)| a.to == node.dc)
    }

    /// All layers of the expansion (`num_slots + 1` boundaries).
    pub fn layers(&self) -> impl Iterator<Item = u64> {
        self.t0..=self.t0 + self.num_slots as u64
    }

    /// The arcs file `k` may use (its window clipped to the expansion).
    pub fn arcs_usable_by<'a>(
        &'a self,
        file: &'a TransferRequest,
    ) -> impl Iterator<Item = (ArcId, &'a Arc)> {
        self.arcs().filter(move |(_, a)| a.usable_by(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileId;

    fn net() -> Network {
        Network::complete(3, 2.0, 10.0)
    }

    #[test]
    fn arc_counts() {
        let g = TimeExpandedGraph::new(&net(), 5, 4);
        // Per slot: 6 transit (complete digraph on 3) + 3 storage.
        assert_eq!(g.num_arcs(), 4 * 9);
        assert_eq!(g.first_slot(), 5);
        assert_eq!(g.last_slot(), 8);
        assert_eq!(g.layers().count(), 5);
    }

    #[test]
    fn storage_arcs_are_free_and_uncapacitated() {
        let g = TimeExpandedGraph::new(&net(), 0, 2);
        for (_, a) in g.arcs() {
            match a.kind {
                ArcKind::Storage => {
                    assert_eq!(a.from, a.to);
                    assert_eq!(a.price, 0.0);
                    assert!(a.capacity.is_infinite());
                }
                ArcKind::Transit => {
                    assert_ne!(a.from, a.to);
                    assert_eq!(a.price, 2.0);
                    assert_eq!(a.capacity, 10.0);
                }
            }
        }
    }

    #[test]
    fn residual_capacities_applied() {
        let g = TimeExpandedGraph::with_residual(&net(), 0, 2, |l, slot| {
            if l.from == DcId(0) && l.to == DcId(1) && slot == 1 {
                Some(3.5)
            } else {
                None
            }
        });
        let arc = g
            .arcs_in_slot(1)
            .find(|(_, a)| a.from == DcId(0) && a.to == DcId(1))
            .map(|(_, a)| *a)
            .unwrap();
        assert_eq!(arc.capacity, 3.5);
        let arc0 = g
            .arcs_in_slot(0)
            .find(|(_, a)| a.from == DcId(0) && a.to == DcId(1))
            .map(|(_, a)| *a)
            .unwrap();
        assert_eq!(arc0.capacity, 10.0);
    }

    #[test]
    fn negative_residual_clamped() {
        let g = TimeExpandedGraph::with_residual(&net(), 0, 1, |_, _| Some(-5.0));
        assert!(g
            .arcs()
            .filter(|(_, a)| a.kind == ArcKind::Transit)
            .all(|(_, a)| a.capacity == 0.0));
    }

    #[test]
    fn in_out_arcs_connect_layers() {
        let g = TimeExpandedGraph::new(&net(), 0, 3);
        let node = TimeNode { dc: DcId(1), layer: 1 };
        let outs: Vec<_> = g.arcs_out(node).collect();
        // 2 transit + 1 storage leave D1 at layer 1.
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|(_, a)| a.slot == 1 && a.from == DcId(1)));
        let ins: Vec<_> = g.arcs_in(node).collect();
        assert_eq!(ins.len(), 3);
        assert!(ins.iter().all(|(_, a)| a.slot == 0 && a.to == DcId(1)));
        // Layer 0 has no incoming arcs.
        assert_eq!(g.arcs_in(TimeNode { dc: DcId(0), layer: 0 }).count(), 0);
    }

    #[test]
    fn file_window_filters_arcs() {
        let g = TimeExpandedGraph::new(&net(), 3, 5); // slots 3..=7
        let f = TransferRequest::new(FileId(0), DcId(0), DcId(1), 8.0, 2, 3); // slots 3..=4
        let usable: Vec<u64> = g.arcs_usable_by(&f).map(|(_, a)| a.slot).collect();
        assert!(usable.iter().all(|&s| s == 3 || s == 4));
        assert_eq!(usable.len(), 2 * 9);
    }

    #[test]
    fn from_arcs_keeps_out_of_range_arcs_unindexed() {
        let arcs = vec![
            Arc {
                from: DcId(0),
                to: DcId(1),
                slot: 2,
                kind: ArcKind::Transit,
                price: 1.0,
                capacity: 5.0,
            },
            // Slot 9 is outside [2, 4): visible via arcs(), absent per slot.
            Arc {
                from: DcId(0),
                to: DcId(0),
                slot: 9,
                kind: ArcKind::Storage,
                price: 0.0,
                capacity: f64::INFINITY,
            },
        ];
        let g = TimeExpandedGraph::from_arcs(2, 2, 2, arcs);
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.arcs_in_slot(2).count(), 1);
        assert_eq!(g.arcs_in_slot(9).count(), 0);
        assert_eq!(g.arcs().filter(|(_, a)| a.slot == 9).count(), 1);
    }

    #[test]
    fn rebase_shifts_slots_and_keeps_arc_ids() {
        let mut g = TimeExpandedGraph::new(&net(), 5, 4);
        let before: Vec<(ArcId, Arc)> = g.arcs().map(|(id, a)| (id, *a)).collect();
        g.rebase(12);
        assert_eq!(g.first_slot(), 12);
        assert_eq!(g.last_slot(), 15);
        for (id, old) in &before {
            let new = g.arc(*id);
            assert_eq!(new.slot, old.slot + 7);
            assert_eq!((new.from, new.to, new.kind), (old.from, old.to, old.kind));
            assert_eq!(new.price, old.price);
            assert_eq!(new.capacity, old.capacity);
        }
        // The per-slot index follows the shift: old slot 6 is now slot 13.
        assert_eq!(g.arcs_in_slot(13).count(), 9);
        assert_eq!(g.arcs_in_slot(6).count(), 0);
        // Rebasing backwards works too.
        g.rebase(2);
        assert_eq!(g.first_slot(), 2);
        assert_eq!(g.arcs_in_slot(3).count(), 9);
    }

    #[test]
    fn head_tail_nodes() {
        let g = TimeExpandedGraph::new(&net(), 2, 1);
        let (_, a) = g.arcs().next().unwrap();
        assert_eq!(a.tail().layer, 2);
        assert_eq!(a.head().layer, 3);
    }
}
