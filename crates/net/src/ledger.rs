//! The traffic ledger: per-slot, per-link volumes actually (or committedly)
//! sent, with charged-volume tracking.
//!
//! The paper's key accounting quantity is the *traffic volume to be charged*
//! on link `{i, j}` after transmitting files generated up to slot `t`:
//! `X_ij(t) = max(X_ij(t−1), max_n Σ_k M_ij^k(n))` under the 100-th
//! percentile scheme. The ledger generalizes this to any percentile for
//! reporting purposes while tracking the running peak incrementally.

use crate::charging::{ChargingScheme, PercentileScheme};
use crate::topology::{DcId, Network};
use serde::{Deserialize, Serialize};

/// Records the volume (GB) sent on every directed link in every slot.
///
/// Slots may be written out of order (plans commit future slots); the ledger
/// grows automatically. Self-links (storage) are *not* recorded — stored
/// data never crosses an ISP boundary and is free (Sec. V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficLedger {
    n: usize,
    /// Per directed link `(i·n + j)`: per-slot volumes.
    volumes: Vec<Vec<f64>>,
    /// Running maximum per link (the 100-th percentile charged volume).
    peak: Vec<f64>,
}

impl TrafficLedger {
    /// Creates an empty ledger for `num_dcs` datacenters.
    ///
    /// # Panics
    ///
    /// Panics if `num_dcs == 0`.
    pub fn new(num_dcs: usize) -> Self {
        assert!(num_dcs > 0);
        Self {
            n: num_dcs,
            volumes: vec![Vec::new(); num_dcs * num_dcs],
            peak: vec![0.0; num_dcs * num_dcs],
        }
    }

    /// Number of datacenters the ledger covers.
    pub fn num_dcs(&self) -> usize {
        self.n
    }

    /// Adds `volume` GB to link `from → to` during `slot`.
    ///
    /// # Panics
    ///
    /// Panics on a self-link, an out-of-range id, or a negative/NaN volume.
    pub fn record(&mut self, from: DcId, to: DcId, slot: u64, volume: f64) {
        assert!(from != to, "storage is not ledger traffic");
        assert!(from.0 < self.n && to.0 < self.n, "datacenter id out of range");
        assert!(volume >= 0.0 && volume.is_finite(), "volume must be finite and non-negative");
        // postcard-analyze: allow(PA101) — exact-zero records must not grow
        // the series (see the `zero_volume_records_are_noops` test).
        if volume == 0.0 {
            return;
        }
        let idx = from.0 * self.n + to.0;
        let series = &mut self.volumes[idx];
        let s = slot as usize;
        if series.len() <= s {
            series.resize(s + 1, 0.0);
        }
        series[s] += volume;
        if series[s] > self.peak[idx] {
            self.peak[idx] = series[s];
        }
    }

    /// Volume sent on `from → to` during `slot`.
    pub fn volume(&self, from: DcId, to: DcId, slot: u64) -> f64 {
        self.volumes[from.0 * self.n + to.0].get(slot as usize).copied().unwrap_or(0.0)
    }

    /// The full recorded series of a link (may be shorter than the horizon).
    pub fn series(&self, from: DcId, to: DcId) -> &[f64] {
        &self.volumes[from.0 * self.n + to.0]
    }

    /// The running 100-th percentile charged volume `X_ij` of a link — the
    /// maximum per-slot volume recorded so far.
    pub fn peak(&self, from: DcId, to: DcId) -> f64 {
        self.peak[from.0 * self.n + to.0]
    }

    /// Charged volume of a link under an arbitrary percentile scheme over
    /// the *current* billing window — the last aligned `period_slots`-sized
    /// window `[k·P, (k+1)·P)` containing the ledger horizon. Unwritten
    /// slots inside the window count as 0, so the window is always evaluated
    /// at exactly `period_slots` slots.
    ///
    /// Earlier windows are closed books: their charges are fixed and queried
    /// per window via [`TrafficLedger::window_series`] /
    /// [`TrafficLedger::total_bill`], never mixed into the current window.
    /// (The old implementation charged over the entire recorded history once
    /// the series outgrew `period_slots`, which both diluted the percentile
    /// rank with stale slots and let a long-past spike dominate forever.)
    pub fn charged_volume(
        &self,
        from: DcId,
        to: DcId,
        scheme: PercentileScheme,
        period_slots: usize,
    ) -> f64 {
        assert!(period_slots > 0, "charging period must be ≥ 1 slot");
        let series = self.series(from, to);
        let horizon = self.horizon() as usize;
        let start = if horizon == 0 { 0 } else { ((horizon - 1) / period_slots) * period_slots };
        let mut window = vec![0.0; period_slots];
        for (k, v) in window.iter_mut().enumerate() {
            *v = series.get(start + k).copied().unwrap_or(0.0);
        }
        scheme.charged_volume(&window)
    }

    /// The per-slot volumes of the aligned billing window starting at
    /// `window_start`, padded with zeros to exactly `window_slots` entries.
    pub fn window_series(
        &self,
        from: DcId,
        to: DcId,
        window_start: u64,
        window_slots: usize,
    ) -> Vec<f64> {
        let series = self.series(from, to);
        let start = window_start as usize;
        (0..window_slots).map(|k| series.get(start + k).copied().unwrap_or(0.0)).collect()
    }

    /// The *baseline* of the billing window containing `slot` on a link:
    /// the volume its charged rank currently sits at, with the window's
    /// not-yet-written slots padded as zeros (exactly how the window will be
    /// billed at rollover). Traffic added to slots at or below the baseline
    /// — or to already-free slots — cannot raise this window's charge.
    pub fn window_baseline(&self, from: DcId, to: DcId, scheme: ChargingScheme, slot: u64) -> f64 {
        match scheme {
            ChargingScheme::MaxPerSlot => self.peak(from, to),
            ChargingScheme::Percentile { window_slots, .. } => {
                let window = self.window_series(from, to, scheme.window_start(slot), window_slots);
                scheme.percentile().charged_volume(&window)
            }
        }
    }

    /// How many of the current window's *free* top-`(100−q)%` slots are
    /// still unspent on a link — the number of additional slots that can be
    /// pushed strictly above the baseline without moving the charged rank.
    ///
    /// Order-statistic argument: with `F = W − ⌈q/100·W⌉` free slots and `b`
    /// slots already strictly above the baseline, raising one more slot
    /// above the baseline leaves the charged rank unchanged as long as
    /// `b + 1 ≤ F` — the raised slots all land in the discarded suffix of
    /// the sorted window, and every other element keeps its rank or moves
    /// down. Always 0 under `MaxPerSlot` (no slot is free).
    pub fn burst_budget(&self, from: DcId, to: DcId, scheme: ChargingScheme, slot: u64) -> usize {
        let free = scheme.free_slots();
        if free == 0 {
            return 0;
        }
        let baseline = self.window_baseline(from, to, scheme, slot);
        let window = self.window_series(from, to, scheme.window_start(slot), scheme.window_slots());
        let above = window.iter().filter(|&&v| v > baseline).count();
        free.saturating_sub(above)
    }

    /// One slot past the last recorded slot, across all links.
    pub fn horizon(&self) -> u64 {
        self.volumes.iter().map(|s| s.len() as u64).max().unwrap_or(0)
    }

    /// Total volume ever recorded on a link.
    pub fn total_volume(&self, from: DcId, to: DcId) -> f64 {
        self.series(from, to).iter().sum()
    }

    /// Residual capacity of `from → to` at `slot` given the network's base
    /// capacity (0 if the link does not exist; can be negative only if the
    /// ledger was over-committed, which validation prevents).
    pub fn residual(&self, network: &Network, from: DcId, to: DcId, slot: u64) -> f64 {
        match network.capacity(from, to) {
            Some(cap) => cap - self.volume(from, to, slot),
            None => 0.0,
        }
    }

    /// The provider's current bill per slot under the 100-th percentile
    /// scheme with linear prices: `Σ_ij a_ij · X_ij` (the paper's Eq. 6
    /// without the constant `· I` factor).
    pub fn cost_per_slot(&self, network: &Network) -> f64 {
        network.links().map(|l| l.price * self.peak(l.from, l.to)).sum()
    }

    /// The bill per slot under an arbitrary percentile scheme.
    pub fn cost_per_slot_with(
        &self,
        network: &Network,
        scheme: PercentileScheme,
        period_slots: usize,
    ) -> f64 {
        network
            .links()
            .map(|l| l.price * self.charged_volume(l.from, l.to, scheme, period_slots))
            .sum()
    }

    /// The running bill per slot under a [`ChargingScheme`]: `MaxPerSlot` is
    /// the classic priced-peak sum, `Percentile` charges the *current*
    /// billing window of every link at its percentile rank.
    pub fn cost_per_slot_scheme(&self, network: &Network, scheme: ChargingScheme) -> f64 {
        match scheme {
            ChargingScheme::MaxPerSlot => self.cost_per_slot(network),
            ChargingScheme::Percentile { window_slots, .. } => {
                self.cost_per_slot_with(network, scheme.percentile(), window_slots)
            }
        }
    }

    /// The *total* bill of the recorded horizon under a scheme, in
    /// dollar-slots: `Σ_links Σ_windows price · charged(window)`.
    ///
    /// Under `MaxPerSlot` the whole horizon is one window charged at its
    /// peak (the quantity the paper's LP minimizes). Under `Percentile` the
    /// horizon splits into aligned `window_slots`-sized windows — including
    /// a final partial window padded with zeros to full length, matching how
    /// an ISP closes the books mid-cycle. Comparing two runs' ledgers with
    /// the *same* percentile scheme here is the apples-to-apples billing
    /// comparison the diurnal preset gates on.
    pub fn total_bill(&self, network: &Network, scheme: ChargingScheme) -> f64 {
        match scheme {
            ChargingScheme::MaxPerSlot => self.cost_per_slot(network),
            ChargingScheme::Percentile { window_slots, .. } => {
                let horizon = self.horizon();
                let windows = if horizon == 0 { 1 } else { horizon.div_ceil(window_slots as u64) };
                let p = scheme.percentile();
                network
                    .links()
                    .map(|l| {
                        let per_window: f64 = (0..windows)
                            .map(|k| {
                                let window = self.window_series(
                                    l.from,
                                    l.to,
                                    k * window_slots as u64,
                                    window_slots,
                                );
                                p.charged_volume(&window)
                            })
                            .sum();
                        l.price * per_window
                    })
                    .sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    #[test]
    fn record_and_read_back() {
        let mut l = TrafficLedger::new(3);
        l.record(d(0), d(1), 5, 10.0);
        l.record(d(0), d(1), 5, 2.5);
        assert_eq!(l.volume(d(0), d(1), 5), 12.5);
        assert_eq!(l.volume(d(0), d(1), 4), 0.0);
        assert_eq!(l.volume(d(1), d(0), 5), 0.0);
        assert_eq!(l.horizon(), 6);
    }

    #[test]
    fn peak_tracks_running_max() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 5.0);
        l.record(d(0), d(1), 3, 9.0);
        l.record(d(0), d(1), 7, 1.0);
        assert_eq!(l.peak(d(0), d(1)), 9.0);
        assert_eq!(l.peak(d(1), d(0)), 0.0);
    }

    #[test]
    fn cost_per_slot_sums_priced_peaks() {
        let net = Network::complete(2, 2.0, 100.0);
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 10.0);
        l.record(d(1), d(0), 1, 4.0);
        assert!((l.cost_per_slot(&net) - (2.0 * 10.0 + 2.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn percentile_charging_pads_with_zeros() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 100.0);
        // Over a 20-slot period, p95 charges the 19th sorted slot = 0.
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::P95, 20), 0.0);
        // p100 still charges the spike.
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::MAX, 20), 100.0);
    }

    #[test]
    fn residual_subtracts_usage() {
        let net = Network::complete(2, 1.0, 30.0);
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 2, 12.0);
        assert_eq!(l.residual(&net, d(0), d(1), 2), 18.0);
        assert_eq!(l.residual(&net, d(0), d(1), 3), 30.0);
    }

    #[test]
    fn zero_volume_records_are_noops() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 9, 0.0);
        assert_eq!(l.horizon(), 0);
    }

    #[test]
    #[should_panic(expected = "storage is not ledger traffic")]
    fn self_link_rejected() {
        TrafficLedger::new(2).record(d(1), d(1), 0, 1.0);
    }

    #[test]
    fn total_volume_sums_series() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 1.0);
        l.record(d(0), d(1), 5, 2.0);
        assert_eq!(l.total_volume(d(0), d(1)), 3.0);
    }

    #[test]
    fn charged_volume_uses_last_window_not_whole_history() {
        // Regression: with a series spanning two 10-slot windows, the charge
        // must come from the *current* window only. The old code resized to
        // `period_slots.max(series.len())`, silently charging over the whole
        // history once the series outgrew the period.
        let mut l = TrafficLedger::new(2);
        // Window 0 (slots 0..10): a huge spike.
        l.record(d(0), d(1), 3, 1000.0);
        // Window 1 (slots 10..20): quiet traffic only.
        for s in 10..15 {
            l.record(d(0), d(1), s, 2.0);
        }
        // p100 over the current 10-slot window sees only the quiet traffic —
        // NOT the window-0 spike.
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::MAX, 10), 2.0);
        // p95 over a 20-slot period: horizon is 15, so the current aligned
        // 20-slot window is [0, 20) and the spike is its single free slot.
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::P95, 20), 2.0);
    }

    #[test]
    fn charged_volume_at_exact_window_boundary() {
        let mut l = TrafficLedger::new(2);
        // Exactly one full 10-slot window recorded: slot 9 is the last slot
        // of window 0, so the current window is still window 0.
        for s in 0..10 {
            l.record(d(0), d(1), s, (s + 1) as f64);
        }
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::MAX, 10), 10.0);
        // One record into slot 10 rolls over to window 1: only slot 10 counts.
        l.record(d(0), d(1), 10, 3.0);
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::MAX, 10), 3.0);
    }

    #[test]
    fn window_baseline_and_burst_budget() {
        let p95 = ChargingScheme::Percentile { q: 95.0, window_slots: 20 };
        let mut l = TrafficLedger::new(2);
        // Empty window: baseline 0, full free budget (1 free slot in 20).
        assert_eq!(l.window_baseline(d(0), d(1), p95, 0), 0.0);
        assert_eq!(l.burst_budget(d(0), d(1), p95, 0), 1);
        // Steady traffic raises the baseline; no slot is above it yet.
        for s in 0..5 {
            l.record(d(0), d(1), s, 4.0);
        }
        assert_eq!(l.window_baseline(d(0), d(1), p95, 4), 4.0);
        assert_eq!(l.burst_budget(d(0), d(1), p95, 4), 1);
        // One burst above the baseline spends the only free slot.
        l.record(d(0), d(1), 5, 50.0);
        assert_eq!(l.window_baseline(d(0), d(1), p95, 5), 4.0);
        assert_eq!(l.burst_budget(d(0), d(1), p95, 5), 0);
        // The next window starts with a fresh budget.
        assert_eq!(l.burst_budget(d(0), d(1), p95, 20), 1);
        // MaxPerSlot never has free slots.
        assert_eq!(l.burst_budget(d(0), d(1), ChargingScheme::MaxPerSlot, 5), 0);
    }

    #[test]
    fn total_bill_sums_windows() {
        let net = Network::complete(2, 1.0, 1000.0);
        let p100 = ChargingScheme::Percentile { q: 100.0, window_slots: 10 };
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 7.0); // window 0 peak
        l.record(d(0), d(1), 13, 5.0); // window 1 peak (partial window)
        assert!((l.total_bill(&net, p100) - 12.0).abs() < 1e-12);
        // MaxPerSlot charges the single whole-horizon peak.
        assert!((l.total_bill(&net, ChargingScheme::MaxPerSlot) - 7.0).abs() < 1e-12);
        // q=100 with the window covering the whole horizon equals the peak
        // bill exactly.
        let wide = ChargingScheme::Percentile { q: 100.0, window_slots: 64 };
        assert_eq!(
            l.total_bill(&net, wide).to_bits(),
            l.total_bill(&net, ChargingScheme::MaxPerSlot).to_bits()
        );
        // Empty ledger bills zero either way.
        let empty = TrafficLedger::new(2);
        assert_eq!(empty.total_bill(&net, p100), 0.0);
        assert_eq!(empty.total_bill(&net, ChargingScheme::MaxPerSlot), 0.0);
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let mut l = TrafficLedger::new(3);
        l.record(d(0), d(1), 0, 0.1 + 0.2); // a value with no short decimal form
        l.record(d(1), d(2), 7, 123.456_789_012_345);
        l.record(d(2), d(0), 3, 1.0 / 3.0);
        let back: TrafficLedger = serde::json::from_str(&serde::json::to_string(&l)).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.peak(d(1), d(2)).to_bits(), l.peak(d(1), d(2)).to_bits());
    }
}
