//! The traffic ledger: per-slot, per-link volumes actually (or committedly)
//! sent, with charged-volume tracking.
//!
//! The paper's key accounting quantity is the *traffic volume to be charged*
//! on link `{i, j}` after transmitting files generated up to slot `t`:
//! `X_ij(t) = max(X_ij(t−1), max_n Σ_k M_ij^k(n))` under the 100-th
//! percentile scheme. The ledger generalizes this to any percentile for
//! reporting purposes while tracking the running peak incrementally.

use crate::charging::PercentileScheme;
use crate::topology::{DcId, Network};
use serde::{Deserialize, Serialize};

/// Records the volume (GB) sent on every directed link in every slot.
///
/// Slots may be written out of order (plans commit future slots); the ledger
/// grows automatically. Self-links (storage) are *not* recorded — stored
/// data never crosses an ISP boundary and is free (Sec. V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficLedger {
    n: usize,
    /// Per directed link `(i·n + j)`: per-slot volumes.
    volumes: Vec<Vec<f64>>,
    /// Running maximum per link (the 100-th percentile charged volume).
    peak: Vec<f64>,
}

impl TrafficLedger {
    /// Creates an empty ledger for `num_dcs` datacenters.
    ///
    /// # Panics
    ///
    /// Panics if `num_dcs == 0`.
    pub fn new(num_dcs: usize) -> Self {
        assert!(num_dcs > 0);
        Self {
            n: num_dcs,
            volumes: vec![Vec::new(); num_dcs * num_dcs],
            peak: vec![0.0; num_dcs * num_dcs],
        }
    }

    /// Number of datacenters the ledger covers.
    pub fn num_dcs(&self) -> usize {
        self.n
    }

    /// Adds `volume` GB to link `from → to` during `slot`.
    ///
    /// # Panics
    ///
    /// Panics on a self-link, an out-of-range id, or a negative/NaN volume.
    pub fn record(&mut self, from: DcId, to: DcId, slot: u64, volume: f64) {
        assert!(from != to, "storage is not ledger traffic");
        assert!(from.0 < self.n && to.0 < self.n, "datacenter id out of range");
        assert!(volume >= 0.0 && volume.is_finite(), "volume must be finite and non-negative");
        // postcard-analyze: allow(PA101) — exact-zero records must not grow
        // the series (see the `zero_volume_records_are_noops` test).
        if volume == 0.0 {
            return;
        }
        let idx = from.0 * self.n + to.0;
        let series = &mut self.volumes[idx];
        let s = slot as usize;
        if series.len() <= s {
            series.resize(s + 1, 0.0);
        }
        series[s] += volume;
        if series[s] > self.peak[idx] {
            self.peak[idx] = series[s];
        }
    }

    /// Volume sent on `from → to` during `slot`.
    pub fn volume(&self, from: DcId, to: DcId, slot: u64) -> f64 {
        self.volumes[from.0 * self.n + to.0].get(slot as usize).copied().unwrap_or(0.0)
    }

    /// The full recorded series of a link (may be shorter than the horizon).
    pub fn series(&self, from: DcId, to: DcId) -> &[f64] {
        &self.volumes[from.0 * self.n + to.0]
    }

    /// The running 100-th percentile charged volume `X_ij` of a link — the
    /// maximum per-slot volume recorded so far.
    pub fn peak(&self, from: DcId, to: DcId) -> f64 {
        self.peak[from.0 * self.n + to.0]
    }

    /// Charged volume of a link under an arbitrary percentile scheme over a
    /// charging period of `period_slots` slots (unwritten slots count as 0).
    pub fn charged_volume(
        &self,
        from: DcId,
        to: DcId,
        scheme: PercentileScheme,
        period_slots: usize,
    ) -> f64 {
        let series = self.series(from, to);
        let mut padded = series.to_vec();
        padded.resize(period_slots.max(series.len()), 0.0);
        scheme.charged_volume(&padded)
    }

    /// One slot past the last recorded slot, across all links.
    pub fn horizon(&self) -> u64 {
        self.volumes.iter().map(|s| s.len() as u64).max().unwrap_or(0)
    }

    /// Total volume ever recorded on a link.
    pub fn total_volume(&self, from: DcId, to: DcId) -> f64 {
        self.series(from, to).iter().sum()
    }

    /// Residual capacity of `from → to` at `slot` given the network's base
    /// capacity (0 if the link does not exist; can be negative only if the
    /// ledger was over-committed, which validation prevents).
    pub fn residual(&self, network: &Network, from: DcId, to: DcId, slot: u64) -> f64 {
        match network.capacity(from, to) {
            Some(cap) => cap - self.volume(from, to, slot),
            None => 0.0,
        }
    }

    /// The provider's current bill per slot under the 100-th percentile
    /// scheme with linear prices: `Σ_ij a_ij · X_ij` (the paper's Eq. 6
    /// without the constant `· I` factor).
    pub fn cost_per_slot(&self, network: &Network) -> f64 {
        network.links().map(|l| l.price * self.peak(l.from, l.to)).sum()
    }

    /// The bill per slot under an arbitrary percentile scheme.
    pub fn cost_per_slot_with(
        &self,
        network: &Network,
        scheme: PercentileScheme,
        period_slots: usize,
    ) -> f64 {
        network
            .links()
            .map(|l| l.price * self.charged_volume(l.from, l.to, scheme, period_slots))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    #[test]
    fn record_and_read_back() {
        let mut l = TrafficLedger::new(3);
        l.record(d(0), d(1), 5, 10.0);
        l.record(d(0), d(1), 5, 2.5);
        assert_eq!(l.volume(d(0), d(1), 5), 12.5);
        assert_eq!(l.volume(d(0), d(1), 4), 0.0);
        assert_eq!(l.volume(d(1), d(0), 5), 0.0);
        assert_eq!(l.horizon(), 6);
    }

    #[test]
    fn peak_tracks_running_max() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 5.0);
        l.record(d(0), d(1), 3, 9.0);
        l.record(d(0), d(1), 7, 1.0);
        assert_eq!(l.peak(d(0), d(1)), 9.0);
        assert_eq!(l.peak(d(1), d(0)), 0.0);
    }

    #[test]
    fn cost_per_slot_sums_priced_peaks() {
        let net = Network::complete(2, 2.0, 100.0);
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 10.0);
        l.record(d(1), d(0), 1, 4.0);
        assert!((l.cost_per_slot(&net) - (2.0 * 10.0 + 2.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn percentile_charging_pads_with_zeros() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 100.0);
        // Over a 20-slot period, p95 charges the 19th sorted slot = 0.
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::P95, 20), 0.0);
        // p100 still charges the spike.
        assert_eq!(l.charged_volume(d(0), d(1), PercentileScheme::MAX, 20), 100.0);
    }

    #[test]
    fn residual_subtracts_usage() {
        let net = Network::complete(2, 1.0, 30.0);
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 2, 12.0);
        assert_eq!(l.residual(&net, d(0), d(1), 2), 18.0);
        assert_eq!(l.residual(&net, d(0), d(1), 3), 30.0);
    }

    #[test]
    fn zero_volume_records_are_noops() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 9, 0.0);
        assert_eq!(l.horizon(), 0);
    }

    #[test]
    #[should_panic(expected = "storage is not ledger traffic")]
    fn self_link_rejected() {
        TrafficLedger::new(2).record(d(1), d(1), 0, 1.0);
    }

    #[test]
    fn total_volume_sums_series() {
        let mut l = TrafficLedger::new(2);
        l.record(d(0), d(1), 0, 1.0);
        l.record(d(0), d(1), 5, 2.0);
        assert_eq!(l.total_volume(d(0), d(1)), 3.0);
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let mut l = TrafficLedger::new(3);
        l.record(d(0), d(1), 0, 0.1 + 0.2); // a value with no short decimal form
        l.record(d(1), d(2), 7, 123.456_789_012_345);
        l.record(d(2), d(0), 3, 1.0 / 3.0);
        let back: TrafficLedger = serde::json::from_str(&serde::json::to_string(&l)).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.peak(d(1), d(2)).to_bits(), l.peak(d(1), d(2)).to_bits());
    }
}
