//! Transfer plans: the decision tensor `M_ij^k(n)` with validation.
//!
//! A [`TransferPlan`] records, for every file `k`, slot `n`, and ordered
//! datacenter pair `(i, j)`, the volume `M_ij^k(n)` moved from `i` to `j`
//! during slot `n`. Entries with `i == j` are *holdovers* — data stored at
//! `i` across the slot boundary, the paper's store-and-forward primitive.
//!
//! [`TransferPlan::validate`] checks every constraint of the paper's
//! optimization problem (Eqs. 7–10) from first principles: link existence,
//! capacity, per-file conservation via forward simulation, deadline windows,
//! and non-negativity. The test-suites of the optimizer crates never trust
//! the optimizer's own arithmetic — they validate plans here.

use crate::file::{FileId, TransferRequest};
use crate::ledger::TrafficLedger;
use crate::topology::{DcId, Network};
use crate::VOLUME_TOL;
use std::collections::{BTreeMap, BTreeSet};

/// One `(file, slot, i, j, volume)` record of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// The file being moved or held.
    pub file: FileId,
    /// The slot during which it moves.
    pub slot: u64,
    /// Tail datacenter.
    pub from: DcId,
    /// Head datacenter (equal to `from` for holdover).
    pub to: DcId,
    /// Volume in GB (> 0).
    pub volume: f64,
}

impl PlanEntry {
    /// `true` if this entry is a holdover (storage) rather than transit.
    pub fn is_holdover(&self) -> bool {
        self.from == self.to
    }
}

/// A constraint violation found by [`TransferPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanViolation {
    /// A transit entry uses a link absent from the network.
    MissingLink {
        /// Tail datacenter.
        from: DcId,
        /// Head datacenter.
        to: DcId,
    },
    /// Aggregate volume on a link in a slot exceeds the available capacity.
    Capacity {
        /// Tail datacenter.
        from: DcId,
        /// Head datacenter.
        to: DcId,
        /// The offending slot.
        slot: u64,
        /// Total planned volume.
        used: f64,
        /// Capacity available.
        available: f64,
    },
    /// A file moves volume it does not hold at some datacenter/slot, or
    /// strands volume there (conservation, Eq. 8).
    Conservation {
        /// The file.
        file: FileId,
        /// The datacenter where conservation breaks.
        dc: DcId,
        /// The slot at which it breaks.
        slot: u64,
        /// Volume present at the start of the slot.
        stock: f64,
        /// Volume the plan moves out during the slot.
        outflow: f64,
    },
    /// A file's mass is not entirely at its destination at its deadline.
    Delivery {
        /// The file.
        file: FileId,
        /// Volume found at the destination at the deadline.
        delivered: f64,
        /// The file size that should have arrived.
        expected: f64,
    },
    /// An entry lies outside the file's `[release, release + T_k)` window
    /// (Eq. 10) or references an unknown file.
    Window {
        /// The file.
        file: FileId,
        /// The offending slot.
        slot: u64,
    },
}

/// The full routing-and-scheduling decision for a set of files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferPlan {
    /// `(slot, from, to, file) → volume`; BTreeMap for deterministic order.
    entries: BTreeMap<(u64, usize, usize, u64), f64>,
}

impl TransferPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds volume to an entry (accumulating).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite volume.
    pub fn add(&mut self, file: FileId, slot: u64, from: DcId, to: DcId, volume: f64) {
        assert!(volume >= 0.0 && volume.is_finite(), "volume must be finite and non-negative");
        if volume <= 0.0 {
            return;
        }
        *self.entries.entry((slot, from.0, to.0, file.0)).or_insert(0.0) += volume;
    }

    /// The volume of one `(file, slot, i, j)` cell (0 if absent).
    pub fn volume(&self, file: FileId, slot: u64, from: DcId, to: DcId) -> f64 {
        self.entries.get(&(slot, from.0, to.0, file.0)).copied().unwrap_or(0.0)
    }

    /// Iterates all entries in `(slot, from, to, file)` order.
    pub fn iter(&self) -> impl Iterator<Item = PlanEntry> + '_ {
        self.entries.iter().map(|(&(slot, from, to, file), &volume)| PlanEntry {
            file: FileId(file),
            slot,
            from: DcId(from),
            to: DcId(to),
            volume,
        })
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the plan has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct files referenced.
    pub fn files(&self) -> BTreeSet<FileId> {
        self.entries.keys().map(|&(_, _, _, f)| FileId(f)).collect()
    }

    /// Aggregate *transit* volume moved on `from → to` during `slot`
    /// (holdovers excluded — they are not ISP traffic).
    pub fn link_slot_total(&self, from: DcId, to: DcId, slot: u64) -> f64 {
        if from == to {
            return 0.0;
        }
        self.entries
            .range((slot, from.0, to.0, 0)..=(slot, from.0, to.0, u64::MAX))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Peak per-slot transit volume of a link over the plan's slots.
    pub fn link_peak(&self, from: DcId, to: DcId) -> f64 {
        let mut by_slot: BTreeMap<u64, f64> = BTreeMap::new();
        for e in self.iter() {
            if e.from == from && e.to == to && !e.is_holdover() {
                *by_slot.entry(e.slot).or_insert(0.0) += e.volume;
            }
        }
        by_slot.values().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Total holdover volume of a file at `dc` during `slot`.
    pub fn holdover(&self, file: FileId, dc: DcId, slot: u64) -> f64 {
        self.volume(file, slot, dc, dc)
    }

    /// Total volume stored anywhere across all slots (a measure of how much
    /// store-and-forward the plan uses).
    pub fn total_holdover(&self) -> f64 {
        self.iter().filter(PlanEntry::is_holdover).map(|e| e.volume).sum()
    }

    /// Merges another plan into this one.
    pub fn merge(&mut self, other: &TransferPlan) {
        for e in other.iter() {
            self.add(e.file, e.slot, e.from, e.to, e.volume);
        }
    }

    /// Commits all transit entries into a ledger.
    pub fn apply_to_ledger(&self, ledger: &mut TrafficLedger) {
        for e in self.iter() {
            if !e.is_holdover() {
                ledger.record(e.from, e.to, e.slot, e.volume);
            }
        }
    }

    /// Validates the plan against the paper's constraints.
    ///
    /// * `network` supplies link existence and base capacity;
    /// * `files` are the requests this plan claims to serve — every file
    ///   must be fully delivered;
    /// * `extra_used(from, to, slot)` reports capacity already consumed by
    ///   other traffic (pass `|_, _, _| 0.0` when the plan stands alone).
    ///
    /// Returns all violations found; an empty vector means the plan is
    /// feasible.
    pub fn validate(
        &self,
        network: &Network,
        files: &[TransferRequest],
        mut extra_used: impl FnMut(DcId, DcId, u64) -> f64,
    ) -> Vec<PlanViolation> {
        let mut out = Vec::new();
        let by_id: BTreeMap<FileId, &TransferRequest> = files.iter().map(|f| (f.id, f)).collect();

        // Link existence + window checks, and per-(link, slot) aggregation.
        let mut link_slot: BTreeMap<(usize, usize, u64), f64> = BTreeMap::new();
        for e in self.iter() {
            match by_id.get(&e.file) {
                None => out.push(PlanViolation::Window { file: e.file, slot: e.slot }),
                Some(f) if !f.active_in(e.slot) => {
                    out.push(PlanViolation::Window { file: e.file, slot: e.slot })
                }
                Some(_) => {}
            }
            if !e.is_holdover() {
                if !network.has_link(e.from, e.to) {
                    out.push(PlanViolation::MissingLink { from: e.from, to: e.to });
                    continue;
                }
                *link_slot.entry((e.from.0, e.to.0, e.slot)).or_insert(0.0) += e.volume;
            }
        }
        for (&(i, j, slot), &used) in &link_slot {
            let (from, to) = (DcId(i), DcId(j));
            let available = network.capacity(from, to).unwrap_or(0.0) - extra_used(from, to, slot);
            if used > available + VOLUME_TOL {
                out.push(PlanViolation::Capacity { from, to, slot, used, available });
            }
        }

        // Conservation by forward simulation, per file.
        for f in files {
            let n = network.num_dcs();
            let mut stock = vec![0.0; n];
            stock[f.src.0] = f.size_gb;
            for slot in f.first_slot()..=f.last_slot() {
                let mut outflow = vec![0.0; n];
                let mut inflow = vec![0.0; n];
                for (i, out) in outflow.iter_mut().enumerate() {
                    for (j, inn) in inflow.iter_mut().enumerate() {
                        let v = self.volume(f.id, slot, DcId(i), DcId(j));
                        *out += v;
                        *inn += v;
                    }
                }
                for i in 0..n {
                    // The destination absorbs: it may retain stock without an
                    // explicit holdover entry (and may still relay a part).
                    // Every other datacenter must move exactly what it holds,
                    // holding via an explicit `M_ii` entry if need be.
                    let ok = if i == f.dst.0 {
                        outflow[i] <= stock[i] + VOLUME_TOL
                    } else {
                        (outflow[i] - stock[i]).abs() <= VOLUME_TOL
                    };
                    if !ok {
                        out.push(PlanViolation::Conservation {
                            file: f.id,
                            dc: DcId(i),
                            slot,
                            stock: stock[i],
                            outflow: outflow[i],
                        });
                    }
                }
                inflow[f.dst.0] += (stock[f.dst.0] - outflow[f.dst.0]).max(0.0);
                stock = inflow;
            }
            let delivered = stock[f.dst.0];
            if (delivered - f.size_gb).abs() > VOLUME_TOL {
                out.push(PlanViolation::Delivery { file: f.id, delivered, expected: f.size_gb });
            }
        }
        out
    }

    /// The cumulative volume of `file` that has arrived at `dst` by the end
    /// of each slot in `[first, last]` — the file's *delivery curve*. A
    /// deadline-respecting plan reaches the file size at the last slot.
    ///
    /// Arrival means crossing a transit arc into `dst` (holdover at `dst`
    /// keeps data there; relaying *out* of `dst` subtracts).
    pub fn delivery_curve(&self, file: &TransferRequest, dst: DcId) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let mut arrived = 0.0;
        for slot in file.first_slot()..=file.last_slot() {
            for e in self.iter() {
                if e.file == file.id && e.slot == slot && !e.is_holdover() {
                    if e.to == dst {
                        arrived += e.volume;
                    }
                    if e.from == dst {
                        arrived -= e.volume;
                    }
                }
            }
            out.push((slot, arrived));
        }
        out
    }

    /// Serializes the plan to CSV: a header, then one
    /// `file,slot,from,to,volume` line per entry (holdovers have
    /// `from == to`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("file,slot,from,to,volume\n");
        for e in self.iter() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.file.0, e.slot, e.from.0, e.to.0, e.volume
            ));
        }
        out
    }

    /// Parses the CSV produced by [`TransferPlan::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_csv(text: &str) -> Result<TransferPlan, String> {
        let mut plan = TransferPlan::new();
        for (i, line) in text.lines().enumerate() {
            if (i == 0 && line.starts_with("file,")) || line.trim().is_empty() {
                continue;
            }
            let err = |m: &str| format!("plan CSV line {}: {m}", i + 1);
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 5 {
                return Err(err("expected `file,slot,from,to,volume`"));
            }
            let file: u64 = parts[0].trim().parse().map_err(|_| err("bad file id"))?;
            let slot: u64 = parts[1].trim().parse().map_err(|_| err("bad slot"))?;
            let from: usize = parts[2].trim().parse().map_err(|_| err("bad from"))?;
            let to: usize = parts[3].trim().parse().map_err(|_| err("bad to"))?;
            let volume: f64 = parts[4].trim().parse().map_err(|_| err("bad volume"))?;
            if !(volume >= 0.0 && volume.is_finite()) {
                return Err(err("volume must be finite and non-negative"));
            }
            plan.add(FileId(file), slot, DcId(from), DcId(to), volume);
        }
        Ok(plan)
    }

    /// Convenience: `true` when [`TransferPlan::validate`] finds nothing.
    pub fn is_valid(
        &self,
        network: &Network,
        files: &[TransferRequest],
        extra_used: impl FnMut(DcId, DcId, u64) -> f64,
    ) -> bool {
        self.validate(network, files, extra_used).is_empty()
    }
}

impl Extend<PlanEntry> for TransferPlan {
    fn extend<T: IntoIterator<Item = PlanEntry>>(&mut self, iter: T) {
        for e in iter {
            self.add(e.file, e.slot, e.from, e.to, e.volume);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: usize) -> DcId {
        DcId(i)
    }

    /// The Fig. 1 network: D2 →(10) D3 direct, D2 →(1) D1 →(3) D3 relay.
    /// (Indices: D1=0, D2=1, D3=2.)
    fn fig1_net() -> Network {
        crate::topology::NetworkBuilder::new(3)
            .link(d(1), d(2), 10.0, 1000.0)
            .link(d(1), d(0), 1.0, 1000.0)
            .link(d(0), d(2), 3.0, 1000.0)
            .build()
    }

    fn fig1_file() -> TransferRequest {
        TransferRequest::new(FileId(1), d(1), d(2), 6.0, 3, 0)
    }

    /// The paper's Fig. 1(b) plan: split 6 MB into two 3 MB blocks sent
    /// pipelined over D2 → D1 → D3 across three slots.
    fn fig1_plan() -> TransferPlan {
        let mut p = TransferPlan::new();
        let f = FileId(1);
        // Slot 0: first block D2→D1, second block held at D2.
        p.add(f, 0, d(1), d(0), 3.0);
        p.add(f, 0, d(1), d(1), 3.0);
        // Slot 1: first block D1→D3, second block D2→D1.
        p.add(f, 1, d(0), d(2), 3.0);
        p.add(f, 1, d(1), d(0), 3.0);
        // Slot 2: second block D1→D3.
        p.add(f, 2, d(0), d(2), 3.0);
        p
    }

    #[test]
    fn fig1_plan_is_valid() {
        let v = fig1_plan().validate(&fig1_net(), &[fig1_file()], |_, _, _| 0.0);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn fig1_plan_costs_twelve_per_slot() {
        // Charged volumes: 3 on D2→D1 (price 1), 3 on D1→D3 (price 3) ⇒ 12.
        let p = fig1_plan();
        let net = fig1_net();
        let mut ledger = TrafficLedger::new(3);
        p.apply_to_ledger(&mut ledger);
        assert!((ledger.cost_per_slot(&net) - 12.0).abs() < 1e-9);
        // Versus 20 for the direct plan.
        let mut direct = TransferPlan::new();
        direct.add(FileId(1), 0, d(1), d(2), 2.0);
        direct.add(FileId(1), 1, d(1), d(2), 2.0);
        direct.add(FileId(1), 2, d(1), d(2), 2.0);
        // Direct plan as stated is NOT conservation-valid (file can't
        // trickle without holdover bookkeeping); build it properly:
        let mut direct = TransferPlan::new();
        let f = FileId(1);
        direct.add(f, 0, d(1), d(2), 2.0);
        direct.add(f, 0, d(1), d(1), 4.0);
        direct.add(f, 1, d(1), d(2), 2.0);
        direct.add(f, 1, d(1), d(1), 2.0);
        direct.add(f, 2, d(1), d(2), 2.0);
        assert!(direct.is_valid(&net, &[fig1_file()], |_, _, _| 0.0));
        let mut l2 = TrafficLedger::new(3);
        direct.apply_to_ledger(&mut l2);
        assert!((l2.cost_per_slot(&net) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_violation_detected() {
        let mut net = fig1_net();
        net.set_capacity(d(1), d(0), 2.0);
        let v = fig1_plan().validate(&net, &[fig1_file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, PlanViolation::Capacity { .. })), "{v:?}");
    }

    #[test]
    fn extra_usage_tightens_capacity() {
        let net = fig1_net();
        let v = fig1_plan().validate(&net, &[fig1_file()], |from, to, slot| {
            if from == d(1) && to == d(0) && slot == 0 {
                999.0
            } else {
                0.0
            }
        });
        assert!(v.iter().any(|x| matches!(x, PlanViolation::Capacity { slot: 0, .. })));
    }

    #[test]
    fn conservation_violation_detected() {
        let mut p = fig1_plan();
        // Move volume D1→D3 in slot 0 that D1 does not hold yet.
        p.add(FileId(1), 0, d(0), d(2), 1.0);
        let v = p.validate(&fig1_net(), &[fig1_file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, PlanViolation::Conservation { .. })), "{v:?}");
    }

    #[test]
    fn short_delivery_detected() {
        let mut p = TransferPlan::new();
        let f = FileId(1);
        // Only 4 of 6 GB ever leave the source (2 stranded).
        p.add(f, 0, d(1), d(0), 4.0);
        p.add(f, 0, d(1), d(1), 2.0);
        p.add(f, 1, d(0), d(2), 4.0);
        p.add(f, 1, d(1), d(1), 2.0);
        p.add(f, 2, d(1), d(1), 2.0);
        let v = p.validate(&fig1_net(), &[fig1_file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, PlanViolation::Delivery { .. })), "{v:?}");
    }

    #[test]
    fn window_violation_detected() {
        let mut p = fig1_plan();
        p.add(FileId(1), 99, d(1), d(0), 0.5);
        let v = p.validate(&fig1_net(), &[fig1_file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, PlanViolation::Window { slot: 99, .. })));
    }

    #[test]
    fn missing_link_detected() {
        let mut p = fig1_plan();
        p.add(FileId(1), 0, d(2), d(1), 0.5); // no such link in fig1_net
        let v = p.validate(&fig1_net(), &[fig1_file()], |_, _, _| 0.0);
        assert!(v.iter().any(|x| matches!(x, PlanViolation::MissingLink { .. })));
    }

    #[test]
    fn aggregates_and_peaks() {
        let p = fig1_plan();
        assert_eq!(p.link_slot_total(d(1), d(0), 0), 3.0);
        assert_eq!(p.link_slot_total(d(1), d(0), 1), 3.0);
        assert_eq!(p.link_peak(d(1), d(0)), 3.0);
        assert_eq!(p.link_peak(d(1), d(2)), 0.0);
        assert_eq!(p.holdover(FileId(1), d(1), 0), 3.0);
        assert_eq!(p.total_holdover(), 3.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = fig1_plan();
        let b = fig1_plan();
        a.merge(&b);
        assert_eq!(a.volume(FileId(1), 0, d(1), d(0)), 6.0);
    }

    #[test]
    fn zero_add_is_noop() {
        let mut p = TransferPlan::new();
        p.add(FileId(0), 0, d(0), d(1), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn files_set() {
        let p = fig1_plan();
        let files = p.files();
        assert_eq!(files.len(), 1);
        assert!(files.contains(&FileId(1)));
    }

    #[test]
    fn delivery_curve_is_monotone_and_complete() {
        let p = fig1_plan();
        let f = fig1_file();
        let curve = p.delivery_curve(&f, f.dst);
        assert_eq!(curve.len(), 3);
        // 0, 3, 6 GB delivered by the ends of slots 0, 1, 2.
        assert_eq!(curve[0], (0, 0.0));
        assert!((curve[1].1 - 3.0).abs() < 1e-12);
        assert!((curve[2].1 - 6.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "curve must be monotone here");
        }
    }

    #[test]
    fn csv_round_trip() {
        let p = fig1_plan();
        let csv = p.to_csv();
        let back = TransferPlan::from_csv(&csv).unwrap();
        assert_eq!(p, back);
        assert!(csv.lines().count() >= 6); // header + 5 entries
    }

    #[test]
    fn csv_parse_errors() {
        assert!(TransferPlan::from_csv("file,slot,from,to,volume\n1,2,3\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(TransferPlan::from_csv("0,0,0,1,-5\n").unwrap_err().contains("volume"));
    }
}
