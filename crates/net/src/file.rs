//! Inter-datacenter transfer requests.
//!
//! The paper represents all inter-datacenter traffic as *files*: generic
//! blocks of data with a source, a destination, a size, and a maximum
//! tolerable transfer time (Sec. III). A "file" may equally be a backup, a
//! batch of MapReduce intermediate results, or a customer-data migration.

use crate::topology::DcId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a transfer request, unique within one workload.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FileId(pub u64);

/// Bits of a [`FileId`] reserved for the owning tenant (the high bits).
pub const TENANT_BITS: u32 = 16;
const TENANT_SHIFT: u32 = 64 - TENANT_BITS;
const SEQ_MASK: u64 = (1 << TENANT_SHIFT) - 1;

impl FileId {
    /// Builds an id owned by `tenant` with per-tenant sequence number `seq`.
    ///
    /// Multi-tenant workloads encode the tenant in the id's high
    /// [`TENANT_BITS`] bits so requests stay [`TransferRequest`]-shaped —
    /// no schema change — while the sharded runtime can still partition a
    /// batch by owner. Single-tenant workloads (plain `FileId(n)` with
    /// `n < 2^48`) are tenant 0 by construction.
    ///
    /// # Panics
    ///
    /// Panics if `seq` overflows into the tenant bits.
    pub fn for_tenant(tenant: u16, seq: u64) -> FileId {
        assert!(seq <= SEQ_MASK, "sequence {seq} overflows the tenant bits");
        FileId(((tenant as u64) << TENANT_SHIFT) | seq)
    }

    /// The owning tenant (high [`TENANT_BITS`] bits; 0 for plain ids).
    pub fn tenant(&self) -> u16 {
        (self.0 >> TENANT_SHIFT) as u16
    }

    /// The per-tenant sequence number (low bits).
    pub fn seq(&self) -> u64 {
        self.0 & SEQ_MASK
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// The paper's four-tuple `(s_k, d_k, F_k, T_k)` plus a release slot and id.
///
/// * `src` / `dst` — source and destination datacenters;
/// * `size_gb` — file size `F_k` in GB;
/// * `deadline_slots` — maximum tolerable transfer time `T_k`, counted in
///   whole slots from the release slot: the file must fully reside at `dst`
///   by the *end* of slot `release_slot + deadline_slots - 1`;
/// * `release_slot` — the slot `t` at which the file becomes known to the
///   controller (files cannot be predicted in advance, Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRequest {
    /// Unique id.
    pub id: FileId,
    /// Source datacenter `s_k`.
    pub src: DcId,
    /// Destination datacenter `d_k`.
    pub dst: DcId,
    /// File size `F_k` (GB).
    pub size_gb: f64,
    /// Maximum tolerable transfer time `T_k` (slots, ≥ 1).
    pub deadline_slots: usize,
    /// Slot at which the request arrives.
    pub release_slot: u64,
}

impl TransferRequest {
    /// Creates a validated request.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, `size_gb <= 0`, or `deadline_slots == 0`;
    /// these are programming errors in workload construction.
    pub fn new(
        id: FileId,
        src: DcId,
        dst: DcId,
        size_gb: f64,
        deadline_slots: usize,
        release_slot: u64,
    ) -> Self {
        assert!(src != dst, "source and destination must differ");
        assert!(size_gb > 0.0 && size_gb.is_finite(), "file size must be positive and finite");
        assert!(deadline_slots >= 1, "deadline must allow at least one slot");
        Self { id, src, dst, size_gb, deadline_slots, release_slot }
    }

    /// First slot in which this file's data may move.
    pub fn first_slot(&self) -> u64 {
        self.release_slot
    }

    /// Last slot in which this file's data may move (inclusive); by the end
    /// of this slot the file must be at its destination.
    pub fn last_slot(&self) -> u64 {
        self.release_slot + self.deadline_slots as u64 - 1
    }

    /// `true` if the file may use slot `slot`.
    pub fn active_in(&self, slot: u64) -> bool {
        slot >= self.first_slot() && slot <= self.last_slot()
    }

    /// The constant rate a storage-free transfer needs: `F_k / T_k`
    /// (GB per slot) — the "desired transmission rate" of the flow-based
    /// approach (Sec. II-B).
    pub fn desired_rate(&self) -> f64 {
        self.size_gb / self.deadline_slots as f64
    }

    /// Re-stamps this request as released at `slot`, preserving the absolute
    /// deadline — the backlog-carrying runtime uses this when a request that
    /// arrived earlier is finally handed to the controller (which requires
    /// `release_slot == slot`). Slots already spent waiting shrink
    /// `deadline_slots` so [`TransferRequest::last_slot`] is unchanged.
    /// Returns the request untouched when `slot` is not past the release
    /// slot, and `None` when the deadline has already expired (no slot in
    /// which the file could still move).
    pub fn carried_to(&self, slot: u64) -> Option<TransferRequest> {
        if slot <= self.release_slot {
            return Some(*self);
        }
        if slot > self.last_slot() {
            return None;
        }
        let mut carried = *self;
        carried.deadline_slots = (self.last_slot() - slot + 1) as usize;
        carried.release_slot = slot;
        Some(carried)
    }

    /// Expands a multi-destination transfer into one request per
    /// destination, sharing source, size, deadline, and release slot — the
    /// paper's prescription for files with multiple destinations (Sec. III).
    /// Destinations equal to the source are skipped. Ids are
    /// `first_new_id + offset`.
    pub fn fan_out(&self, destinations: &[DcId], first_new_id: u64) -> Vec<TransferRequest> {
        destinations
            .iter()
            .filter(|&&d| d != self.src)
            .enumerate()
            .map(|(i, &dst)| {
                TransferRequest::new(
                    FileId(first_new_id + i as u64),
                    self.src,
                    dst,
                    self.size_gb,
                    self.deadline_slots,
                    self.release_slot,
                )
            })
            .collect()
    }

    /// Splits this request into `parts` equal smaller requests (the paper's
    /// remedy for files too large to cross a link in one slot). Ids are
    /// derived as `base_id + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn split(&self, parts: usize, first_new_id: u64) -> Vec<TransferRequest> {
        assert!(parts >= 1, "must split into at least one part");
        let piece = self.size_gb / parts as f64;
        (0..parts)
            .map(|p| {
                TransferRequest::new(
                    FileId(first_new_id + p as u64),
                    self.src,
                    self.dst,
                    piece,
                    self.deadline_slots,
                    self.release_slot,
                )
            })
            .collect()
    }
}

impl fmt::Display for TransferRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}→{} {:.1} GB within {} slots (t={})",
            self.id, self.src, self.dst, self.size_gb, self.deadline_slots, self.release_slot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> TransferRequest {
        TransferRequest::new(FileId(7), DcId(1), DcId(2), 6.0, 3, 10)
    }

    #[test]
    fn slot_window() {
        let r = req();
        assert_eq!(r.first_slot(), 10);
        assert_eq!(r.last_slot(), 12);
        assert!(r.active_in(10) && r.active_in(12));
        assert!(!r.active_in(9) && !r.active_in(13));
    }

    #[test]
    fn desired_rate_is_size_over_deadline() {
        assert!((req().desired_rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_total_and_window() {
        let r = req();
        let parts = r.split(4, 100);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(|p| p.size_gb).sum();
        assert!((total - r.size_gb).abs() < 1e-12);
        assert!(parts.iter().all(|p| p.first_slot() == 10 && p.last_slot() == 12));
        assert_eq!(parts[3].id, FileId(103));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_endpoints_rejected() {
        TransferRequest::new(FileId(0), DcId(1), DcId(1), 1.0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        TransferRequest::new(FileId(0), DcId(0), DcId(1), 0.0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_deadline_rejected() {
        TransferRequest::new(FileId(0), DcId(0), DcId(1), 1.0, 0, 0);
    }

    #[test]
    fn display_mentions_endpoints() {
        let s = req().to_string();
        assert!(s.contains("D1") && s.contains("D2") && s.contains("file#7"));
    }

    #[test]
    fn fan_out_covers_each_destination_once() {
        let r = req(); // src = D1
        let out = r.fan_out(&[DcId(0), DcId(1), DcId(2)], 50);
        // The source itself (D1) is skipped.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dst, DcId(0));
        assert_eq!(out[1].dst, DcId(2));
        assert_eq!(out[0].id, FileId(50));
        assert_eq!(out[1].id, FileId(51));
        assert!(out.iter().all(|f| f.src == r.src
            && f.size_gb == r.size_gb
            && f.deadline_slots == r.deadline_slots
            && f.release_slot == r.release_slot));
    }

    #[test]
    fn carried_to_preserves_absolute_deadline() {
        let r = req(); // release 10, deadline 3 → last slot 12
                       // Not yet past release: unchanged.
        assert_eq!(r.carried_to(10), Some(r));
        assert_eq!(r.carried_to(3), Some(r));
        // Carried one slot: window shrinks, absolute deadline holds.
        let c = r.carried_to(11).unwrap();
        assert_eq!(c.release_slot, 11);
        assert_eq!(c.deadline_slots, 2);
        assert_eq!(c.last_slot(), r.last_slot());
        assert_eq!((c.id, c.src, c.dst, c.size_gb), (r.id, r.src, r.dst, r.size_gb));
        // Carried to the last slot: one slot left.
        let last = r.carried_to(12).unwrap();
        assert_eq!(last.deadline_slots, 1);
        assert_eq!(last.last_slot(), 12);
        // Past the deadline: expired.
        assert_eq!(r.carried_to(13), None);
    }

    #[test]
    fn tenant_ids_round_trip_and_plain_ids_are_tenant_zero() {
        let id = FileId::for_tenant(7, 42);
        assert_eq!(id.tenant(), 7);
        assert_eq!(id.seq(), 42);
        let plain = FileId(123_456);
        assert_eq!(plain.tenant(), 0);
        assert_eq!(plain.seq(), 123_456);
        // Distinct tenants with the same sequence number never collide.
        assert_ne!(FileId::for_tenant(1, 5), FileId::for_tenant(2, 5));
        // Tenant ids keep the FileId ordering within a tenant.
        assert!(FileId::for_tenant(3, 1) < FileId::for_tenant(3, 2));
    }

    #[test]
    #[should_panic(expected = "overflows the tenant bits")]
    fn tenant_sequence_overflow_is_rejected() {
        FileId::for_tenant(1, 1 << 60);
    }

    #[test]
    fn fan_out_to_nobody_is_empty() {
        let r = req();
        assert!(r.fan_out(&[r.src], 0).is_empty());
        assert!(r.fan_out(&[], 0).is_empty());
    }
}
