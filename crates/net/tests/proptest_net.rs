//! Property-based tests for the network substrate: charging schemes,
//! ledger accounting, time expansion, and (metamorphic) plan validation.

use postcard_net::{
    Arc, ArcKind, ChargingScheme, DcId, FileId, Network, PercentileScheme, TimeExpandedGraph,
    TrafficLedger, TransferPlan, TransferRequest,
};
use proptest::prelude::*;

fn volumes() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1000.0, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The charged volume is always one of the observed volumes, the 100-th
    /// percentile is the max, and charging is monotone in q.
    #[test]
    fn percentile_charging_properties(vols in volumes(), q1 in 1.0f64..100.0, q2 in 1.0f64..100.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = PercentileScheme::new(lo).charged_volume(&vols);
        let b = PercentileScheme::new(hi).charged_volume(&vols);
        prop_assert!(a <= b + 1e-12, "charging must be monotone in q: {a} vs {b}");
        prop_assert!(vols.iter().any(|&v| (v - a).abs() < 1e-12));
        let max = PercentileScheme::MAX.charged_volume(&vols);
        let true_max = vols.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((max - true_max).abs() < 1e-12);
    }

    /// Ledger peaks equal the max of the recorded series, and the bill is
    /// the price-weighted sum of peaks.
    #[test]
    fn ledger_peak_is_series_max(
        records in prop::collection::vec((0usize..3, 0u64..20, 0.1f64..50.0), 1..60),
    ) {
        let net = Network::complete(3, 2.0, 1e9);
        let mut ledger = TrafficLedger::new(3);
        for &(pair, slot, vol) in &records {
            let (i, j) = [(0, 1), (1, 2), (2, 0)][pair];
            ledger.record(DcId(i), DcId(j), slot, vol);
        }
        let mut expected_bill = 0.0;
        for l in net.links() {
            let series = ledger.series(l.from, l.to);
            let max = series.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!((ledger.peak(l.from, l.to) - max).abs() < 1e-9);
            expected_bill += 2.0 * max;
        }
        prop_assert!((ledger.cost_per_slot(&net) - expected_bill).abs() < 1e-9);
    }

    /// Time expansion has exactly (links + dcs) arcs per slot, and arc
    /// endpoints always connect consecutive layers.
    #[test]
    fn time_expansion_structure(n in 2usize..7, t0 in 0u64..50, slots in 1usize..9) {
        let net = Network::complete(n, 1.0, 10.0);
        let g = TimeExpandedGraph::new(&net, t0, slots);
        prop_assert_eq!(g.num_arcs(), slots * (n * (n - 1) + n));
        for (_, arc) in g.arcs() {
            prop_assert_eq!(arc.head().layer, arc.tail().layer + 1);
            prop_assert!(arc.slot >= t0 && arc.slot < t0 + slots as u64);
            match arc.kind {
                ArcKind::Storage => prop_assert_eq!(arc.from, arc.to),
                ArcKind::Transit => prop_assert_ne!(arc.from, arc.to),
            }
        }
        // Per-slot arc counts are uniform.
        for s in t0..t0 + slots as u64 {
            prop_assert_eq!(g.arcs_in_slot(s).count(), n * n);
        }
    }

    /// A hop-by-hop relay plan built constructively is always valid, and
    /// single mutations break exactly the right invariant (metamorphic).
    #[test]
    fn constructed_relay_plan_valid_and_mutations_caught(
        size in 1.0f64..50.0,
        hold in 0usize..3,
    ) {
        // Chain 0 → 1 → 2 with optional holding at the relay.
        let net = Network::complete(3, 1.0, 1e9);
        let deadline = 2 + hold;
        let f = TransferRequest::new(FileId(1), DcId(0), DcId(2), size, deadline, 0);
        let mut plan = TransferPlan::new();
        plan.add(f.id, 0, DcId(0), DcId(1), size);
        for h in 0..hold {
            plan.add(f.id, 1 + h as u64, DcId(1), DcId(1), size);
        }
        plan.add(f.id, 1 + hold as u64, DcId(1), DcId(2), size);
        prop_assert!(plan.is_valid(&net, &[f], |_, _, _| 0.0));

        // Mutation 1: inflate one transit entry ⇒ conservation breaks.
        let mut bad = plan.clone();
        bad.add(f.id, 0, DcId(0), DcId(1), 1.0);
        prop_assert!(!bad.is_valid(&net, &[f], |_, _, _| 0.0));

        // Mutation 2: move the final hop past the deadline ⇒ window breaks.
        let mut bad = plan.clone();
        bad.add(f.id, deadline as u64 + 3, DcId(1), DcId(2), 0.5);
        prop_assert!(!bad.is_valid(&net, &[f], |_, _, _| 0.0));

        // Mutation 3: shrink capacity below the plan ⇒ capacity breaks.
        let tight = Network::complete(3, 1.0, size * 0.5);
        prop_assert!(!plan.is_valid(&tight, &[f], |_, _, _| 0.0));
    }

    /// Applying a plan to a ledger records exactly the transit volumes.
    #[test]
    fn plan_ledger_roundtrip(size in 1.0f64..50.0) {
        let net = Network::complete(3, 3.0, 1e9);
        let f = TransferRequest::new(FileId(9), DcId(0), DcId(2), size, 2, 5);
        let mut plan = TransferPlan::new();
        plan.add(f.id, 5, DcId(0), DcId(1), size);
        plan.add(f.id, 6, DcId(1), DcId(2), size);
        let mut ledger = TrafficLedger::new(3);
        plan.apply_to_ledger(&mut ledger);
        prop_assert!((ledger.volume(DcId(0), DcId(1), 5) - size).abs() < 1e-12);
        prop_assert!((ledger.volume(DcId(1), DcId(2), 6) - size).abs() < 1e-12);
        prop_assert!((ledger.total_volume(DcId(0), DcId(1)) - size).abs() < 1e-12);
        prop_assert!((ledger.cost_per_slot(&net) - 6.0 * size).abs() < 1e-9);
        let _ = net.links().collect::<Vec<_>>();
    }

    /// Rank selection agrees with the sort-based oracle the implementation
    /// replaced: `select_nth_unstable_by` must pick the exact element a full
    /// `total_cmp` sort puts at the charged index, bit for bit.
    #[test]
    fn charged_volume_matches_sort_oracle(vols in volumes(), q in 1.0f64..=100.0) {
        let scheme = PercentileScheme::new(q);
        let fast = scheme.charged_volume(&vols);
        let mut sorted = vols.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
        let oracle = sorted[rank.clamp(1, sorted.len()) - 1];
        prop_assert_eq!(fast.to_bits(), oracle.to_bits());
    }

    /// Windowed billing invariants: the current-window charge is monotone in
    /// q, and any window length covering the whole horizon charges the same
    /// as the whole-history evaluation (window-length invariance).
    #[test]
    fn windowed_charging_properties(
        records in prop::collection::vec((0u64..30, 0.1f64..100.0), 1..40),
        q1 in 1.0f64..=100.0,
        q2 in 1.0f64..=100.0,
        window in 1usize..50,
    ) {
        let mut ledger = TrafficLedger::new(2);
        for &(slot, vol) in &records {
            ledger.record(DcId(0), DcId(1), slot, vol);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = ledger.charged_volume(DcId(0), DcId(1), PercentileScheme::new(lo), window);
        let b = ledger.charged_volume(DcId(0), DcId(1), PercentileScheme::new(hi), window);
        prop_assert!(a <= b + 1e-12, "window charge must be monotone in q: {} vs {}", a, b);

        // Any window at least as long as the horizon holds the entire series
        // in window 0, so the charge is invariant in the window length and
        // q=100 equals the running peak exactly.
        let horizon = ledger.horizon() as usize;
        for w in [horizon, horizon + 1, horizon + 17] {
            let charged = ledger.charged_volume(DcId(0), DcId(1), PercentileScheme::MAX, w);
            prop_assert_eq!(charged.to_bits(), ledger.peak(DcId(0), DcId(1)).to_bits());
        }

        // The burst budget never exceeds the scheme's free-slot count.
        let scheme = ChargingScheme::Percentile { q: lo, window_slots: window };
        let budget = ledger.burst_budget(DcId(0), DcId(1), scheme, ledger.horizon().saturating_sub(1));
        prop_assert!(budget <= scheme.free_slots());
    }

    /// An empty window (no traffic recorded in it yet) always charges zero.
    #[test]
    fn empty_windows_charge_zero(window in 1usize..30, q in 1.0f64..=100.0) {
        let ledger = TrafficLedger::new(2);
        let charged = ledger.charged_volume(DcId(0), DcId(1), PercentileScheme::new(q), window);
        prop_assert_eq!(charged, 0.0);
        let scheme = ChargingScheme::Percentile { q, window_slots: window };
        prop_assert_eq!(ledger.window_baseline(DcId(0), DcId(1), scheme, 0), 0.0);
        prop_assert_eq!(ledger.burst_budget(DcId(0), DcId(1), scheme, 0), scheme.free_slots());
    }

    /// `TransferRequest::split` conserves size and produces valid requests.
    #[test]
    fn split_conserves_volume(size in 1.0f64..500.0, parts in 1usize..10) {
        let f = TransferRequest::new(FileId(0), DcId(0), DcId(1), size, 4, 7);
        let pieces = f.split(parts, 100);
        prop_assert_eq!(pieces.len(), parts);
        let total: f64 = pieces.iter().map(|p| p.size_gb).sum();
        prop_assert!((total - size).abs() < 1e-9);
        for p in &pieces {
            prop_assert_eq!(p.deadline_slots, f.deadline_slots);
            prop_assert_eq!(p.release_slot, f.release_slot);
        }
    }
}

/// Arc usability windows agree with the request's own window arithmetic.
#[test]
fn arc_usability_matches_request_window() {
    let net = Network::complete(3, 1.0, 10.0);
    let g = TimeExpandedGraph::new(&net, 0, 10);
    let f = TransferRequest::new(FileId(0), DcId(0), DcId(1), 5.0, 3, 4); // slots 4..=6
    let usable: Vec<&Arc> = g.arcs_usable_by(&f).map(|(_, a)| a).collect();
    assert!(usable.iter().all(|a| (4..=6).contains(&a.slot)));
    assert_eq!(usable.len(), 3 * 9);
}
