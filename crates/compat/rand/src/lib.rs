//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! This workspace builds in containers without network access to a crates
//! registry, so the handful of `rand` features the code actually uses are
//! vendored here behind the same paths and trait names:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen`] for `f64`/`f32`/`bool` and the unsigned integers;
//! * [`Rng::gen_bool`].
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — fast,
//! well-distributed, and deterministic per seed, which is all the
//! simulator/test code relies on (no test encodes the exact byte stream of
//! upstream `rand`). Not cryptographically secure, exactly like `StdRng`'s
//! contract ("not a reproducibility guarantee across versions").

/// Random number generators.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++ under the hood.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding interface (subset: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`; `hi` exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Debiased multiply-shift rejection sampling.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full-width range
                }
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (lo as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Floating rounding can land exactly on `hi`; clamp back.
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform draw of a [`Standard`]-samplable type (`f64` is `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&x));
            let y = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_all_small_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
