//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! offline `serde` compat crate.
//!
//! `syn` and `quote` are not available in the offline build containers, so
//! the item is parsed directly from the [`proc_macro::TokenStream`]: outer
//! attributes and visibility are skipped, then the struct/enum shape and
//! field/variant names are extracted (field *types* are never needed — the
//! generated code lets inference pick the right `Deserialize` impl from the
//! struct literal it builds). Code is generated as a string and re-parsed.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields → JSON objects keyed by field name;
//! * newtype structs → transparent (the inner value);
//! * tuple structs with 2+ fields → arrays;
//! * unit structs → `null`;
//! * enums, externally tagged: unit variants as `"Variant"`, data-carrying
//!   variants as `{"Variant": payload}`.
//!
//! Generics are deliberately unsupported (no derived type here is generic);
//! the macro panics with a clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl should parse")
}

/// Derives `serde::Deserialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl should parse")
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; only the arity matters.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);

    let keyword = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) compat shim does not support generic type `{name}`");
    }

    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        }),
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        kw => panic!("cannot derive for `{kw} {name}`"),
    };
    Item { name, shape }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // `#`
                toks.next(); // `[...]`
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next(); // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Type tokens
/// are skipped up to the next comma at angle-bracket depth zero (parens and
/// braces arrive as atomic groups, so only `<`/`>` need tracking).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return names,
            Some(TokenTree::Ident(i)) => names.push(i.to_string()),
            other => panic!("expected field name, found {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0usize;
        loop {
            match toks.next() {
                None => return names,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
            }
        }
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0usize;
    for tok in body {
        saw_tokens = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // `(A, B)` has one separating comma; `(A, B,)` has a trailing one. A
    // trailing comma leaves no tokens after it, so both shapes land on
    // `count + 1` unless the body was empty.
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => return variants,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional `= discriminant` and the separating comma.
        for tok in toks.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => match fields {
            Fields::Named(names) => ser_named_map(names, "self."),
            Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
            Fields::Unit => "::serde::Value::Null".to_string(),
        },
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::serialize(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let payload = ser_named_map(fields, "");
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), {payload})]),",
                                binds = fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `Value::Map` literal from named fields; `prefix` is `self.` for structs
/// and empty for destructured enum-variant bindings.
fn ser_named_map(names: &[String], prefix: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => match fields {
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize(::serde::field(m, \"{f}\", \"{name}\")?)?,"
                        )
                    })
                    .collect();
                format!(
                    "let m = v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", v.kind()))?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(" ")
                )
            }
            Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::deserialize(v)?))"),
            Fields::Tuple(n) => format!(
                "let items = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", v.kind()))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::Error::custom(format!(\"expected {n} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                de_seq_elems(*n, "items")
            ),
            Fields::Unit => format!("let _ = v; Ok({name})"),
        },
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn de_seq_elems(n: usize, seq: &str) -> String {
    (0..n)
        .map(|i| format!("::serde::Deserialize::deserialize(&{seq}[{i}])?"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{vname}\" => Ok({name}::{vname}),", vname = v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            let body = match &v.fields {
                Fields::Unit => return None,
                Fields::Tuple(1) => format!(
                    "Ok({name}::{vname}(::serde::Deserialize::deserialize(payload)?))"
                ),
                Fields::Tuple(n) => format!(
                    "let items = payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", payload.kind()))?;\n\
                     if items.len() != {n} {{\n\
                         return Err(::serde::Error::custom(format!(\"expected {n} elements for {name}::{vname}, found {{}}\", items.len())));\n\
                     }}\n\
                     Ok({name}::{vname}({}))",
                    de_seq_elems(*n, "items")
                ),
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(::serde::field(m, \"{f}\", \"{name}::{vname}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let m = payload.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", payload.kind()))?;\n\
                         Ok({name}::{vname} {{ {} }})",
                        inits.join(" ")
                    )
                }
            };
            Some(format!("\"{vname}\" => {{ {body} }}"))
        })
        .collect();
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                     {data_arms}\n\
                     other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }},\n\
             other => Err(::serde::Error::expected(\"enum representation\", other.kind())),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        data_arms = data_arms.join("\n"),
    )
}
