//! Offline drop-in subset of the [`serde`](https://serde.rs) surface this
//! workspace uses.
//!
//! The real `serde` cannot be fetched in the offline build containers, so
//! this crate provides the same *spelling* — `use serde::{Serialize,
//! Deserialize}` plus `#[derive(Serialize, Deserialize)]` — over a much
//! simpler model: types convert to and from a self-describing [`Value`]
//! tree, and the [`json`] module renders that tree as JSON text. That is
//! exactly what the runtime's checkpoint files and metrics exports need.
//!
//! Design points:
//!
//! * **Exact floats.** `f64` values are printed with Rust's shortest
//!   round-trip formatting, so a snapshot → restore cycle reproduces every
//!   bit of ledger and cost state (the runtime's crash-resume guarantee
//!   depends on this). Non-finite values are emitted as bare `inf` /
//!   `-inf` / `nan` tokens, which the parser accepts back.
//! * **Structs** serialize as JSON objects keyed by field name, newtype
//!   structs as their inner value, tuple structs as arrays, enums as
//!   `"Variant"` (unit) or `{"Variant": payload}` (data-carrying) — the
//!   same externally-tagged convention as real serde.
//! * Unknown fields are ignored on deserialize; missing fields are errors —
//!   a crude but effective forward/backward-compatibility posture for
//!   versioned snapshots.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (all Rust signed ints widen to `i64`).
    Int(i64),
    /// An unsigned integer (all Rust unsigned ints widen to `u64`).
    UInt(u64),
    /// A floating-point number (possibly non-finite).
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Kind name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while decoding Y" helper used by the derive macros.
    pub fn expected(what: &str, context: &str) -> Self {
        Error { msg: format!("expected {what} while decoding {context}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in a decoded map (derive-macro helper).
///
/// # Errors
///
/// Names the missing field and type.
pub fn field<'a>(
    map: &'a [(String, Value)],
    name: &str,
    context: &str,
) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` while decoding {context}")))
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Describes the first structural mismatch encountered.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) if *i >= 0 => <$t>::try_from(*i as u64)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("unsigned integer", other.kind())),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => i64::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("sequence", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            other => Err(Error::expected("map", other.kind())),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::expected("sequence", v.kind()))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-tuple, found {} elements", items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

pub mod json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(String::deserialize(&"hi".to_string().serialize()).unwrap(), "hi");
        let xs = vec![1.5f64, -2.25, 0.0];
        assert_eq!(Vec::<f64>::deserialize(&xs.serialize()).unwrap(), xs);
        let t = (1u64, "x".to_string(), 2.5f64);
        assert_eq!(<(u64, String, f64)>::deserialize(&t.serialize()).unwrap(), t);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize(&Some(3u32).serialize()).unwrap(), Some(3));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert!(u64::deserialize(&Value::Int(-1)).is_err());
        assert!(i8::deserialize(&Value::Int(1000)).is_err());
    }

    #[test]
    fn type_mismatches_name_kinds() {
        let e = bool::deserialize(&Value::Str("x".into())).unwrap_err();
        assert!(e.to_string().contains("bool"));
        let e = Vec::<f64>::deserialize(&Value::Bool(true)).unwrap_err();
        assert!(e.to_string().contains("sequence"));
    }
}
