//! JSON rendering and parsing of [`Value`] trees.
//!
//! Standard JSON plus three extensions needed by the domain: bare `inf`,
//! `-inf`, and `nan` tokens for non-finite floats (link capacities are
//! routinely `f64::INFINITY`). Floats are printed with Rust's shortest
//! round-trip formatting, so parse(print(x)) reproduces `x` bit-for-bit —
//! the property the runtime's checkpoint/resume guarantee rests on.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    out
}

/// Serializes a value as indented JSON (2 spaces).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    out.push('\n');
    out
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Reports the byte offset and nature of the first syntax error, or the
/// structural mismatch from [`Deserialize`].
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&parse(text)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Reports the byte offset and nature of the first syntax error.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_composite(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_composite(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_composite(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("nan");
    } else if f == f64::INFINITY {
        out.push_str("inf");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-inf");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the token parses back as a float, not an
        // integer — Value equality in round-trip tests depends on it.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.map(),
            Some(b'[') => self.seq(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b'n') if self.eat_word("nan") => Ok(Value::Float(f64::NAN)),
            Some(b'i') if self.eat_word("inf") => Ok(Value::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(&format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(&format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err(&format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::UInt(9_007_199_254_740_993),
            Value::Float(0.1),
            Value::Float(-1234.5678),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Str("he\"llo\n\\world\tΩ".into()),
        ] {
            let text = to_string(&v);
            assert_eq!(parse(&text).unwrap(), v, "text: {text}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let mut x = 0.1f64;
        for _ in 0..100 {
            x = x * 1.37 + 0.01;
            let text = to_string(&x);
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_floats_keep_their_floatness() {
        let text = to_string(&3.0f64);
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("xs".into(), Value::Seq(vec![Value::UInt(1), Value::Float(2.5)])),
            ("flag".into(), Value::Bool(false)),
            ("inner".into(), Value::Map(vec![("s".into(), Value::Str("x,]}".into()))])),
            ("empty_seq".into(), Value::Seq(vec![])),
            ("empty_map".into(), Value::Map(vec![])),
        ]);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn syntax_errors_name_the_offset() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("12 34").unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn nan_round_trips_as_nan() {
        let text = to_string(&f64::NAN);
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan());
    }
}
