//! Offline drop-in subset of the [`criterion`](https://bheisler.github.io/criterion.rs)
//! benchmarking API used by this workspace.
//!
//! The real crate cannot be fetched in the offline build containers, so
//! this is a minimal wall-clock harness behind the same method names:
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `sample_size`, `configure_from_args`,
//! `final_summary`. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples (each sample auto-scales its iteration
//! count toward ~5 ms), and prints min/median/mean per-iteration times.
//! No statistics beyond that, no plots, no baseline comparison.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted on — the
/// stub always times routine-only, which is what every variant asks for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations, one per sample.
    results: Vec<Duration>,
}

impl Bencher {
    /// Benchmarks `routine` alone.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Scale iterations per sample toward ~5 ms so fast routines still
        // get a stable timing and slow ones don't stall the run.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters);
        }
    }

    /// Benchmarks `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

fn run_benchmark(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, results: Vec::new() };
    f(&mut b);
    b.results.sort();
    let (min, median, mean) = if b.results.is_empty() {
        (Duration::ZERO, Duration::ZERO, Duration::ZERO)
    } else {
        let sum: Duration = b.results.iter().sum();
        (b.results[0], b.results[b.results.len() / 2], sum / b.results.len() as u32)
    };
    println!("{label:<50} min {min:>12.2?}   median {median:>12.2?}   mean {mean:>12.2?}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_benchmark(&label, self.sample_size, f);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
    benchmarks_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, benchmarks_run: 0 }
    }
}

impl Criterion {
    /// Accepts (and ignores) harness CLI arguments such as `--bench`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.default_sample_size, f);
        self.benchmarks_run += 1;
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&mut self) {
        println!("completed {} benchmarks", self.benchmarks_run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default().sample_size(3).configure_from_args();
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls >= 4, "routine should run at least once per sample: {calls}");
        c.final_summary();
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 8]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 10);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("5x5").to_string(), "5x5");
    }
}
