//! Offline drop-in subset of the [`proptest`](https://proptest-rs.github.io)
//! API used by this workspace.
//!
//! The real crate cannot be fetched in the offline build containers, so the
//! features the tests actually use are reimplemented over the vendored
//! `rand` shim:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings;
//! * range strategies (`0u64..5000`, `0.1f64..1.0`, inclusive variants),
//!   tuples of strategies, and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Semantics differ from upstream in two deliberate ways: case generation
//! is **deterministic** — seeded per (test name, case index) so failures
//! reproduce exactly without a persistence file — and there is **no
//! shrinking**; a failure reports the case index and seed instead of a
//! minimized input. For the invariant-style properties in this repo that
//! trade-off is fine.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates one value per test case.
///
/// The `Value` associated type mirrors upstream so signatures like
/// `impl Strategy<Value = Vec<f64>>` compile unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// A strategy that always yields a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// Strategy for `Vec<T>` with a strategy-drawn length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E, L> {
        element: E,
        len: L,
    }

    /// `vec(element, 1..40)`: vectors whose length is drawn from `len` and
    /// whose elements are drawn from `element`.
    pub fn vec<E: Strategy, L: Strategy<Value = usize>>(element: E, len: L) -> VecStrategy<E, L> {
        VecStrategy { element, len }
    }

    impl<E: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<E, L> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (subset: the case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` for each case with a deterministic per-case RNG; panics with
/// the case index and seed on the first failure (macro plumbing — tests use
/// [`proptest!`] instead).
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    for case in 0..u64::from(config.cases) {
        let seed = fnv1a(name) ^ (case + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(msg) = body(&mut rng) {
            panic!("property `{name}` failed at case {case} (seed {seed:#018x}):\n{msg}");
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_cases(stringify!($name), &config, |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?} == {:?}`", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?} != {:?}`", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?} != {:?}`: {}", l, r, format!($($fmt)+)));
        }
    }};
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn lens() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0f64..10.0, 1..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0, z in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {y}");
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            xs in lens(),
            pairs in prop::collection::vec((0usize..3, 0.5f64..1.5), 0..6),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|v| (0.0..10.0).contains(v)));
            for (i, w) in &pairs {
                prop_assert!(*i < 3);
                prop_assert!((0.5..1.5).contains(w));
            }
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(xs.len(), xs.len() + 1);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first = Vec::new();
        let cfg = ProptestConfig::with_cases(8);
        crate::run_cases("det", &cfg, |rng| {
            first.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det", &cfg, |rng| {
            second.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != first[0]), "cases should vary");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err("nope".to_string())
        });
    }
}
