//! Billing-window baseline: max-charging vs percentile-aware bills.
//!
//! Replays the diurnal multi-day presets ([`postcard_sim::DiurnalPreset`])
//! twice — once under the paper's max-charging controller, once with the
//! percentile-aware headroom rung — and prices **both** final ledgers under
//! the same 95th-percentile tariff. The p95-aware bill must come out
//! *strictly lower* (the daily burst rides each billing window's free
//! top-5% slots); CI gates on that inequality and on the deterministic
//! bills matching the committed baseline (`BENCH_billing.json`). Everything
//! here is wall-clock independent, so every gate arms unconditionally.

use postcard_sim::{compare_billing, DiurnalPreset};
use serde::{Deserialize, Serialize};

/// One benchmark preset: a diurnal workload replayed under both tariffs.
#[derive(Debug, Clone)]
pub struct PresetSpec {
    /// Preset name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Days (= billing windows).
    pub days: u64,
    /// Seed for the valley jitter.
    pub seed: u64,
}

impl PresetSpec {
    fn preset(&self) -> DiurnalPreset {
        DiurnalPreset { days: self.days, ..DiurnalPreset::three_day() }
    }
}

/// The presets: the acceptance three-day run (carries the CI gates) and, on
/// full runs, a week-long one.
pub fn presets(quick: bool) -> Vec<PresetSpec> {
    let mut out = vec![PresetSpec { name: "three_day", days: 3, seed: 1 }];
    if !quick {
        out.push(PresetSpec { name: "week", days: 7, seed: 2 });
    }
    out
}

/// Result of one preset's paired replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetResult {
    /// Preset name.
    pub name: String,
    /// Days (= billing windows).
    pub days: u64,
    /// The tariff spec both ledgers were priced under (e.g. `p95:48`).
    pub scheme: String,
    /// Total bill of the max-charging controller's ledger.
    pub max_bill: f64,
    /// Total bill of the percentile-aware controller's ledger.
    pub p95_bill: f64,
    /// `max_bill / p95_bill`.
    pub reduction_factor: f64,
    /// Files accepted / rejected by the max-charging run.
    pub max_accepted: usize,
    /// Files rejected by the max-charging run.
    pub max_rejected: usize,
    /// Files accepted by the percentile-aware run.
    pub p95_accepted: usize,
    /// Files rejected by the percentile-aware run.
    pub p95_rejected: usize,
    /// Times the headroom rung declined and handed a batch to the LP tiers.
    pub headroom_declined: u64,
}

/// Runs one preset.
///
/// # Panics
///
/// Panics if either service run fails — the presets are feasible by
/// construction, so a failure is a harness bug.
pub fn run_preset(spec: &PresetSpec) -> PresetResult {
    let preset = spec.preset();
    let cmp = compare_billing(&preset, spec.seed).expect("diurnal billing comparison");
    PresetResult {
        name: spec.name.to_string(),
        days: spec.days,
        scheme: cmp.scheme.spec(),
        max_bill: cmp.max_bill,
        p95_bill: cmp.p95_bill,
        reduction_factor: cmp.reduction_factor(),
        max_accepted: cmp.max_admissions.0,
        max_rejected: cmp.max_admissions.1,
        p95_accepted: cmp.p95_admissions.0,
        p95_rejected: cmp.p95_admissions.1,
        headroom_declined: cmp.headroom_declined,
    }
}

/// The whole benchmark report (`BENCH_billing.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// One entry per preset.
    pub presets: Vec<PresetResult>,
}

/// Runs every preset.
pub fn run_all(quick: bool) -> BenchReport {
    BenchReport { presets: presets(quick).iter().map(run_preset).collect() }
}

/// Checks a fresh report against the committed baseline. All gates are
/// deterministic and arm unconditionally: the p95-aware bill must be
/// strictly lower than the max-charging bill, admissions must not be traded
/// away for it, and both bills must reproduce the baseline exactly (the
/// whole pipeline is seeded). Returns the failures (empty = pass).
pub fn check(current: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in &current.presets {
        if cur.p95_bill >= cur.max_bill {
            failures.push(format!(
                "{}: p95-aware bill {} is not strictly below the max-charging bill {}",
                cur.name, cur.p95_bill, cur.max_bill
            ));
        }
        if (cur.p95_accepted, cur.p95_rejected) != (cur.max_accepted, cur.max_rejected) {
            failures.push(format!(
                "{}: the cheaper bill traded admissions away ({}/{} vs {}/{})",
                cur.name, cur.p95_accepted, cur.p95_rejected, cur.max_accepted, cur.max_rejected
            ));
        }
        if let Some(base) = baseline.presets.iter().find(|p| p.name == cur.name) {
            for (what, got, want) in [
                ("max_bill", cur.max_bill, base.max_bill),
                ("p95_bill", cur.p95_bill, base.p95_bill),
            ] {
                let rel = (got - want).abs() / want.abs().max(1e-12);
                if rel > 1e-9 {
                    failures.push(format!(
                        "{}: {what} {got} drifted from baseline {want} (rel {rel:.3e})",
                        cur.name
                    ));
                }
            }
            if (cur.p95_accepted, cur.p95_rejected) != (base.p95_accepted, base.p95_rejected) {
                failures.push(format!(
                    "{}: accept/reject counts diverged from baseline ({}/{} -> {}/{})",
                    cur.name,
                    base.p95_accepted,
                    base.p95_rejected,
                    cur.p95_accepted,
                    cur.p95_rejected
                ));
            }
        } else {
            failures.push(format!("{}: preset missing from baseline", cur.name));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PresetSpec {
        PresetSpec { name: "tiny", days: 2, seed: 9 }
    }

    #[test]
    fn preset_run_is_deterministic_and_strictly_cheaper() {
        let a = run_preset(&tiny());
        let b = run_preset(&tiny());
        assert_eq!(a, b, "seeded pipeline must be reproducible");
        assert!(a.p95_bill < a.max_bill, "p95 {} vs max {}", a.p95_bill, a.max_bill);
        assert_eq!((a.p95_accepted, a.p95_rejected), (a.max_accepted, a.max_rejected));
        assert_eq!(a.scheme, "p95:48");
    }

    #[test]
    fn check_catches_inversion_drift_and_missing_presets() {
        let good = run_preset(&tiny());
        let report = BenchReport { presets: vec![good.clone()] };
        assert!(check(&report, &report).is_empty(), "{:?}", check(&report, &report));

        let mut inverted = good.clone();
        inverted.p95_bill = inverted.max_bill + 1.0;
        let failures = check(&BenchReport { presets: vec![inverted] }, &report);
        assert!(failures.iter().any(|f| f.contains("not strictly below")), "{failures:?}");

        let mut traded = good.clone();
        traded.p95_accepted -= 1;
        traded.p95_rejected += 1;
        let failures = check(&BenchReport { presets: vec![traded] }, &report);
        assert!(failures.iter().any(|f| f.contains("traded admissions")), "{failures:?}");

        let mut drifted = good.clone();
        drifted.p95_bill *= 1.5;
        drifted.max_bill *= 3.0; // keep the inequality true so only drift fires
        let failures = check(&BenchReport { presets: vec![drifted] }, &report);
        assert!(failures.iter().any(|f| f.contains("drifted from baseline")), "{failures:?}");

        let unknown = BenchReport { presets: vec![PresetResult { name: "other".into(), ..good }] };
        assert!(check(&unknown, &report).iter().any(|f| f.contains("missing from baseline")));
    }

    #[test]
    fn report_json_round_trips() {
        let report = BenchReport { presets: vec![run_preset(&tiny())] };
        let json = serde::json::to_string_pretty(&report);
        let back: BenchReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
