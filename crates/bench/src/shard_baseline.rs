//! Sharded vs single-shard service-runtime baseline.
//!
//! Replays a block-diagonal multi-tenant trace
//! ([`postcard_sim::TenantScenario`]) through the crash-safe runtime twice:
//! once unsharded, once with one shard per tenant (`--shard-by tenant`
//! semantics). On tenant-disjoint instances the reconciled sharded run must
//! reproduce the unsharded admissions and bill exactly (up to float
//! round-off), with zero shard conflicts — those fields are deterministic
//! and CI gates on them against the committed baseline
//! (`BENCH_shard.json`). Wall-clock speedup is machine-dependent: the ≥2×
//! parallel-speedup gate only arms when the host actually has ≥ 4 worker
//! threads available (the CI containers often expose a single core, where
//! sharding cannot beat the thread-spawn overhead).

use postcard_runtime::{RuntimeConfig, ShardBy};
use postcard_sim::{run_trace_service, trace_to_arrivals, TenantScenario};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One benchmark preset: a multi-tenant scenario replayed both ways.
#[derive(Debug, Clone)]
pub struct PresetSpec {
    /// Preset name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Tenants (= shard count in the sharded run).
    pub tenants: usize,
    /// Datacenters per tenant cluster.
    pub dcs_per_tenant: usize,
    /// Batch-size range per tenant per slot.
    pub files_per_tenant_slot: (usize, usize),
    /// Slots per run.
    pub num_slots: u64,
    /// Seed for the network prices and the trace.
    pub seed: u64,
}

impl PresetSpec {
    fn scenario(&self) -> TenantScenario {
        TenantScenario {
            name: self.name.into(),
            tenants: self.tenants,
            dcs_per_tenant: self.dcs_per_tenant,
            files_per_tenant_slot: self.files_per_tenant_slot,
            num_slots: self.num_slots,
            ..TenantScenario::quad()
        }
    }
}

/// The presets: a small four-tenant run (carries the CI gates) and, on full
/// runs, a heavier one where the parallel speedup is actually visible.
pub fn presets(quick: bool) -> Vec<PresetSpec> {
    let mut out = vec![PresetSpec {
        name: "quad_small",
        tenants: 4,
        dcs_per_tenant: 3,
        files_per_tenant_slot: (1, 2),
        num_slots: 8,
        seed: 71,
    }];
    if !quick {
        out.push(PresetSpec {
            name: "quad_heavy",
            tenants: 4,
            dcs_per_tenant: 4,
            files_per_tenant_slot: (3, 6),
            num_slots: 16,
            seed: 72,
        });
    }
    out
}

/// Result of one preset's paired replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetResult {
    /// Preset name.
    pub name: String,
    /// Tenants (= shards in the sharded run).
    pub tenants: usize,
    /// Requests in the trace.
    pub requests: usize,
    /// Files accepted (identical in both runs — gated).
    pub accepted: usize,
    /// Files rejected (identical in both runs — gated).
    pub rejected: usize,
    /// Final bill per slot of the unsharded run.
    pub unsharded_cost_per_slot: f64,
    /// Final bill per slot of the sharded run.
    pub sharded_cost_per_slot: f64,
    /// `|sharded - unsharded| / unsharded` — must stay ≈ 0 (gated).
    pub cost_rel_delta: f64,
    /// Shard conflicts during reconciliation — must be 0 on disjoint
    /// tenants (gated).
    pub shard_conflicts: u64,
    /// Unsharded run wall time (machine-dependent).
    pub unsharded_wall_s: f64,
    /// Sharded run wall time (machine-dependent).
    pub sharded_wall_s: f64,
    /// `unsharded_wall_s / sharded_wall_s`.
    pub speedup: f64,
    /// Worker threads the host reported at run time; the ≥2× speedup gate
    /// only arms at ≥ 4.
    pub threads_available: usize,
}

/// Runs one preset: the same trace through the unsharded and the
/// one-shard-per-tenant runtime.
///
/// # Panics
///
/// Panics if either service run fails — the presets are feasible by
/// construction, so a failure is a harness bug.
pub fn run_preset(spec: &PresetSpec) -> PresetResult {
    let s = spec.scenario();
    let network = s.network(spec.seed);
    let trace = s.trace(spec.seed ^ 0xDEAD_BEEF);
    let slots = trace_to_arrivals(&trace).horizon_slots().max(s.num_slots);

    let t0 = Instant::now();
    let unsharded = run_trace_service(
        &network,
        &trace,
        slots,
        postcard_runtime::FaultPlan::none(),
        RuntimeConfig::default(),
        0,
    )
    .expect("unsharded service run");
    let unsharded_wall_s = t0.elapsed().as_secs_f64();

    let config = RuntimeConfig {
        shards: spec.tenants,
        shard_by: ShardBy::Tenant,
        ..RuntimeConfig::default()
    };
    let t0 = Instant::now();
    let sharded =
        run_trace_service(&network, &trace, slots, postcard_runtime::FaultPlan::none(), config, 0)
            .expect("sharded service run");
    let sharded_wall_s = t0.elapsed().as_secs_f64();

    let u = unsharded.result.final_cost_per_slot;
    let h = sharded.result.final_cost_per_slot;
    PresetResult {
        name: spec.name.to_string(),
        tenants: spec.tenants,
        requests: trace.len(),
        accepted: sharded.result.accepted,
        rejected: sharded.result.rejected,
        unsharded_cost_per_slot: u,
        sharded_cost_per_slot: h,
        cost_rel_delta: (h - u).abs() / u.abs().max(1e-12),
        shard_conflicts: sharded.metrics.counter("shard_conflicts"),
        unsharded_wall_s,
        sharded_wall_s,
        speedup: if sharded_wall_s > 0.0 { unsharded_wall_s / sharded_wall_s } else { 0.0 },
        threads_available: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// The whole benchmark report (`BENCH_shard.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// One entry per preset.
    pub presets: Vec<PresetResult>,
}

/// Runs every preset.
pub fn run_all(quick: bool) -> BenchReport {
    BenchReport { presets: presets(quick).iter().map(run_preset).collect() }
}

/// Explains which conditional gates did **not** arm for this report, so CI
/// logs say "skipped" out loud instead of passing silently. One note per
/// preset whose ≥2× speedup gate stayed disarmed, naming the reason.
pub fn gate_notes(current: &BenchReport) -> Vec<String> {
    let mut notes = Vec::new();
    for p in &current.presets {
        if p.threads_available < 4 {
            notes.push(format!(
                "{}: >=2x speedup gate skipped (<4 threads: host reported {})",
                p.name, p.threads_available
            ));
        } else if p.tenants < 4 {
            notes.push(format!(
                "{}: >=2x speedup gate skipped (<4 tenants: preset has {})",
                p.name, p.tenants
            ));
        }
    }
    notes
}

/// Checks a fresh report against the committed baseline. Deterministic
/// fields gate unconditionally: the sharded bill must match the unsharded
/// bill (identical reconciled cost), reconciliation must report zero
/// conflicts on the disjoint tenants, and the accepted/rejected counts must
/// match the baseline exactly. The ≥2× parallel-speedup gate arms only when
/// the host reports ≥ 4 worker threads. Returns the failures (empty =
/// pass).
pub fn check(current: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in &current.presets {
        if cur.cost_rel_delta > 1e-6 {
            failures.push(format!(
                "{}: sharded bill {} diverged from unsharded {} (rel {:.3e})",
                cur.name,
                cur.sharded_cost_per_slot,
                cur.unsharded_cost_per_slot,
                cur.cost_rel_delta
            ));
        }
        if cur.shard_conflicts != 0 {
            failures.push(format!(
                "{}: {} shard conflict(s) on a tenant-disjoint workload",
                cur.name, cur.shard_conflicts
            ));
        }
        if cur.threads_available >= 4 && cur.tenants >= 4 && cur.speedup < 2.0 {
            failures.push(format!(
                "{}: sharded speedup {:.2}x below the 2x gate on {} threads \
                 (unsharded {:.3}s vs sharded {:.3}s)",
                cur.name,
                cur.speedup,
                cur.threads_available,
                cur.unsharded_wall_s,
                cur.sharded_wall_s
            ));
        }
        if let Some(base) = baseline.presets.iter().find(|p| p.name == cur.name) {
            if (cur.accepted, cur.rejected) != (base.accepted, base.rejected) {
                failures.push(format!(
                    "{}: accept/reject counts diverged from baseline ({}/{} -> {}/{})",
                    cur.name, base.accepted, base.rejected, cur.accepted, cur.rejected
                ));
            }
        } else {
            failures.push(format!("{}: preset missing from baseline", cur.name));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PresetSpec {
        PresetSpec {
            name: "tiny",
            tenants: 2,
            dcs_per_tenant: 2,
            files_per_tenant_slot: (1, 1),
            num_slots: 3,
            seed: 5,
        }
    }

    #[test]
    fn preset_run_is_deterministic_and_cost_equal() {
        let a = run_preset(&tiny());
        let b = run_preset(&tiny());
        assert_eq!((a.accepted, a.rejected), (b.accepted, b.rejected));
        assert!(a.requests > 0);
        assert!(a.cost_rel_delta < 1e-6, "rel delta {}", a.cost_rel_delta);
        assert_eq!(a.shard_conflicts, 0);
    }

    #[test]
    fn check_catches_cost_divergence_conflicts_and_count_drift() {
        let good = run_preset(&tiny());
        let report = BenchReport { presets: vec![good.clone()] };
        assert!(check(&report, &report).is_empty(), "{:?}", check(&report, &report));

        let mut skewed = good.clone();
        skewed.cost_rel_delta = 0.5;
        let failures = check(&BenchReport { presets: vec![skewed] }, &report);
        assert!(failures.iter().any(|f| f.contains("diverged from unsharded")), "{failures:?}");

        let mut conflicted = good.clone();
        conflicted.shard_conflicts = 2;
        let failures = check(&BenchReport { presets: vec![conflicted] }, &report);
        assert!(failures.iter().any(|f| f.contains("conflict")), "{failures:?}");

        // The speedup gate arms only on ≥4 threads and ≥4 tenants.
        let mut slow = good.clone();
        slow.tenants = 4;
        slow.threads_available = 8;
        slow.speedup = 1.1;
        let mut slow_base = good.clone();
        slow_base.tenants = 4;
        let failures = check(
            &BenchReport { presets: vec![slow.clone()] },
            &BenchReport { presets: vec![slow_base.clone()] },
        );
        assert!(failures.iter().any(|f| f.contains("below the 2x gate")), "{failures:?}");
        slow.threads_available = 1;
        let skipped = BenchReport { presets: vec![slow] };
        let failures = check(&skipped, &BenchReport { presets: vec![slow_base] });
        assert!(failures.is_empty(), "single-core hosts must not gate speedup: {failures:?}");
        // ...but the skip is loud, not silent.
        let notes = gate_notes(&skipped);
        assert!(
            notes.iter().any(|n| n.contains("speedup gate skipped") && n.contains("<4 threads")),
            "{notes:?}"
        );

        let mut drifted = report.clone();
        drifted.presets[0].accepted += 1;
        let failures = check(&drifted, &report);
        assert!(failures.iter().any(|f| f.contains("counts diverged")), "{failures:?}");

        let unknown =
            BenchReport { presets: vec![PresetResult { name: "other".into(), ..good.clone() }] };
        assert!(!check(&unknown, &report).is_empty());
    }

    #[test]
    fn gate_notes_are_empty_when_the_speedup_gate_arms() {
        let good = run_preset(&tiny());
        let mut armed = good.clone();
        armed.tenants = 4;
        armed.threads_available = 8;
        assert!(gate_notes(&BenchReport { presets: vec![armed] }).is_empty());
        // A small-tenant preset on a big host is also named, with the other
        // reason.
        let mut small = good;
        small.threads_available = 8;
        let notes = gate_notes(&BenchReport { presets: vec![small] });
        assert!(notes.iter().any(|n| n.contains("<4 tenants")), "{notes:?}");
    }

    #[test]
    fn report_json_round_trips() {
        let report = BenchReport { presets: vec![run_preset(&tiny())] };
        let json = serde::json::to_string_pretty(&report);
        let back: BenchReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
