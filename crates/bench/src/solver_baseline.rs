//! Cold- vs warm-start slot-loop solver baseline.
//!
//! Replays a recurring batch shape through consecutive slots on figure-like
//! presets, solving each slot's Postcard LP twice — cold and warm-started
//! from the previous slot's optimal basis — against the *same* ledger (the
//! cold plan is the one committed, so both paths see the identical LP
//! sequence and their objectives are directly comparable). The output
//! (`BENCH_solver.json`) records total pivots and wall-time percentiles per
//! preset; pivot counts are deterministic, so CI can gate on them while
//! ignoring machine-dependent timings.

use postcard_core::{solve_postcard_warm_with, solve_postcard_with, PostcardConfig};
use postcard_lp::Basis;
use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One benchmark preset: a network shape plus a recurring per-slot batch
/// pattern, sized after the paper's figure scenarios.
#[derive(Debug, Clone)]
pub struct PresetSpec {
    /// Preset name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Number of datacenters in the complete network.
    pub num_dcs: usize,
    /// Files released every slot.
    pub files_per_slot: usize,
    /// Largest per-file deadline (slots); the pattern cycles 1..=this.
    pub max_deadline: usize,
    /// Number of consecutive slots to replay.
    pub num_slots: u64,
    /// Per-link capacity (ample, so the LP shape recurs slot over slot).
    pub capacity: f64,
    /// Seed for the network prices and the batch pattern.
    pub seed: u64,
}

/// The presets, scaled after fig. 4–7 of the paper (`--quick` halves the
/// slot count and trims the largest preset).
pub fn presets(quick: bool) -> Vec<PresetSpec> {
    let slots = if quick { 6 } else { 12 };
    let mut out = vec![
        PresetSpec {
            name: "fig4_deadline_sweep",
            num_dcs: 5,
            files_per_slot: 5,
            max_deadline: 3,
            num_slots: slots,
            capacity: 500.0,
            seed: 4,
        },
        PresetSpec {
            name: "fig5_file_count",
            num_dcs: 5,
            files_per_slot: 8,
            max_deadline: 2,
            num_slots: slots,
            capacity: 500.0,
            seed: 5,
        },
        PresetSpec {
            name: "fig6_file_size",
            num_dcs: 4,
            files_per_slot: 6,
            max_deadline: 3,
            num_slots: slots,
            capacity: 800.0,
            seed: 6,
        },
    ];
    if !quick {
        out.push(PresetSpec {
            name: "fig7_network_size",
            num_dcs: 8,
            files_per_slot: 6,
            max_deadline: 3,
            num_slots: slots,
            capacity: 800.0,
            seed: 7,
        });
    }
    out
}

/// Pivot count and wall-time summary of one solve path over a slot loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSummary {
    /// Total simplex pivots across all slots (deterministic).
    pub total_pivots: u64,
    /// Mean per-solve wall time in milliseconds (machine-dependent).
    pub mean_ms: f64,
    /// Median per-solve wall time in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-solve wall time in milliseconds.
    pub p95_ms: f64,
}

/// Result of one preset's slot loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetResult {
    /// Preset name.
    pub name: String,
    /// Slots replayed.
    pub num_slots: u64,
    /// The cold path (phase-1 start every slot).
    pub cold: PathSummary,
    /// The warm path (previous slot's basis threaded forward).
    pub warm: PathSummary,
    /// Largest `|warm − cold|` objective difference over all slots — the
    /// equivalence gate (must stay below 1e-6).
    pub max_objective_diff: f64,
}

/// The whole benchmark report (`BENCH_solver.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// One entry per preset.
    pub presets: Vec<PresetResult>,
}

fn summarize(total_pivots: u64, times_ms: &mut [f64]) -> PathSummary {
    times_ms.sort_by(f64::total_cmp);
    let n = times_ms.len();
    let mean = if n == 0 { 0.0 } else { times_ms.iter().sum::<f64>() / n as f64 };
    let pick = |q: f64| {
        if n == 0 {
            0.0
        } else {
            times_ms[(((n as f64) * q) as usize).min(n - 1)]
        }
    };
    PathSummary { total_pivots, mean_ms: mean, p50_ms: pick(0.50), p95_ms: pick(0.95) }
}

/// Runs one preset's slot loop and summarizes both paths.
///
/// # Panics
///
/// Panics if a slot's LP fails to solve — the presets are sized with ample
/// capacity precisely so every batch is feasible.
pub fn run_preset(spec: &PresetSpec) -> PresetResult {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let prices: Vec<f64> =
        (0..spec.num_dcs * spec.num_dcs).map(|_| rng.gen_range(1.0..=10.0)).collect();
    let mut i = 0;
    let network = Network::complete_with_prices(spec.num_dcs, spec.capacity, |_, _| {
        i += 1;
        prices[i - 1]
    });
    // The recurring (src, dst, deadline, base size) pattern: the same shape
    // every slot so consecutive LPs share dimensions; only sizes vary.
    let pattern: Vec<(usize, usize, usize, f64)> = (0..spec.files_per_slot)
        .map(|k| {
            let src = rng.gen_range(0..spec.num_dcs);
            let mut dst = rng.gen_range(0..spec.num_dcs);
            while dst == src {
                dst = rng.gen_range(0..spec.num_dcs);
            }
            (src, dst, 1 + k % spec.max_deadline, rng.gen_range(5.0..=20.0))
        })
        .collect();

    let config = PostcardConfig::default();
    let mut ledger = TrafficLedger::new(spec.num_dcs);
    let mut warm_basis: Option<Basis> = None;
    let (mut cold_pivots, mut warm_pivots) = (0u64, 0u64);
    let (mut cold_ms, mut warm_ms) = (Vec::new(), Vec::new());
    let mut max_objective_diff = 0.0f64;

    for slot in 0..spec.num_slots {
        let files: Vec<TransferRequest> = pattern
            .iter()
            .enumerate()
            .map(|(k, &(src, dst, deadline, base))| {
                // Mild slot-over-slot drift: recurring traffic whose volumes
                // wobble a few percent, the regime warm starts target. Large
                // swings would push the inherited basis primal-infeasible
                // and degrade every solve to cold.
                let size = base * (1.0 + 0.02 * ((slot as usize + k) % 4) as f64);
                TransferRequest::new(
                    FileId(slot * 1000 + k as u64),
                    DcId(src),
                    DcId(dst),
                    size,
                    deadline,
                    slot,
                )
            })
            .collect();

        let t0 = Instant::now();
        let cold = solve_postcard_with(&network, &files, &ledger, &config)
            .unwrap_or_else(|e| panic!("{}: cold solve failed at slot {slot}: {e}", spec.name));
        cold_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        cold_pivots += cold.lp_iterations as u64;

        let t0 = Instant::now();
        let warm =
            solve_postcard_warm_with(&network, &files, &ledger, &config, warm_basis.as_ref())
                .unwrap_or_else(|e| panic!("{}: warm solve failed at slot {slot}: {e}", spec.name));
        warm_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        warm_pivots += warm.lp_iterations as u64;

        max_objective_diff =
            max_objective_diff.max((warm.cost_per_slot - cold.cost_per_slot).abs());
        warm_basis = warm.basis;
        // Commit the COLD plan: both paths see the identical ledger (and
        // therefore the identical LP) at every slot.
        cold.plan.apply_to_ledger(&mut ledger);
    }

    PresetResult {
        name: spec.name.to_string(),
        num_slots: spec.num_slots,
        cold: summarize(cold_pivots, &mut cold_ms),
        warm: summarize(warm_pivots, &mut warm_ms),
        max_objective_diff,
    }
}

/// Runs every preset.
pub fn run_all(quick: bool) -> BenchReport {
    BenchReport { presets: presets(quick).iter().map(run_preset).collect() }
}

/// Checks a fresh report against the committed baseline: cold pivots must
/// not regress more than 20 % on any preset the baseline knows, warm must
/// keep its ≥2x aggregate pivot advantage, and warm/cold objectives must
/// agree to 1e-6 on every preset. Returns the failures (empty = pass).
pub fn check(current: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in &current.presets {
        if cur.max_objective_diff > 1e-6 {
            failures.push(format!(
                "{}: warm/cold objective diff {} exceeds 1e-6",
                cur.name, cur.max_objective_diff
            ));
        }
        if let Some(base) = baseline.presets.iter().find(|p| p.name == cur.name) {
            let limit = (base.cold.total_pivots as f64 * 1.2).ceil() as u64;
            if cur.cold.total_pivots > limit {
                failures.push(format!(
                    "{}: cold pivots regressed {} -> {} (>20% over baseline)",
                    cur.name, base.cold.total_pivots, cur.cold.total_pivots
                ));
            }
        } else {
            failures.push(format!("{}: preset missing from baseline", cur.name));
        }
    }
    let cold_total: u64 = current.presets.iter().map(|p| p.cold.total_pivots).sum();
    let warm_total: u64 = current.presets.iter().map(|p| p.warm.total_pivots).sum();
    if warm_total * 2 > cold_total {
        failures.push(format!("warm pivots {warm_total} not at least 2x below cold {cold_total}"));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PresetSpec {
        PresetSpec {
            name: "tiny",
            num_dcs: 4,
            files_per_slot: 4,
            max_deadline: 2,
            num_slots: 6,
            capacity: 500.0,
            seed: 1,
        }
    }

    #[test]
    fn preset_run_is_deterministic_in_pivots() {
        let a = run_preset(&tiny());
        let b = run_preset(&tiny());
        assert_eq!(a.cold.total_pivots, b.cold.total_pivots);
        assert_eq!(a.warm.total_pivots, b.warm.total_pivots);
        assert_eq!(a.max_objective_diff, b.max_objective_diff);
    }

    #[test]
    fn warm_path_matches_cold_objectives_and_pivots_less() {
        let r = run_preset(&tiny());
        assert!(r.max_objective_diff < 1e-6, "diff {}", r.max_objective_diff);
        assert!(
            r.warm.total_pivots < r.cold.total_pivots,
            "warm {} >= cold {}",
            r.warm.total_pivots,
            r.cold.total_pivots
        );
    }

    #[test]
    fn check_catches_pivot_regressions() {
        let good = run_preset(&tiny());
        let report = BenchReport { presets: vec![good.clone()] };
        assert!(check(&report, &report).is_empty(), "{:?}", check(&report, &report));
        let mut regressed = report.clone();
        regressed.presets[0].cold.total_pivots = good.cold.total_pivots * 2;
        let failures = check(&regressed, &report);
        assert!(failures.iter().any(|f| f.contains("regressed")), "{failures:?}");
        let unknown =
            BenchReport { presets: vec![PresetResult { name: "other".into(), ..good.clone() }] };
        assert!(!check(&unknown, &report).is_empty());
    }

    #[test]
    fn report_json_round_trips() {
        let report = BenchReport { presets: vec![run_preset(&tiny())] };
        let json = serde::json::to_string_pretty(&report);
        let back: BenchReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
