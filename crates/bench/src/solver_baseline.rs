//! Cold- vs warm-start slot-loop solver baseline, plus the paper-scale
//! incremental sweep.
//!
//! Replays a recurring batch shape through consecutive slots on figure-like
//! presets, solving each slot's Postcard LP twice — cold and warm-started
//! from the previous slot's optimal basis — against the *same* ledger (the
//! cold plan is the one committed, so both paths see the identical LP
//! sequence and their objectives are directly comparable). A second preset
//! family ([`paper_presets`]) runs the four figure settings at the paper's
//! 20-datacenter / 380-link scale through [`DeltaFormulation`], comparing
//! slot-over-slot model advance + dual-simplex re-solve against sampled
//! from-scratch rebuilds of the same model. The output
//! (`BENCH_solver.json`) records total pivots and wall-time percentiles per
//! preset; pivot counts are deterministic, so CI can gate on them while
//! ignoring machine-dependent timings.

use postcard_core::{
    solve_postcard_warm_with, solve_postcard_with, DeltaFormulation, PostcardConfig, SlotPrep,
};
use postcard_lp::Basis;
use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One benchmark preset: a network shape plus a recurring per-slot batch
/// pattern, sized after the paper's figure scenarios.
#[derive(Debug, Clone)]
pub struct PresetSpec {
    /// Preset name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Number of datacenters in the complete network.
    pub num_dcs: usize,
    /// Files released every slot.
    pub files_per_slot: usize,
    /// Largest per-file deadline (slots); the pattern cycles 1..=this.
    pub max_deadline: usize,
    /// Number of consecutive slots to replay.
    pub num_slots: u64,
    /// Per-link capacity (ample, so the LP shape recurs slot over slot).
    pub capacity: f64,
    /// Seed for the network prices and the batch pattern.
    pub seed: u64,
}

/// The presets, scaled after fig. 4–7 of the paper (`--quick` halves the
/// slot count and trims the largest preset).
pub fn presets(quick: bool) -> Vec<PresetSpec> {
    let slots = if quick { 6 } else { 12 };
    let mut out = vec![
        PresetSpec {
            name: "fig4_deadline_sweep",
            num_dcs: 5,
            files_per_slot: 5,
            max_deadline: 3,
            num_slots: slots,
            capacity: 500.0,
            seed: 4,
        },
        PresetSpec {
            name: "fig5_file_count",
            num_dcs: 5,
            files_per_slot: 8,
            max_deadline: 2,
            num_slots: slots,
            capacity: 500.0,
            seed: 5,
        },
        PresetSpec {
            name: "fig6_file_size",
            num_dcs: 4,
            files_per_slot: 6,
            max_deadline: 3,
            num_slots: slots,
            capacity: 800.0,
            seed: 6,
        },
    ];
    if !quick {
        out.push(PresetSpec {
            name: "fig7_network_size",
            num_dcs: 8,
            files_per_slot: 6,
            max_deadline: 3,
            num_slots: slots,
            capacity: 800.0,
            seed: 7,
        });
    }
    out
}

/// Pivot count and wall-time summary of one solve path over a slot loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSummary {
    /// Total simplex pivots across all slots (deterministic).
    pub total_pivots: u64,
    /// Mean per-solve wall time in milliseconds (machine-dependent).
    pub mean_ms: f64,
    /// Median per-solve wall time in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-solve wall time in milliseconds.
    pub p95_ms: f64,
}

/// Result of one preset's slot loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetResult {
    /// Preset name.
    pub name: String,
    /// Slots replayed.
    pub num_slots: u64,
    /// The cold path (phase-1 start every slot).
    pub cold: PathSummary,
    /// The warm path (previous slot's basis threaded forward).
    pub warm: PathSummary,
    /// Largest `|warm − cold|` objective difference over all slots — the
    /// equivalence gate (must stay below 1e-6).
    pub max_objective_diff: f64,
}

/// One paper-scale preset: the paper's 20-datacenter network with a
/// recurring batch shape, replayed slot-over-slot through the incremental
/// delta formulation and, at a sampling stride, through a from-scratch
/// rebuild of the same structural model (warm-solved from the same
/// inherited basis, so the comparison isolates model construction).
#[derive(Debug, Clone)]
pub struct PaperSpec {
    /// Preset name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Datacenters in the complete network (paper: 20 → 380 links).
    pub num_dcs: usize,
    /// Files released every slot (recurring shape).
    pub files_per_slot: usize,
    /// Largest per-file deadline (slots); the pattern cycles 1..=this.
    pub max_deadline: usize,
    /// File-size range (GB); sized so the recurring load stays feasible
    /// under `capacity`.
    pub size_gb: (f64, f64),
    /// Slots per run.
    pub num_slots: u64,
    /// Independent runs (fresh prices, pattern, and ledger per run).
    pub runs: usize,
    /// Per-link capacity (GB/slot).
    pub capacity: f64,
    /// Seed for run 0; run `r` uses `seed + r`.
    pub seed: u64,
    /// From-scratch rebuilds are sampled every this-many slots (slot 0 is
    /// never sampled — the delta path's own first slot *is* a rebuild).
    /// Recorded in the JSON so the sampling is explicit, not silent.
    pub cold_stride: u64,
}

/// Wall-time summary of one phase (machine-dependent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Timed slots feeding this column (sampled phases cover a subset).
    pub samples: usize,
    /// Mean per-slot wall time in milliseconds.
    pub mean_ms: f64,
    /// Median per-slot wall time in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-slot wall time in milliseconds.
    pub p95_ms: f64,
}

fn phase(times_ms: &mut [f64]) -> PhaseSummary {
    let s = summarize(0, times_ms);
    PhaseSummary { samples: times_ms.len(), mean_ms: s.mean_ms, p50_ms: s.p50_ms, p95_ms: s.p95_ms }
}

/// Result of one paper-scale preset's sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperResult {
    /// Preset name.
    pub name: String,
    /// Datacenters (20 at paper scale).
    pub num_dcs: usize,
    /// Directed links (380 at paper scale).
    pub links: usize,
    /// Time-expanded layers (deadline horizon + release layer).
    pub layers: usize,
    /// Independent runs.
    pub runs: usize,
    /// Slots per run.
    pub num_slots: u64,
    /// Slots between sampled from-scratch rebuilds (1 = every slot; slot 0
    /// is never sampled — the delta path's own first slot *is* a rebuild).
    pub cold_stride: u64,
    /// Model-advance wall time on the delta path (rebase + RHS/bounds +
    /// refresh).
    pub delta_build: PhaseSummary,
    /// Dual-simplex re-solve wall time on the delta path.
    pub delta_solve: PhaseSummary,
    /// From-scratch structural build + standard-form wall time on the
    /// sampled rebuild path.
    pub rebuild_build: PhaseSummary,
    /// Solve wall time on the sampled rebuild path (warm-started from the
    /// same basis the delta path inherited — the production
    /// rebuild-every-slot configuration since warm starts landed).
    pub rebuild_solve: PhaseSummary,
    /// `rebuild_build.mean_ms / delta_build.mean_ms` — gated ≥ 5×.
    pub build_speedup: f64,
    /// Delta-path slots that advanced in place (all but the first of each
    /// run — deterministic, gated).
    pub delta_hits: u64,
    /// Delta-path slots that rebuilt (the first of each run —
    /// deterministic, gated).
    pub rebuilds: u64,
    /// Total dual-simplex pivots across all delta solves (deterministic).
    pub dual_simplex_iters: u64,
    /// Total pivots across the sampled rebuild solves (deterministic).
    pub rebuild_pivots: u64,
    /// Largest `|delta − rebuild|` objective difference over every sampled
    /// slot — the equivalence gate (must stay ≤ 1e-9 relative).
    pub max_objective_diff: f64,
}

/// The paper-scale presets: the four figure settings at the paper's
/// 20-datacenter / 380-link / `max T = 8` scale with a recurring batch
/// shape (the regime the delta formulation targets). `--quick` keeps the
/// network dimensions but trims runs and slots so the sweep fits the CI
/// budget; from-scratch rebuilds are sampled at a stride either way
/// (recorded in the JSON). Four files recur per slot — not the paper's
/// U[1,20] — because each run's *first* slot needs one genuinely cold
/// two-phase solve, and phase-1 degeneracy on this solver grows
/// super-linearly in the batch size at 20 datacenters; the network scale,
/// deadline horizons, and size/capacity ratios are untouched.
pub fn paper_presets(quick: bool) -> Vec<PaperSpec> {
    let (runs, slots, stride) = if quick { (2, 12, 6) } else { (10, 100, 10) };
    let urgent = 3;
    let patient = 8;
    vec![
        PaperSpec {
            name: "paper_fig4",
            num_dcs: 20,
            files_per_slot: 4,
            max_deadline: urgent,
            size_gb: (5.0, 15.0),
            num_slots: slots,
            runs,
            capacity: 100.0,
            seed: 40,
            cold_stride: stride,
        },
        PaperSpec {
            name: "paper_fig5",
            num_dcs: 20,
            files_per_slot: 4,
            max_deadline: patient,
            size_gb: (5.0, 15.0),
            num_slots: slots,
            runs,
            capacity: 100.0,
            seed: 50,
            cold_stride: stride,
        },
        PaperSpec {
            name: "paper_fig6",
            num_dcs: 20,
            files_per_slot: 4,
            max_deadline: urgent,
            size_gb: (1.0, 4.0),
            num_slots: slots,
            runs,
            capacity: 30.0,
            seed: 60,
            cold_stride: stride,
        },
        PaperSpec {
            name: "paper_fig7",
            num_dcs: 20,
            files_per_slot: 4,
            max_deadline: patient,
            size_gb: (1.0, 4.0),
            num_slots: slots,
            runs,
            capacity: 30.0,
            seed: 70,
            cold_stride: stride,
        },
    ]
}

/// Runs one paper-scale preset: every slot advances the standing delta
/// model and re-solves with the dual simplex; every `cold_stride`-th slot
/// (skipping slot 0, whose delta build *is* a from-scratch build)
/// additionally rebuilds the same model from scratch on a fresh
/// formulation and warm-solves it from the same inherited basis — the
/// production rebuild-every-slot configuration since warm starts landed
/// (PR 3). The delta plan is the one committed, so both paths always
/// price the identical LP, and the two independently built models must
/// agree to `max_objective_diff`.
///
/// # Panics
///
/// Panics if a slot fails to solve — the presets are sized so the
/// recurring load is feasible.
pub fn run_paper_preset(spec: &PaperSpec) -> PaperResult {
    let config = PostcardConfig { incremental: true, ..PostcardConfig::default() };
    let (mut delta_build_ms, mut delta_solve_ms) = (Vec::new(), Vec::new());
    let (mut rebuild_build_ms, mut rebuild_solve_ms) = (Vec::new(), Vec::new());
    let (mut delta_hits, mut rebuilds) = (0u64, 0u64);
    let (mut dual_iters, mut rebuild_pivots) = (0u64, 0u64);
    let mut max_objective_diff = 0.0f64;

    for run in 0..spec.runs {
        let seed = spec.seed + run as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let prices: Vec<f64> =
            (0..spec.num_dcs * spec.num_dcs).map(|_| rng.gen_range(1.0..=10.0)).collect();
        let mut i = 0;
        let network = Network::complete_with_prices(spec.num_dcs, spec.capacity, |_, _| {
            i += 1;
            prices[i - 1]
        });
        let pattern: Vec<(usize, usize, usize, f64)> = (0..spec.files_per_slot)
            .map(|k| {
                let src = rng.gen_range(0..spec.num_dcs);
                let mut dst = rng.gen_range(0..spec.num_dcs);
                while dst == src {
                    dst = rng.gen_range(0..spec.num_dcs);
                }
                let (lo, hi) = spec.size_gb;
                (src, dst, 1 + k % spec.max_deadline, rng.gen_range(lo..=hi))
            })
            .collect();

        let mut delta = DeltaFormulation::new(config.clone());
        let mut ledger = TrafficLedger::new(spec.num_dcs);
        for slot in 0..spec.num_slots {
            let files: Vec<TransferRequest> = pattern
                .iter()
                .enumerate()
                .map(|(k, &(src, dst, deadline, base))| {
                    // Same shape every slot (so the standing model advances in
                    // place) but sizes swing up to +30%: the RHS/bound refresh
                    // then genuinely displaces the inherited basis and the
                    // dual-simplex repair does real work instead of
                    // re-verifying an unchanged optimum.
                    let size = base * (1.0 + 0.1 * ((slot as usize + k) % 4) as f64);
                    TransferRequest::new(
                        FileId(slot * 1000 + k as u64),
                        DcId(src),
                        DcId(dst),
                        size,
                        deadline,
                        slot,
                    )
                })
                .collect();

            let t0 = Instant::now();
            let prep = delta
                .prepare_slot(&network, &files, &ledger)
                .unwrap_or_else(|e| panic!("{}: prepare failed at slot {slot}: {e}", spec.name));
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            // The basis the delta path inherits for this slot; the sampled
            // rebuild below warm-starts from the same point so the
            // comparison isolates model construction, not pivot counts.
            let basis_before = delta.standing_basis().cloned();
            let t0 = Instant::now();
            let inc = delta.solve_prepared(&network, &files, &ledger).unwrap_or_else(|e| {
                panic!("{}: delta solve failed at slot {slot}: {e}", spec.name)
            });
            let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
            dual_iters += inc.dual_iterations as u64;
            if prep == SlotPrep::Delta {
                // Only true advances feed the build-speedup phase columns;
                // the first slot of a run is a from-scratch build by
                // definition and would dilute both sides.
                delta_build_ms.push(build_ms);
                delta_solve_ms.push(solve_ms);
            }

            if slot % spec.cold_stride == 0 && slot > 0 {
                let mut rb = DeltaFormulation::new(config.clone());
                let t0 = Instant::now();
                rb.prepare_slot(&network, &files, &ledger).unwrap_or_else(|e| {
                    panic!("{}: rebuild failed at slot {slot}: {e}", spec.name)
                });
                rebuild_build_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                if let Some(basis) = basis_before.clone() {
                    rb.seed_basis(basis);
                }
                let t0 = Instant::now();
                let re = rb.solve_prepared(&network, &files, &ledger).unwrap_or_else(|e| {
                    panic!("{}: rebuild solve failed at slot {slot}: {e}", spec.name)
                });
                rebuild_solve_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                rebuild_pivots += re.lp_iterations as u64 + re.dual_iterations as u64;
                let rel =
                    (inc.cost_per_slot - re.cost_per_slot).abs() / (1.0 + re.cost_per_slot.abs());
                max_objective_diff = max_objective_diff.max(rel);
            }

            // Commit the DELTA plan: it is the production path, and the
            // sampled rebuilds price the identical pre-commit ledger.
            inc.plan.apply_to_ledger(&mut ledger);
        }
        delta_hits += delta.delta_hits();
        rebuilds += delta.rebuilds();
    }

    let delta_build = phase(&mut delta_build_ms);
    let rebuild_build = phase(&mut rebuild_build_ms);
    let build_speedup =
        if delta_build.mean_ms > 0.0 { rebuild_build.mean_ms / delta_build.mean_ms } else { 0.0 };
    PaperResult {
        name: spec.name.to_string(),
        num_dcs: spec.num_dcs,
        links: spec.num_dcs * (spec.num_dcs - 1),
        layers: spec.max_deadline + 1,
        runs: spec.runs,
        num_slots: spec.num_slots,
        cold_stride: spec.cold_stride,
        delta_build,
        delta_solve: phase(&mut delta_solve_ms),
        rebuild_build,
        rebuild_solve: phase(&mut rebuild_solve_ms),
        build_speedup,
        delta_hits,
        rebuilds,
        dual_simplex_iters: dual_iters,
        rebuild_pivots,
        max_objective_diff,
    }
}

/// The whole benchmark report (`BENCH_solver.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// One entry per preset.
    pub presets: Vec<PresetResult>,
    /// One entry per paper-scale preset (delta vs cold rebuild). The
    /// vendored serde shim treats missing fields as errors, so adding this
    /// field is a baseline format break: `BENCH_solver.json` is regenerated
    /// alongside it.
    pub paper: Vec<PaperResult>,
}

fn summarize(total_pivots: u64, times_ms: &mut [f64]) -> PathSummary {
    times_ms.sort_by(f64::total_cmp);
    let n = times_ms.len();
    let mean = if n == 0 { 0.0 } else { times_ms.iter().sum::<f64>() / n as f64 };
    let pick = |q: f64| {
        if n == 0 {
            0.0
        } else {
            times_ms[(((n as f64) * q) as usize).min(n - 1)]
        }
    };
    PathSummary { total_pivots, mean_ms: mean, p50_ms: pick(0.50), p95_ms: pick(0.95) }
}

/// Runs one preset's slot loop and summarizes both paths.
///
/// # Panics
///
/// Panics if a slot's LP fails to solve — the presets are sized with ample
/// capacity precisely so every batch is feasible.
pub fn run_preset(spec: &PresetSpec) -> PresetResult {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let prices: Vec<f64> =
        (0..spec.num_dcs * spec.num_dcs).map(|_| rng.gen_range(1.0..=10.0)).collect();
    let mut i = 0;
    let network = Network::complete_with_prices(spec.num_dcs, spec.capacity, |_, _| {
        i += 1;
        prices[i - 1]
    });
    // The recurring (src, dst, deadline, base size) pattern: the same shape
    // every slot so consecutive LPs share dimensions; only sizes vary.
    let pattern: Vec<(usize, usize, usize, f64)> = (0..spec.files_per_slot)
        .map(|k| {
            let src = rng.gen_range(0..spec.num_dcs);
            let mut dst = rng.gen_range(0..spec.num_dcs);
            while dst == src {
                dst = rng.gen_range(0..spec.num_dcs);
            }
            (src, dst, 1 + k % spec.max_deadline, rng.gen_range(5.0..=20.0))
        })
        .collect();

    let config = PostcardConfig::default();
    let mut ledger = TrafficLedger::new(spec.num_dcs);
    let mut warm_basis: Option<Basis> = None;
    let (mut cold_pivots, mut warm_pivots) = (0u64, 0u64);
    let (mut cold_ms, mut warm_ms) = (Vec::new(), Vec::new());
    let mut max_objective_diff = 0.0f64;

    for slot in 0..spec.num_slots {
        let files: Vec<TransferRequest> = pattern
            .iter()
            .enumerate()
            .map(|(k, &(src, dst, deadline, base))| {
                // Mild slot-over-slot drift: recurring traffic whose volumes
                // wobble a few percent, the regime warm starts target. Large
                // swings would push the inherited basis primal-infeasible
                // and degrade every solve to cold.
                let size = base * (1.0 + 0.02 * ((slot as usize + k) % 4) as f64);
                TransferRequest::new(
                    FileId(slot * 1000 + k as u64),
                    DcId(src),
                    DcId(dst),
                    size,
                    deadline,
                    slot,
                )
            })
            .collect();

        let t0 = Instant::now();
        let cold = solve_postcard_with(&network, &files, &ledger, &config)
            .unwrap_or_else(|e| panic!("{}: cold solve failed at slot {slot}: {e}", spec.name));
        cold_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        cold_pivots += cold.lp_iterations as u64;

        let t0 = Instant::now();
        let warm =
            solve_postcard_warm_with(&network, &files, &ledger, &config, warm_basis.as_ref())
                .unwrap_or_else(|e| panic!("{}: warm solve failed at slot {slot}: {e}", spec.name));
        warm_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        warm_pivots += warm.lp_iterations as u64;

        max_objective_diff =
            max_objective_diff.max((warm.cost_per_slot - cold.cost_per_slot).abs());
        warm_basis = warm.basis;
        // Commit the COLD plan: both paths see the identical ledger (and
        // therefore the identical LP) at every slot.
        cold.plan.apply_to_ledger(&mut ledger);
    }

    PresetResult {
        name: spec.name.to_string(),
        num_slots: spec.num_slots,
        cold: summarize(cold_pivots, &mut cold_ms),
        warm: summarize(warm_pivots, &mut warm_ms),
        max_objective_diff,
    }
}

/// Runs every preset, including the paper-scale sweep.
pub fn run_all(quick: bool) -> BenchReport {
    BenchReport {
        presets: presets(quick).iter().map(run_preset).collect(),
        paper: paper_presets(quick).iter().map(run_paper_preset).collect(),
    }
}

/// Checks a fresh report against the committed baseline: cold pivots must
/// not regress more than 20 % on any preset the baseline knows, warm must
/// keep its ≥2x aggregate pivot advantage, and warm/cold objectives must
/// agree to 1e-6 on every preset. The paper-scale sweep gates on
/// delta/rebuild objective equivalence (≤ 1e-9 relative), a ≥5×
/// delta-build speedup over the from-scratch build, exactly one rebuild
/// per run, and no dual-pivot regression over 20 %. Returns the failures
/// (empty = pass).
pub fn check(current: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in &current.presets {
        if cur.max_objective_diff > 1e-6 {
            failures.push(format!(
                "{}: warm/cold objective diff {} exceeds 1e-6",
                cur.name, cur.max_objective_diff
            ));
        }
        if let Some(base) = baseline.presets.iter().find(|p| p.name == cur.name) {
            let limit = (base.cold.total_pivots as f64 * 1.2).ceil() as u64;
            if cur.cold.total_pivots > limit {
                failures.push(format!(
                    "{}: cold pivots regressed {} -> {} (>20% over baseline)",
                    cur.name, base.cold.total_pivots, cur.cold.total_pivots
                ));
            }
        } else {
            failures.push(format!("{}: preset missing from baseline", cur.name));
        }
    }
    let cold_total: u64 = current.presets.iter().map(|p| p.cold.total_pivots).sum();
    let warm_total: u64 = current.presets.iter().map(|p| p.warm.total_pivots).sum();
    if warm_total * 2 > cold_total {
        failures.push(format!("warm pivots {warm_total} not at least 2x below cold {cold_total}"));
    }
    for cur in &current.paper {
        if cur.max_objective_diff > 1e-9 {
            failures.push(format!(
                "{}: delta/rebuild objective diff {:.3e} exceeds 1e-9",
                cur.name, cur.max_objective_diff
            ));
        }
        if cur.build_speedup < 5.0 {
            failures.push(format!(
                "{}: delta build only {:.1}x faster than from-scratch \
                 ({:.3} ms vs {:.3} ms mean) — below the 5x gate",
                cur.name, cur.build_speedup, cur.delta_build.mean_ms, cur.rebuild_build.mean_ms
            ));
        }
        if cur.rebuilds != cur.runs as u64 {
            failures.push(format!(
                "{}: {} rebuild(s) across {} runs (expected exactly one per run)",
                cur.name, cur.rebuilds, cur.runs
            ));
        }
        if let Some(base) = baseline.paper.iter().find(|p| p.name == cur.name) {
            let limit = (base.dual_simplex_iters as f64 * 1.2).ceil() as u64;
            if cur.dual_simplex_iters > limit {
                failures.push(format!(
                    "{}: dual pivots regressed {} -> {} (>20% over baseline)",
                    cur.name, base.dual_simplex_iters, cur.dual_simplex_iters
                ));
            }
        } else {
            failures.push(format!("{}: paper preset missing from baseline", cur.name));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PresetSpec {
        PresetSpec {
            name: "tiny",
            num_dcs: 4,
            files_per_slot: 4,
            max_deadline: 2,
            num_slots: 6,
            capacity: 500.0,
            seed: 1,
        }
    }

    #[test]
    fn preset_run_is_deterministic_in_pivots() {
        let a = run_preset(&tiny());
        let b = run_preset(&tiny());
        assert_eq!(a.cold.total_pivots, b.cold.total_pivots);
        assert_eq!(a.warm.total_pivots, b.warm.total_pivots);
        assert_eq!(a.max_objective_diff, b.max_objective_diff);
    }

    #[test]
    fn warm_path_matches_cold_objectives_and_pivots_less() {
        let r = run_preset(&tiny());
        assert!(r.max_objective_diff < 1e-6, "diff {}", r.max_objective_diff);
        assert!(
            r.warm.total_pivots < r.cold.total_pivots,
            "warm {} >= cold {}",
            r.warm.total_pivots,
            r.cold.total_pivots
        );
    }

    fn tiny_paper() -> PaperSpec {
        PaperSpec {
            name: "tiny_paper",
            num_dcs: 6,
            files_per_slot: 3,
            max_deadline: 3,
            size_gb: (5.0, 15.0),
            num_slots: 4,
            runs: 2,
            // Tight enough that committed traffic binds link peaks: the
            // slot-over-slot RHS refresh then displaces the inherited basis
            // and the dual simplex actually pivots (a slack capacity would
            // re-verify the old basis in zero pivots).
            capacity: 20.0,
            seed: 9,
            cold_stride: 2,
        }
    }

    #[test]
    fn check_catches_pivot_regressions() {
        let good = run_preset(&tiny());
        let report = BenchReport { presets: vec![good.clone()], paper: Vec::new() };
        assert!(check(&report, &report).is_empty(), "{:?}", check(&report, &report));
        let mut regressed = report.clone();
        regressed.presets[0].cold.total_pivots = good.cold.total_pivots * 2;
        let failures = check(&regressed, &report);
        assert!(failures.iter().any(|f| f.contains("regressed")), "{failures:?}");
        let unknown = BenchReport {
            presets: vec![PresetResult { name: "other".into(), ..good.clone() }],
            paper: Vec::new(),
        };
        assert!(!check(&unknown, &report).is_empty());
    }

    #[test]
    fn paper_preset_matches_rebuild_and_advances_every_later_slot() {
        let r = run_paper_preset(&tiny_paper());
        assert!(r.max_objective_diff <= 1e-9, "diff {:.3e}", r.max_objective_diff);
        assert_eq!(r.rebuilds, 2, "one from-scratch build per run");
        assert_eq!(r.delta_hits, 2 * 3, "every later slot advances in place");
        assert!(r.dual_simplex_iters > 0, "the delta path must pivot dually");
        // 4 slots at stride 2, slot 0 excluded: exactly slot 2 is sampled
        // per run, so the rebuild comparison actually ran.
        assert_eq!(r.rebuild_build.samples, 2, "one sampled rebuild per run");
        let again = run_paper_preset(&tiny_paper());
        assert_eq!(r.dual_simplex_iters, again.dual_simplex_iters, "pivots are deterministic");
        assert_eq!(r.rebuild_pivots, again.rebuild_pivots);
    }

    #[test]
    fn check_gates_paper_equivalence_speedup_and_rebuilds() {
        let good = run_paper_preset(&tiny_paper());
        let report = BenchReport { presets: Vec::new(), paper: vec![good.clone()] };

        let mut drifted = good.clone();
        drifted.max_objective_diff = 1e-6;
        let failures = check(&BenchReport { presets: Vec::new(), paper: vec![drifted] }, &report);
        assert!(failures.iter().any(|f| f.contains("exceeds 1e-9")), "{failures:?}");

        let mut slow = good.clone();
        slow.build_speedup = 2.0;
        let failures = check(&BenchReport { presets: Vec::new(), paper: vec![slow] }, &report);
        assert!(failures.iter().any(|f| f.contains("below the 5x gate")), "{failures:?}");

        let mut churning = good.clone();
        churning.rebuilds = good.runs as u64 + 3;
        let failures = check(&BenchReport { presets: Vec::new(), paper: vec![churning] }, &report);
        assert!(
            failures.iter().any(|f| f.contains("expected exactly one per run")),
            "{failures:?}"
        );

        let mut pivoty = good.clone();
        pivoty.dual_simplex_iters = good.dual_simplex_iters * 2 + 10;
        let failures = check(&BenchReport { presets: Vec::new(), paper: vec![pivoty] }, &report);
        assert!(failures.iter().any(|f| f.contains("dual pivots regressed")), "{failures:?}");
    }

    #[test]
    fn report_json_round_trips() {
        let report = BenchReport {
            presets: vec![run_preset(&tiny())],
            paper: vec![run_paper_preset(&tiny_paper())],
        };
        let json = serde::json::to_string_pretty(&report);
        let back: BenchReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn baselines_without_the_paper_sweep_are_rejected() {
        // The vendored serde shim treats a missing field as an error, so a
        // pre-paper-sweep baseline fails the typed decode loudly instead of
        // silently skipping the new gates.
        let err = serde::json::from_str::<BenchReport>(r#"{"presets": []}"#).unwrap_err();
        assert!(format!("{err}").contains("paper"), "{err}");
    }
}
