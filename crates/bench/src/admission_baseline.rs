//! ALAP fast-path admission vs per-request LP solve baseline.
//!
//! Replays a single-slot burst of 10³–10⁵ transfer requests through the
//! ALAP admission path (`postcard_flow::AlapScheduler`), timing every
//! admit/reject decision, and — on a deterministic sample of the same
//! requests against the *same* residual state — times the full Postcard LP
//! solving each request as a single-file problem. The output
//! (`BENCH_admission.json`) records per-request latency summaries for both
//! paths plus the admit/reject counts, which are deterministic; CI gates on
//! the ALAP-vs-LP speedup (≥10× at the 10⁴-request preset) and on the
//! counts, ignoring absolute machine-dependent timings.
//!
//! The LP side is *sampled*, not exhaustive — solving 10⁴ single-file LPs
//! per preset would dominate CI for no extra information. The sample size
//! is recorded in the report and printed by the `admission-baseline` bin,
//! so the extrapolation is never silent.

use postcard_core::{solve_postcard_with, PostcardConfig};
use postcard_flow::AlapScheduler;
use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One benchmark preset: a network plus a single-slot request burst.
#[derive(Debug, Clone)]
pub struct PresetSpec {
    /// Preset name (stable across runs; used as the JSON key).
    pub name: &'static str,
    /// Number of datacenters in the complete network.
    pub num_dcs: usize,
    /// Requests released in the slot-0 burst.
    pub requests: usize,
    /// Largest per-request deadline window (slots).
    pub max_deadline: usize,
    /// Per-link capacity (GB/slot), sized so the burst produces a mix of
    /// admissions and rejections rather than all of either.
    pub capacity: f64,
    /// Requests on which the LP comparison path is actually solved.
    pub lp_sample: usize,
    /// Seed for the network prices and the request stream.
    pub seed: u64,
}

/// The presets: 10³, 10⁴, and (full runs only) 10⁵ requests per slot.
/// `--quick` keeps 10³ and 10⁴ — the 10⁴ preset carries the CI gate.
pub fn presets(quick: bool) -> Vec<PresetSpec> {
    let mut out = vec![
        PresetSpec {
            name: "n3_1k",
            num_dcs: 5,
            requests: 1_000,
            max_deadline: 4,
            capacity: 100.0,
            lp_sample: 50,
            seed: 103,
        },
        PresetSpec {
            name: "n4_10k",
            num_dcs: 5,
            requests: 10_000,
            max_deadline: 4,
            capacity: 1_000.0,
            lp_sample: 50,
            seed: 104,
        },
    ];
    if !quick {
        out.push(PresetSpec {
            name: "n5_100k",
            num_dcs: 5,
            requests: 100_000,
            max_deadline: 4,
            capacity: 10_000.0,
            lp_sample: 50,
            seed: 105,
        });
    }
    out
}

/// Per-request latency summary of one admission path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathLatency {
    /// Requests actually measured on this path.
    pub measured: usize,
    /// Mean per-request latency in microseconds (machine-dependent).
    pub mean_us: f64,
    /// Median per-request latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-request latency in microseconds.
    pub p95_us: f64,
}

/// Result of one preset's burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetResult {
    /// Preset name.
    pub name: String,
    /// Burst size (requests offered).
    pub requests: usize,
    /// Requests the ALAP path admitted (deterministic).
    pub admits: u64,
    /// Requests the ALAP path rejected (deterministic).
    pub rejects: u64,
    /// The ALAP path, measured on every request.
    pub alap: PathLatency,
    /// The LP path, measured on the recorded sample of requests against
    /// the same residual state the ALAP decision saw.
    pub lp: PathLatency,
    /// `lp.mean_us / alap.mean_us` — the headline speedup.
    pub speedup: f64,
}

/// The whole benchmark report (`BENCH_admission.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// One entry per preset.
    pub presets: Vec<PresetResult>,
}

fn summarize(times_us: &mut [f64]) -> PathLatency {
    times_us.sort_by(f64::total_cmp);
    let n = times_us.len();
    let mean = if n == 0 { 0.0 } else { times_us.iter().sum::<f64>() / n as f64 };
    let pick = |q: f64| {
        if n == 0 {
            0.0
        } else {
            times_us[(((n as f64) * q) as usize).min(n - 1)]
        }
    };
    PathLatency { measured: n, mean_us: mean, p50_us: pick(0.50), p95_us: pick(0.95) }
}

/// Runs one preset's burst and summarizes both admission paths.
pub fn run_preset(spec: &PresetSpec) -> PresetResult {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut price_rng = StdRng::seed_from_u64(spec.seed ^ 0xA1A9);
    let network = Network::complete_with_prices(spec.num_dcs, spec.capacity, |_, _| {
        price_rng.gen_range(1.0..=10.0)
    });
    let files: Vec<TransferRequest> = (0..spec.requests)
        .map(|k| {
            let src = rng.gen_range(0..spec.num_dcs);
            let dst = (src + rng.gen_range(1..spec.num_dcs)) % spec.num_dcs;
            TransferRequest::new(
                FileId(k as u64),
                DcId(src),
                DcId(dst),
                rng.gen_range(1.0..=10.0),
                rng.gen_range(1..=spec.max_deadline),
                0,
            )
        })
        .collect();

    // The LP is solved on every `stride`-th request, against the exact
    // residual state (mirrored in `ledger`) the ALAP decision saw.
    let stride = (spec.requests / spec.lp_sample.max(1)).max(1);
    let config = PostcardConfig::default();
    let mut alap = AlapScheduler::new(&network);
    let mut ledger = TrafficLedger::new(spec.num_dcs);
    let (mut admits, mut rejects) = (0u64, 0u64);
    let mut alap_us = Vec::with_capacity(spec.requests);
    let mut lp_us = Vec::with_capacity(spec.lp_sample);

    for (k, f) in files.iter().enumerate() {
        if k % stride == 0 {
            let t0 = Instant::now();
            // Timed whether it places the file or proves it infeasible —
            // both are admission decisions the LP path would have to make.
            let _ = solve_postcard_with(&network, std::slice::from_ref(f), &ledger, &config);
            lp_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        let t0 = Instant::now();
        let decision = alap.admit(&network, f);
        alap_us.push(t0.elapsed().as_secs_f64() * 1e6);
        match decision {
            Ok(plan) => {
                admits += 1;
                plan.apply_to_ledger(&mut ledger);
            }
            Err(_) => rejects += 1,
        }
    }

    let alap_summary = summarize(&mut alap_us);
    let lp_summary = summarize(&mut lp_us);
    let speedup =
        if alap_summary.mean_us > 0.0 { lp_summary.mean_us / alap_summary.mean_us } else { 0.0 };
    PresetResult {
        name: spec.name.to_string(),
        requests: spec.requests,
        admits,
        rejects,
        alap: alap_summary,
        lp: lp_summary,
        speedup,
    }
}

/// Runs every preset.
pub fn run_all(quick: bool) -> BenchReport {
    BenchReport { presets: presets(quick).iter().map(run_preset).collect() }
}

/// Checks a fresh report against the committed baseline: the 10⁴-request
/// preset must keep its ≥10× ALAP-over-LP speedup, every preset must admit
/// at least one and reject at least one request (the scenario must stay
/// discriminating), and admit/reject counts — which are deterministic —
/// must match the baseline exactly. Returns the failures (empty = pass).
pub fn check(current: &BenchReport, baseline: &BenchReport) -> Vec<String> {
    let mut failures = Vec::new();
    for cur in &current.presets {
        if cur.requests == 10_000 && cur.speedup < 10.0 {
            failures.push(format!(
                "{}: ALAP speedup {:.1}x below the 10x gate (alap {:.2}us vs lp {:.2}us)",
                cur.name, cur.speedup, cur.alap.mean_us, cur.lp.mean_us
            ));
        }
        if cur.admits == 0 || cur.rejects == 0 {
            failures.push(format!(
                "{}: degenerate scenario ({} admits, {} rejects)",
                cur.name, cur.admits, cur.rejects
            ));
        }
        if let Some(base) = baseline.presets.iter().find(|p| p.name == cur.name) {
            if (cur.admits, cur.rejects) != (base.admits, base.rejects) {
                failures.push(format!(
                    "{}: admit/reject counts diverged from baseline ({}/{} -> {}/{})",
                    cur.name, base.admits, base.rejects, cur.admits, cur.rejects
                ));
            }
        } else {
            failures.push(format!("{}: preset missing from baseline", cur.name));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PresetSpec {
        PresetSpec {
            name: "tiny",
            num_dcs: 4,
            requests: 200,
            max_deadline: 3,
            capacity: 25.0,
            lp_sample: 10,
            seed: 9,
        }
    }

    #[test]
    fn preset_run_is_deterministic_in_admission_counts() {
        let a = run_preset(&tiny());
        let b = run_preset(&tiny());
        assert_eq!((a.admits, a.rejects), (b.admits, b.rejects));
        assert!(a.admits > 0 && a.rejects > 0, "{}/{}", a.admits, a.rejects);
        assert_eq!(a.alap.measured, 200);
        assert_eq!(a.lp.measured, 10);
    }

    #[test]
    fn check_catches_slow_alap_and_count_divergence() {
        let good = run_preset(&tiny());
        let report = BenchReport { presets: vec![good.clone()] };
        assert!(check(&report, &report).is_empty(), "{:?}", check(&report, &report));

        // A 10k-request preset whose speedup fell under the gate.
        let mut slow = good.clone();
        slow.requests = 10_000;
        slow.speedup = 3.0;
        let slow_report = BenchReport { presets: vec![slow] };
        let mut slow_base = good.clone();
        slow_base.requests = 10_000;
        let failures = check(&slow_report, &BenchReport { presets: vec![slow_base] });
        assert!(failures.iter().any(|f| f.contains("below the 10x gate")), "{failures:?}");

        // Diverged deterministic counts.
        let mut diverged = report.clone();
        diverged.presets[0].admits += 1;
        let failures = check(&diverged, &report);
        assert!(failures.iter().any(|f| f.contains("diverged")), "{failures:?}");

        // Unknown preset.
        let unknown =
            BenchReport { presets: vec![PresetResult { name: "other".into(), ..good.clone() }] };
        assert!(!check(&unknown, &report).is_empty());
    }

    #[test]
    fn report_json_round_trips() {
        let report = BenchReport { presets: vec![run_preset(&tiny())] };
        let json = serde::json::to_string_pretty(&report);
        let back: BenchReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
