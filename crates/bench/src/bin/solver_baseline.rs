//! `solver-baseline` — cold vs warm slot-loop solver timings.
//!
//! ```text
//! solver-baseline [--quick] [--out PATH] [--check PATH]
//! ```
//!
//! Runs the figure presets and the paper-scale incremental sweep (see
//! `postcard_bench::solver_baseline`), prints summary tables, and optionally
//! writes the JSON report (`--out`) or gates against a committed baseline
//! (`--check`): cold pivot counts must stay within 20 % of the baseline,
//! warm must keep its ≥2x aggregate pivot advantage, warm/cold objectives
//! must agree to 1e-6 on every preset, and the paper sweep must hold its
//! ≤1e-9 delta/rebuild equivalence, ≥5× build speedup, and one rebuild per
//! run. Pivot counts are deterministic; timings are informational only.

use postcard_bench::solver_baseline::{check, run_all, BenchReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = argv.next(),
            "--check" => check_path = argv.next(),
            "--help" | "-h" => {
                println!("usage: solver-baseline [--quick] [--out PATH] [--check PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("solver-baseline: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_all(quick);
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "preset", "slots", "cold pivots", "warm pivots", "cold ms", "warm ms", "max obj diff"
    );
    for p in &report.presets {
        println!(
            "{:<22} {:>6} {:>12} {:>12} {:>10.3} {:>10.3} {:>12.2e}",
            p.name,
            p.num_slots,
            p.cold.total_pivots,
            p.warm.total_pivots,
            p.cold.mean_ms,
            p.warm.mean_ms,
            p.max_objective_diff
        );
    }
    println!(
        "\n{:<14} {:>4} {:>5} {:>6} {:>11} {:>13} {:>9} {:>11} {:>12}",
        "paper preset",
        "dcs",
        "runs",
        "slots",
        "delta build",
        "rebuild build",
        "speedup",
        "dual pivots",
        "max obj diff"
    );
    for p in &report.paper {
        println!(
            "{:<14} {:>4} {:>5} {:>6} {:>8.3} ms {:>10.3} ms {:>8.1}x {:>11} {:>12.2e}",
            p.name,
            p.num_dcs,
            p.runs,
            p.num_slots,
            p.delta_build.mean_ms,
            p.rebuild_build.mean_ms,
            p.build_speedup,
            p.dual_simplex_iters,
            p.max_objective_diff
        );
    }

    if let Some(path) = out {
        let json = serde::json::to_string_pretty(&report);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("solver-baseline: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("solver-baseline: failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: BenchReport = match serde::json::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("solver-baseline: malformed baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let failures = check(&report, &baseline);
        if failures.is_empty() {
            println!("check against {path}: OK");
        } else {
            for f in &failures {
                eprintln!("solver-baseline: FAIL: {f}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
