//! `billing-baseline` — max-charging vs percentile-aware billing replay.
//!
//! ```text
//! billing-baseline [--quick] [--out PATH] [--check PATH]
//! ```
//!
//! Replays the diurnal presets (see `postcard_bench::billing_baseline`)
//! under both charging schemes, prints a summary table, and optionally
//! writes the JSON report (`--out`) or gates against a committed baseline
//! (`--check`): the p95-aware bill must stay strictly below the
//! max-charging bill with no admissions traded away, and both bills must
//! reproduce the committed numbers exactly (the pipeline is seeded and
//! wall-clock independent).

use postcard_bench::billing_baseline::{check, run_all, BenchReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = argv.next(),
            "--check" => check_path = argv.next(),
            "--help" | "-h" => {
                println!("usage: billing-baseline [--quick] [--out PATH] [--check PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("billing-baseline: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_all(quick);
    println!(
        "{:<12} {:>5} {:>8} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "preset", "days", "tariff", "max bill", "p95 bill", "reduction", "accepted", "declined"
    );
    for p in &report.presets {
        println!(
            "{:<12} {:>5} {:>8} {:>12.2} {:>12.2} {:>9.1}x {:>9} {:>9}",
            p.name,
            p.days,
            p.scheme,
            p.max_bill,
            p.p95_bill,
            p.reduction_factor,
            p.p95_accepted,
            p.headroom_declined
        );
    }

    if let Some(path) = out {
        let json = serde::json::to_string_pretty(&report);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("billing-baseline: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("billing-baseline: failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: BenchReport = match serde::json::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("billing-baseline: malformed baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let failures = check(&report, &baseline);
        if failures.is_empty() {
            println!("check against {path}: OK");
        } else {
            for f in &failures {
                eprintln!("billing-baseline: FAIL: {f}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
