//! `shard-baseline` — sharded vs single-shard service-runtime replay.
//!
//! ```text
//! shard-baseline [--quick] [--out PATH] [--check PATH]
//! ```
//!
//! Replays the multi-tenant presets (see `postcard_bench::shard_baseline`)
//! through the service runtime unsharded and with one shard per tenant,
//! prints a summary table, and optionally writes the JSON report (`--out`)
//! or gates against a committed baseline (`--check`): the reconciled
//! sharded bill must match the unsharded bill with zero conflicts, the
//! deterministic accept/reject counts must match the baseline, and — on
//! hosts reporting ≥ 4 worker threads — the four-tenant preset must keep a
//! ≥2× wall-clock speedup.

use postcard_bench::shard_baseline::{check, gate_notes, run_all, BenchReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = argv.next(),
            "--check" => check_path = argv.next(),
            "--help" | "-h" => {
                println!("usage: shard-baseline [--quick] [--out PATH] [--check PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("shard-baseline: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_all(quick);
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>9} {:>11} {:>10} {:>10} {:>8} {:>8}",
        "preset",
        "tenants",
        "requests",
        "accepted",
        "rejected",
        "cost/slot",
        "1-shard s",
        "N-shard s",
        "speedup",
        "threads"
    );
    for p in &report.presets {
        println!(
            "{:<12} {:>7} {:>9} {:>9} {:>9} {:>11.2} {:>10.3} {:>10.3} {:>7.2}x {:>8}",
            p.name,
            p.tenants,
            p.requests,
            p.accepted,
            p.rejected,
            p.sharded_cost_per_slot,
            p.unsharded_wall_s,
            p.sharded_wall_s,
            p.speedup,
            p.threads_available
        );
    }

    if let Some(path) = out {
        let json = serde::json::to_string_pretty(&report);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("shard-baseline: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("shard-baseline: failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: BenchReport = match serde::json::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("shard-baseline: malformed baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Name every conditional gate that stayed disarmed — a pass must be
        // distinguishable from a gate that never ran.
        for note in gate_notes(&report) {
            println!("shard-baseline: NOTE: {note}");
        }
        let failures = check(&report, &baseline);
        if failures.is_empty() {
            println!("check against {path}: OK");
        } else {
            for f in &failures {
                eprintln!("shard-baseline: FAIL: {f}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
