//! `admission-baseline` — ALAP fast-path vs per-request LP admission timings.
//!
//! ```text
//! admission-baseline [--quick] [--out PATH] [--check PATH]
//! ```
//!
//! Runs the burst presets (see `postcard_bench::admission_baseline`), prints
//! a summary table, and optionally writes the JSON report (`--out`) or gates
//! against a committed baseline (`--check`): the 10⁴-request preset must
//! keep its ≥10× ALAP-over-LP speedup and the deterministic admit/reject
//! counts must match the baseline. The LP path is sampled — the sample size
//! is printed per preset so the extrapolation is never silent.

use postcard_bench::admission_baseline::{check, run_all, BenchReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = argv.next(),
            "--check" => check_path = argv.next(),
            "--help" | "-h" => {
                println!("usage: admission-baseline [--quick] [--out PATH] [--check PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("admission-baseline: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run_all(quick);
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>12} {:>12} {:>10} {:>9}",
        "preset", "requests", "admits", "rejects", "alap us", "lp us", "lp sample", "speedup"
    );
    for p in &report.presets {
        println!(
            "{:<10} {:>9} {:>8} {:>8} {:>12.2} {:>12.2} {:>10} {:>8.1}x",
            p.name,
            p.requests,
            p.admits,
            p.rejects,
            p.alap.mean_us,
            p.lp.mean_us,
            p.lp.measured,
            p.speedup
        );
    }

    if let Some(path) = out {
        let json = serde::json::to_string_pretty(&report);
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("admission-baseline: failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("admission-baseline: failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: BenchReport = match serde::json::from_str(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("admission-baseline: malformed baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let failures = check(&report, &baseline);
        if failures.is_empty() {
            println!("check against {path}: OK");
        } else {
            for f in &failures {
                eprintln!("admission-baseline: FAIL: {f}");
            }
            return ExitCode::FAILURE;
        }
    }

    ExitCode::SUCCESS
}
