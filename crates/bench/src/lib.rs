//! # postcard-bench — shared helpers for the benchmark harness
//!
//! The actual benchmarks live in `benches/`; each figure bench prints the
//! table the paper plots (via `postcard_sim::report`) and then runs a
//! Criterion micro-benchmark of the per-slot solver kernel that dominates
//! the simulation's cost.

pub mod admission_baseline;
pub mod billing_baseline;
pub mod shard_baseline;
pub mod solver_baseline;

use postcard_net::{DcId, FileId, Network, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random batch of files released at slot 0, for kernel
/// micro-benchmarks.
pub fn random_batch(
    seed: u64,
    num_dcs: usize,
    num_files: usize,
    max_deadline: usize,
) -> Vec<TransferRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_files)
        .map(|k| {
            let src = rng.gen_range(0..num_dcs);
            let mut dst = rng.gen_range(0..num_dcs);
            while dst == src {
                dst = rng.gen_range(0..num_dcs);
            }
            TransferRequest::new(
                FileId(k as u64),
                DcId(src),
                DcId(dst),
                rng.gen_range(10.0..=100.0),
                rng.gen_range(1..=max_deadline),
                0,
            )
        })
        .collect()
}

/// A deterministic complete network with uniform prices in `[1, 10]`.
pub fn random_network(seed: u64, num_dcs: usize, capacity: f64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::complete_with_prices(num_dcs, capacity, |_, _| rng.gen_range(1.0..=10.0))
}

/// Runs a figure scenario (scaled down) and prints the table + verdict the
/// paper's figure reports. Used by the `fig4`–`fig7` benches.
pub fn print_figure(base: &postcard_sim::Scenario, seed: u64) {
    let scenario = base.scaled_down();
    let approaches = postcard_sim::Approach::paper_pair();
    match postcard_sim::run_scenario(&scenario, &approaches, seed) {
        Ok(summaries) => {
            println!("{}", postcard_sim::report::render_table(&scenario, &summaries));
            println!("{}", postcard_sim::report::render_verdict(&summaries));
            println!();
        }
        Err(e) => eprintln!("{}: figure run failed: {e}", scenario.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_deterministic() {
        assert_eq!(random_batch(1, 5, 4, 3), random_batch(1, 5, 4, 3));
        assert_eq!(random_batch(1, 5, 4, 3).len(), 4);
    }

    #[test]
    fn network_is_deterministic() {
        assert_eq!(random_network(2, 4, 30.0), random_network(2, 4, 30.0));
    }
}
