//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **A1 — value of relay storage**: Postcard vs its
//!   no-relay-storage variant (pacing only at source/destination) in the
//!   throttled-capacity regime;
//! * **A2 — deadline (horizon) sweep**: Postcard's cost as `max T` grows,
//!   showing the "more delay tolerance ⇒ lower cost" trend as a curve;
//! * **A3 — all five approaches** side by side on the fig6 setting;
//! * plus a Criterion benchmark of how the per-slot solve scales with the
//!   time-expansion depth.

use criterion::{BenchmarkId, Criterion};
use postcard_bench::{random_batch, random_network};
use postcard_core::{solve_postcard_with, PostcardConfig};
use postcard_net::TrafficLedger;
use postcard_sim::{
    report, run_scenario, run_trace, Approach, DiurnalWorkload, Scenario, Trace, WorkloadConfig,
};
use std::hint::black_box;

fn ablation_storage() {
    println!("=== A1: value of relay storage (fig6 setting) ===");
    let scenario = Scenario::fig6().scaled_down();
    let out = run_scenario(&scenario, &[Approach::Postcard, Approach::PostcardNoRelayStorage], 3)
        .expect("scenario runs");
    println!("{}", report::render_table(&scenario, &out));
}

fn ablation_horizon() {
    println!("=== A2: deadline sweep (throttled capacity) ===");
    println!("{:>7}  {:>14}  {:>8}", "max T", "avg cost/slot", "rej%");
    for max_t in [1usize, 2, 4, 8] {
        let mut scenario = Scenario::fig6().scaled_down();
        scenario.deadline_slots = (1, max_t);
        scenario.num_runs = 3;
        scenario.num_slots = 20;
        let out = run_scenario(&scenario, &[Approach::Postcard], 5).expect("scenario runs");
        println!(
            "{max_t:>7}  {:>14.2}  {:>7.1}%",
            out[0].avg_cost.mean,
            100.0 * out[0].rejection_rate
        );
    }
    println!();
}

fn ablation_all_approaches() {
    println!("=== A3: all approaches (fig6 setting, reduced) ===");
    let mut scenario = Scenario::fig6().scaled_down();
    scenario.num_runs = 3;
    scenario.num_slots = 20;
    let out = run_scenario(
        &scenario,
        &[
            Approach::Postcard,
            Approach::FlowLp,
            Approach::FlowTwoPhase,
            Approach::FlowGreedy,
            Approach::Direct,
        ],
        7,
    )
    .expect("scenario runs");
    println!("{}", report::render_table(&scenario, &out));
    println!("{}", report::render_verdict(&out));
    println!();
}

fn ablation_diurnal() {
    println!("=== A4: diurnal vs uniform arrivals (throttled capacity) ===");
    // Same expected volume per day, different temporal shape: the diurnal
    // pattern leaves deep night valleys that store-and-forward can exploit.
    let scenario = Scenario::fig7().scaled_down();
    let network = scenario.network(13);
    let slots = scenario.num_slots;
    let cfg = WorkloadConfig {
        num_dcs: scenario.num_dcs,
        files_per_slot: scenario.files_per_slot,
        size_gb: scenario.size_gb,
        deadline_slots: scenario.deadline_slots,
    };
    let mut uniform = scenario.workload(13);
    let uniform_trace = Trace::generate(&mut uniform, slots);
    // Peak/valley chosen so the mean batch size matches the uniform one.
    let mean = 0.5 * (scenario.files_per_slot.0 + scenario.files_per_slot.1) as f64;
    let mut diurnal = DiurnalWorkload::new(cfg, 2.0 * mean - 0.2, 0.2, slots / 2, 13);
    let diurnal_trace = Trace::generate(&mut diurnal, slots);

    println!(
        "{:<10}{:<12}{:>14}{:>10}{:>10}",
        "workload", "approach", "avg cost/slot", "$/GB", "rej%"
    );
    for (name, trace) in [("uniform", &uniform_trace), ("diurnal", &diurnal_trace)] {
        for approach in [Approach::Postcard, Approach::FlowLp] {
            let r = run_trace(&network, trace, slots, approach, 0).expect("trace runs");
            println!(
                "{:<10}{:<12}{:>14.2}{:>10.2}{:>9.1}%",
                name,
                approach.name(),
                r.avg_cost_per_slot,
                r.cost_per_gb(),
                100.0 * r.rejected as f64 / (r.accepted + r.rejected).max(1) as f64
            );
        }
    }
    println!();
}

fn horizon_scaling(c: &mut Criterion) {
    let network = random_network(9, 6, 100.0);
    let ledger = TrafficLedger::new(6);
    let mut g = c.benchmark_group("postcard_solve_vs_horizon");
    g.sample_size(10);
    for &max_t in &[1usize, 2, 4, 8] {
        let batch = random_batch(9, 6, 3, max_t);
        g.bench_with_input(BenchmarkId::from_parameter(max_t), &batch, |b, batch| {
            b.iter(|| {
                solve_postcard_with(
                    black_box(&network),
                    black_box(batch),
                    &ledger,
                    &PostcardConfig::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn main() {
    ablation_storage();
    ablation_horizon();
    ablation_all_approaches();
    ablation_diurnal();
    let mut c = Criterion::default().configure_from_args();
    horizon_scaling(&mut c);
    c.final_summary();
}
