//! Figure 7: average cost per slot with throttled capacity (`c_ij = 30
//! GB/slot`) and patient files (`max T = 8`) — maximum room for
//! time-shifting.
//!
//! Prints the reproduced figure table, then Criterion-benchmarks the
//! per-slot solver kernels at this setting.

use criterion::Criterion;
use postcard_bench::{print_figure, random_batch, random_network};
use postcard_core::solve_postcard;
use postcard_flow::unified_flow_lp;
use postcard_net::TrafficLedger;
use postcard_sim::Scenario;
use std::hint::black_box;

fn kernels(c: &mut Criterion) {
    let network = random_network(7, 6, 30.0);
    let batch = random_batch(7, 6, 3, 8);
    let ledger = TrafficLedger::new(6);
    let mut g = c.benchmark_group("fig7_kernels");
    g.sample_size(10);
    g.bench_function("postcard_slot_solve", |b| {
        b.iter(|| solve_postcard(black_box(&network), black_box(&batch), &ledger))
    });
    g.bench_function("flow_lp_slot_solve", |b| {
        b.iter(|| unified_flow_lp(black_box(&network), black_box(&batch), &ledger))
    });
    g.finish();
}

fn main() {
    print_figure(&Scenario::fig7(), 1);
    let mut c = Criterion::default().configure_from_args();
    kernels(&mut c);
    c.final_summary();
}
