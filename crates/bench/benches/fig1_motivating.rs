//! Fig. 1: the motivating example — direct vs routed-and-scheduled.
//!
//! Prints the two published numbers (20 vs 12 per slot) and benchmarks the
//! Postcard solve on the 3-datacenter instance.

use criterion::Criterion;
use postcard_core::{solve_postcard, DirectScheduler, OnlineController, PostcardScheduler};
use postcard_net::{DcId, FileId, NetworkBuilder, TrafficLedger, TransferRequest};
use std::hint::black_box;

fn fig1_network() -> postcard_net::Network {
    NetworkBuilder::new(3)
        .link(DcId(1), DcId(2), 10.0, 1000.0)
        .link(DcId(1), DcId(0), 1.0, 1000.0)
        .link(DcId(0), DcId(2), 3.0, 1000.0)
        .build()
}

fn fig1_file() -> TransferRequest {
    TransferRequest::new(FileId(1), DcId(1), DcId(2), 6.0, 3, 0)
}

fn print_table() {
    let mut direct = OnlineController::new(fig1_network(), DirectScheduler);
    let d = direct.step(0, &[fig1_file()]).expect("direct feasible");
    let mut postcard = OnlineController::new(fig1_network(), PostcardScheduler::new());
    let p = postcard.step(0, &[fig1_file()]).expect("postcard feasible");
    println!("fig1 motivating example — cost per slot");
    println!("direct (paper: 20):   {:.2}", d.cost_per_slot);
    println!("postcard (paper: 12): {:.2}", p.cost_per_slot);
    println!();
}

fn main() {
    print_table();
    let mut c = Criterion::default().configure_from_args();
    let network = fig1_network();
    let files = [fig1_file()];
    let ledger = TrafficLedger::new(3);
    c.bench_function("fig1_postcard_solve", |b| {
        b.iter(|| solve_postcard(black_box(&network), black_box(&files), &ledger).unwrap())
    });
    c.final_summary();
}
