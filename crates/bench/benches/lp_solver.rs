//! Micro-benchmarks of the pure-Rust simplex substrate: random inequality
//! LPs and balanced transportation problems at growing sizes.

use criterion::{BenchmarkId, Criterion};
use postcard_lp::{LinExpr, Model, Sense, Status};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A feasible random LP: `min c·x`, `A·x ≤ b` with `b` chosen so the box
/// midpoint is feasible.
fn random_lp(seed: u64, num_vars: usize, num_rows: usize) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..num_vars).map(|i| m.add_var(format!("x{i}"), 0.0, 10.0)).collect();
    let mut obj = LinExpr::new();
    for &v in &vars {
        obj.add_term(v, rng.gen_range(-5.0..5.0));
    }
    m.set_objective(obj);
    for _ in 0..num_rows {
        let mut e = LinExpr::new();
        let mut mid = 0.0;
        for &v in &vars {
            let c = rng.gen_range(-2.0..2.0);
            e.add_term(v, c);
            mid += 5.0 * c;
        }
        m.leq(e, mid + rng.gen_range(0.0..10.0));
    }
    m
}

fn transportation(seed: u64, n: usize) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Minimize);
    let supply: Vec<f64> = (0..n).map(|_| rng.gen_range(5.0..20.0f64).round()).collect();
    let total: f64 = supply.iter().sum();
    let mut demand: Vec<f64> = (0..n).map(|_| total / n as f64).collect();
    let leftover = total - demand.iter().sum::<f64>();
    demand[0] += leftover;
    let mut vars = Vec::new();
    let mut obj = LinExpr::new();
    for i in 0..n {
        let mut row = Vec::new();
        for j in 0..n {
            let v = m.add_var(format!("x{i}_{j}"), 0.0, f64::INFINITY);
            obj.add_term(v, rng.gen_range(1.0..10.0));
            row.push(v);
        }
        vars.push(row);
    }
    m.set_objective(obj);
    for i in 0..n {
        let e: LinExpr = (0..n).map(|j| LinExpr::from(vars[i][j])).sum();
        m.eq(e, supply[i]);
    }
    for j in 0..n {
        let e: LinExpr = (0..n).map(|i| LinExpr::from(vars[i][j])).sum();
        m.eq(e, demand[j]);
    }
    m
}

fn main() {
    let mut c = Criterion::default().configure_from_args();

    let mut g = c.benchmark_group("simplex_random_leq");
    for &(nv, nr) in &[(20usize, 15usize), (50, 40), (100, 80)] {
        let m = random_lp(nv as u64, nv, nr);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{nv}x{nr}")), &m, |b, m| {
            b.iter(|| {
                let s = black_box(m).solve().expect("solves");
                assert_eq!(s.status(), Status::Optimal);
                s.objective()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("simplex_transportation");
    g.sample_size(20);
    for &n in &[5usize, 10, 15] {
        let m = transportation(n as u64, n);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{n}x{n}")), &m, |b, m| {
            b.iter(|| {
                let s = black_box(m).solve().expect("solves");
                assert_eq!(s.status(), Status::Optimal);
                s.objective()
            })
        });
    }
    g.finish();

    c.final_summary();
}
