//! Fig. 3: the time-expanded-graph worked example — Postcard 32.67 vs
//! flow-based 50 vs no strategy 52 per slot.
//!
//! Prints the three published numbers, then benchmarks the Postcard solve
//! and the greedy flow allocator on the 4-datacenter instance.

use criterion::Criterion;
use postcard_core::{solve_postcard, DirectScheduler, OnlineController};
use postcard_flow::greedy_cheapest_path;
use postcard_net::{DcId, FileId, Network, TrafficLedger, TransferRequest};
use std::hint::black_box;

fn fig3_network() -> Network {
    Network::complete_with_prices(4, 5.0, |from, to| match (from.0, to.0) {
        (1, 0) => 1.0,
        (0, 3) => 6.0,
        (1, 2) => 4.0,
        (2, 3) => 6.0,
        (1, 3) => 11.0,
        _ => 20.0,
    })
}

fn files() -> [TransferRequest; 2] {
    [
        TransferRequest::new(FileId(1), DcId(1), DcId(3), 8.0, 4, 3),
        TransferRequest::new(FileId(2), DcId(0), DcId(3), 10.0, 2, 3),
    ]
}

fn print_table() {
    let net = fig3_network();
    let fs = files();
    let ledger = TrafficLedger::new(4);
    let postcard = solve_postcard(&net, &fs, &ledger).expect("feasible").cost_per_slot;
    let greedy = {
        let out = greedy_cheapest_path(&net, &[fs[1], fs[0]], &ledger);
        let mut l = TrafficLedger::new(4);
        out.assignment.apply_to_ledger(&fs, &mut l);
        l.cost_per_slot(&net)
    };
    let direct = {
        let mut ctl = OnlineController::new(net, DirectScheduler);
        ctl.step(3, &fs).expect("direct feasible").cost_per_slot
    };
    println!("fig3 worked example — cost per slot");
    println!("postcard (paper: 32.67): {postcard:.2}");
    println!("flow-based (paper: 50):  {greedy:.2}");
    println!("no strategy (paper: 52): {direct:.2}");
    println!();
}

fn main() {
    print_table();
    let mut c = Criterion::default().configure_from_args();
    let net = fig3_network();
    let fs = files();
    let ledger = TrafficLedger::new(4);
    c.bench_function("fig3_postcard_solve", |b| {
        b.iter(|| solve_postcard(black_box(&net), black_box(&fs), &ledger).unwrap())
    });
    c.bench_function("fig3_greedy_flow", |b| {
        b.iter(|| greedy_cheapest_path(black_box(&net), black_box(&fs), &ledger))
    });
    c.final_summary();
}
