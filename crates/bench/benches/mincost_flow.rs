//! Micro-benchmarks of the combinatorial flow substrate: Dinic max-flow and
//! successive-shortest-paths min-cost flow on layered random graphs.

use criterion::{BenchmarkId, Criterion};
use postcard_flow::{dinic_max_flow, min_cost_flow, FlowNetwork, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A layered graph: source → L layers of `width` nodes → sink, dense
/// between consecutive layers.
fn layered(seed: u64, layers: usize, width: usize) -> (FlowNetwork, NodeId, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 + layers * width;
    let mut g = FlowNetwork::new(n);
    let node = |l: usize, w: usize| NodeId(1 + l * width + w);
    let (s, t) = (NodeId(0), NodeId(n - 1));
    for w in 0..width {
        g.add_edge(s, node(0, w), rng.gen_range(5.0..20.0), rng.gen_range(1.0..5.0));
        g.add_edge(node(layers - 1, w), t, rng.gen_range(5.0..20.0), rng.gen_range(1.0..5.0));
    }
    for l in 0..layers - 1 {
        for a in 0..width {
            for b in 0..width {
                if rng.gen_bool(0.7) {
                    g.add_edge(
                        node(l, a),
                        node(l + 1, b),
                        rng.gen_range(1.0..10.0),
                        rng.gen_range(1.0..8.0),
                    );
                }
            }
        }
    }
    (g, s, t)
}

fn main() {
    let mut c = Criterion::default().configure_from_args();

    let mut g = c.benchmark_group("dinic_max_flow");
    for &(layers, width) in &[(3usize, 5usize), (5, 10), (8, 15)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}layers_x{width}")),
            &(layers, width),
            |b, &(layers, width)| {
                b.iter_batched(
                    || layered(layers as u64, layers, width),
                    |(mut net, s, t)| dinic_max_flow(&mut net, s, t),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("ssp_min_cost_flow");
    for &(layers, width) in &[(3usize, 5usize), (5, 10), (8, 15)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}layers_x{width}")),
            &(layers, width),
            |b, &(layers, width)| {
                b.iter_batched(
                    || layered(layers as u64, layers, width),
                    |(mut net, s, t)| min_cost_flow(&mut net, s, t, f64::INFINITY),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();

    c.final_summary();
}
