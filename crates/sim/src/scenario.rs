//! Scenario presets for the paper's evaluation settings (Sec. VII).
//!
//! The paper simulates 20 datacenters in a complete graph, prices
//! `a_ij ~ U[1, 10]`, batches of `U[1, 20]` files per slot with sizes
//! `U[10, 100]` GB, over 100 slots × 10 runs, in four settings crossing
//! link capacity (100 vs 30 GB/slot) with delay tolerance
//! (`max_k T_k` = 3 vs 8). [`Scenario::fig4`]–[`Scenario::fig7`] are those
//! settings verbatim; [`Scenario::scaled_down`] shrinks the datacenter count
//! and batch size (keeping per-file rates, capacities, and deadlines — the
//! quantities that set the competitive regime) so the full sweep fits a
//! laptop/CI budget.

use crate::workload::{UniformWorkload, WorkloadConfig};
use postcard_net::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A complete evaluation setting.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (e.g. `"fig4"`).
    pub name: String,
    /// Number of datacenters (complete digraph).
    pub num_dcs: usize,
    /// Uniform per-link capacity (GB/slot).
    pub capacity_gb: f64,
    /// Uniform price range `a_ij ~ U[lo, hi]` ($/GB).
    pub price_range: (f64, f64),
    /// Batch-size range per slot.
    pub files_per_slot: (usize, usize),
    /// File-size range (GB).
    pub size_gb: (f64, f64),
    /// Deadline range (slots); `.1` is the paper's `max_k T_k`.
    pub deadline_slots: (usize, usize),
    /// Slots per run.
    pub num_slots: u64,
    /// Independent repetitions.
    pub num_runs: usize,
}

impl Scenario {
    /// Fig. 4: ample capacity (100 GB/slot), urgent files (`max T = 3`).
    pub fn fig4() -> Self {
        Self::paper("fig4", 100.0, 3)
    }

    /// Fig. 5: ample capacity (100 GB/slot), patient files (`max T = 8`).
    pub fn fig5() -> Self {
        Self::paper("fig5", 100.0, 8)
    }

    /// Fig. 6: throttled capacity (30 GB/slot), urgent files (`max T = 3`).
    pub fn fig6() -> Self {
        Self::paper("fig6", 30.0, 3)
    }

    /// Fig. 7: throttled capacity (30 GB/slot), patient files (`max T = 8`).
    pub fn fig7() -> Self {
        Self::paper("fig7", 30.0, 8)
    }

    fn paper(name: &str, capacity_gb: f64, max_deadline: usize) -> Self {
        Self {
            name: name.into(),
            num_dcs: 20,
            capacity_gb,
            price_range: (1.0, 10.0),
            files_per_slot: (1, 20),
            size_gb: (10.0, 100.0),
            deadline_slots: (1, max_deadline),
            num_slots: 100,
            num_runs: 10,
        }
    }

    /// A laptop-scale reduction of this scenario: 6 datacenters and 1–4
    /// files per slot (≈ the paper's per-datacenter arrival rate), 40
    /// slots, 5 runs. Per-file rates, link capacity, prices, and deadlines
    /// are unchanged, preserving the capacity regime that drives the
    /// paper's findings.
    pub fn scaled_down(&self) -> Self {
        Self {
            name: format!("{}-scaled", self.name),
            num_dcs: 6,
            files_per_slot: (1, 4),
            num_slots: 40,
            num_runs: 5,
            ..self.clone()
        }
    }

    /// An even smaller variant used by unit/integration tests.
    pub fn tiny(&self) -> Self {
        Self {
            name: format!("{}-tiny", self.name),
            num_dcs: 4,
            files_per_slot: (1, 2),
            num_slots: 10,
            num_runs: 2,
            ..self.clone()
        }
    }

    /// The four paper settings.
    pub fn all_figures() -> Vec<Scenario> {
        vec![Self::fig4(), Self::fig5(), Self::fig6(), Self::fig7()]
    }

    /// Samples the network for one run: a complete digraph with prices
    /// `U[price_range]` and uniform capacity.
    pub fn network(&self, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = self.price_range;
        Network::complete_with_prices(self.num_dcs, self.capacity_gb, |_, _| rng.gen_range(lo..=hi))
    }

    /// The workload generator for one run.
    pub fn workload(&self, seed: u64) -> UniformWorkload {
        UniformWorkload::new(
            WorkloadConfig {
                num_dcs: self.num_dcs,
                files_per_slot: self.files_per_slot,
                size_gb: self.size_gb,
                deadline_slots: self.deadline_slots,
            },
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_section_vii() {
        let f4 = Scenario::fig4();
        assert_eq!(f4.num_dcs, 20);
        assert_eq!(f4.capacity_gb, 100.0);
        assert_eq!(f4.deadline_slots, (1, 3));
        assert_eq!(f4.files_per_slot, (1, 20));
        assert_eq!(f4.size_gb, (10.0, 100.0));
        assert_eq!(f4.num_slots, 100);
        assert_eq!(f4.num_runs, 10);
        assert_eq!(Scenario::fig5().deadline_slots.1, 8);
        assert_eq!(Scenario::fig6().capacity_gb, 30.0);
        assert_eq!(Scenario::fig7().capacity_gb, 30.0);
        assert_eq!(Scenario::fig7().deadline_slots.1, 8);
        assert_eq!(Scenario::all_figures().len(), 4);
    }

    #[test]
    fn scaled_down_preserves_regime_parameters() {
        let s = Scenario::fig6().scaled_down();
        assert_eq!(s.capacity_gb, 30.0);
        assert_eq!(s.size_gb, (10.0, 100.0));
        assert_eq!(s.deadline_slots, (1, 3));
        assert!(s.num_dcs < 20);
        assert!(s.name.contains("scaled"));
    }

    #[test]
    fn network_prices_in_range_and_seeded() {
        let s = Scenario::fig4().scaled_down();
        let n1 = s.network(42);
        let n2 = s.network(42);
        assert_eq!(n1, n2);
        for l in n1.links() {
            assert!((1.0..=10.0).contains(&l.price));
            assert_eq!(l.capacity, 100.0);
        }
        assert_ne!(n1, s.network(43));
    }

    #[test]
    fn workload_uses_scenario_dcs() {
        let s = Scenario::fig4().tiny();
        let mut w = s.workload(7);
        use crate::workload::Workload;
        for r in w.batch(0) {
            assert!(r.src.0 < s.num_dcs && r.dst.0 < s.num_dcs);
        }
    }
}
