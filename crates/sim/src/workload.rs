//! Workload generators and replayable traces.
//!
//! The paper's evaluation draws, for every slot, a uniform number of files,
//! each with uniform size, uniform endpoints, and (implicitly) uniform
//! deadline up to `max_k T_k`. [`UniformWorkload`] reproduces that;
//! [`PoissonWorkload`] and [`DiurnalWorkload`] are extensions used by the
//! ablation benches (the diurnal pattern follows the Chen et al. observation
//! the paper cites).

use postcard_net::{DcId, FileId, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Parameters shared by the workload generators.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of datacenters files may originate from / go to.
    pub num_dcs: usize,
    /// Inclusive range for the number of files per slot (paper: `[1, 20]`).
    pub files_per_slot: (usize, usize),
    /// Inclusive range for file sizes in GB (paper: `[10, 100]`).
    pub size_gb: (f64, f64),
    /// Inclusive range for deadlines in slots (paper: `[1, max_k T_k]`).
    pub deadline_slots: (usize, usize),
}

impl WorkloadConfig {
    /// The paper's exact setting with the given deadline cap.
    pub fn paper(max_deadline: usize) -> Self {
        Self {
            num_dcs: 20,
            files_per_slot: (1, 20),
            size_gb: (10.0, 100.0),
            deadline_slots: (1, max_deadline),
        }
    }

    fn validate(&self) {
        assert!(self.num_dcs >= 2, "need at least two datacenters");
        assert!(self.files_per_slot.0 <= self.files_per_slot.1);
        assert!(self.size_gb.0 > 0.0 && self.size_gb.0 <= self.size_gb.1);
        assert!(self.deadline_slots.0 >= 1 && self.deadline_slots.0 <= self.deadline_slots.1);
    }
}

/// A per-slot batch generator.
pub trait Workload {
    /// The batch of files released at `slot`.
    fn batch(&mut self, slot: u64) -> Vec<TransferRequest>;
}

/// The paper's uniform workload.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    config: WorkloadConfig,
    rng: StdRng,
    next_id: u64,
}

impl UniformWorkload {
    /// Creates a seeded generator.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration ranges.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        config.validate();
        Self { config, rng: StdRng::seed_from_u64(seed), next_id: 0 }
    }

    fn draw_file(&mut self, slot: u64) -> TransferRequest {
        let n = self.config.num_dcs;
        let src = self.rng.gen_range(0..n);
        let mut dst = self.rng.gen_range(0..n);
        while dst == src {
            dst = self.rng.gen_range(0..n);
        }
        let size = self.rng.gen_range(self.config.size_gb.0..=self.config.size_gb.1);
        let deadline =
            self.rng.gen_range(self.config.deadline_slots.0..=self.config.deadline_slots.1);
        let id = FileId(self.next_id);
        self.next_id += 1;
        TransferRequest::new(id, DcId(src), DcId(dst), size, deadline, slot)
    }
}

impl Workload for UniformWorkload {
    fn batch(&mut self, slot: u64) -> Vec<TransferRequest> {
        let count = self.rng.gen_range(self.config.files_per_slot.0..=self.config.files_per_slot.1);
        (0..count).map(|_| self.draw_file(slot)).collect()
    }
}

/// Poisson-arrival workload: the batch size is Poisson with the given mean
/// (sizes/endpoints/deadlines as in [`UniformWorkload`]).
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    inner: UniformWorkload,
    mean_files_per_slot: f64,
}

impl PoissonWorkload {
    /// Creates a seeded generator with mean batch size
    /// `mean_files_per_slot`.
    ///
    /// # Panics
    ///
    /// Panics if the mean is not positive or the config is inconsistent.
    pub fn new(config: WorkloadConfig, mean_files_per_slot: f64, seed: u64) -> Self {
        assert!(mean_files_per_slot > 0.0);
        Self { inner: UniformWorkload::new(config, seed), mean_files_per_slot }
    }

    /// Knuth's Poisson sampler (fine for small means).
    fn sample_poisson(&mut self) -> usize {
        let l = (-self.mean_files_per_slot).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.inner.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // guard against pathological means
            }
        }
    }
}

impl Workload for PoissonWorkload {
    fn batch(&mut self, slot: u64) -> Vec<TransferRequest> {
        let count = self.sample_poisson();
        (0..count).map(|_| self.inner.draw_file(slot)).collect()
    }
}

/// Diurnal workload: the expected batch size follows a 24-hour sinusoid
/// (288 five-minute slots per day), peaking at `peak_files_per_slot` and
/// bottoming at `valley_files_per_slot`.
#[derive(Debug, Clone)]
pub struct DiurnalWorkload {
    inner: UniformWorkload,
    peak_files_per_slot: f64,
    valley_files_per_slot: f64,
    slots_per_day: u64,
}

impl DiurnalWorkload {
    /// Creates a seeded generator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ valley ≤ peak` and `slots_per_day ≥ 2`.
    pub fn new(
        config: WorkloadConfig,
        peak_files_per_slot: f64,
        valley_files_per_slot: f64,
        slots_per_day: u64,
        seed: u64,
    ) -> Self {
        assert!(valley_files_per_slot >= 0.0 && valley_files_per_slot <= peak_files_per_slot);
        assert!(slots_per_day >= 2);
        Self {
            inner: UniformWorkload::new(config, seed),
            peak_files_per_slot,
            valley_files_per_slot,
            slots_per_day,
        }
    }

    /// Expected batch size at a slot.
    pub fn expected_at(&self, slot: u64) -> f64 {
        let phase = (slot % self.slots_per_day) as f64 / self.slots_per_day as f64;
        let mid = 0.5 * (self.peak_files_per_slot + self.valley_files_per_slot);
        let amp = 0.5 * (self.peak_files_per_slot - self.valley_files_per_slot);
        mid + amp * (2.0 * std::f64::consts::PI * phase).sin()
    }
}

impl Workload for DiurnalWorkload {
    fn batch(&mut self, slot: u64) -> Vec<TransferRequest> {
        let expect = self.expected_at(slot);
        let base = expect.floor() as usize;
        let frac = expect - base as f64;
        let count = base + usize::from(self.inner.rng.gen::<f64>() < frac);
        (0..count).map(|_| self.inner.draw_file(slot)).collect()
    }
}

/// A materialized workload: every request of a run, slot by slot, replayable
/// against any number of approaches (paired comparison) and round-trippable
/// through a simple CSV format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    requests: Vec<TransferRequest>,
}

/// Error parsing a [`Trace`] from CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// Materializes `num_slots` batches from a generator.
    pub fn generate(workload: &mut dyn Workload, num_slots: u64) -> Self {
        let mut requests = Vec::new();
        for slot in 0..num_slots {
            requests.extend(workload.batch(slot));
        }
        Self { requests }
    }

    /// Builds a trace from explicit requests (sorted by release slot).
    pub fn from_requests(mut requests: Vec<TransferRequest>) -> Self {
        requests.sort_by_key(|r| (r.release_slot, r.id));
        Self { requests }
    }

    /// All requests, ordered by release slot.
    pub fn requests(&self) -> &[TransferRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// One slot past the last release slot.
    pub fn num_slots(&self) -> u64 {
        self.requests.iter().map(|r| r.release_slot + 1).max().unwrap_or(0)
    }

    /// The batch released at `slot`.
    pub fn batch(&self, slot: u64) -> Vec<TransferRequest> {
        self.requests.iter().filter(|r| r.release_slot == slot).copied().collect()
    }

    /// Total volume of all requests (GB).
    pub fn total_volume(&self) -> f64 {
        self.requests.iter().map(|r| r.size_gb).sum()
    }

    /// Serializes to CSV: `id,src,dst,size_gb,deadline_slots,release_slot`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("id,src,dst,size_gb,deadline_slots,release_slot\n");
        for r in &self.requests {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.id.0, r.src.0, r.dst.0, r.size_gb, r.deadline_slots, r.release_slot
            ));
        }
        out
    }

    /// Parses the CSV produced by [`Trace::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] naming the first malformed line.
    pub fn from_csv(text: &str) -> Result<Self, TraceParseError> {
        let mut requests = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 && line.starts_with("id,") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let err = |message: &str| TraceParseError { line: i + 1, message: message.into() };
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != 6 {
                return Err(err("expected 6 comma-separated fields"));
            }
            let id: u64 = parts[0].trim().parse().map_err(|_| err("bad id"))?;
            let src: usize = parts[1].trim().parse().map_err(|_| err("bad src"))?;
            let dst: usize = parts[2].trim().parse().map_err(|_| err("bad dst"))?;
            let size: f64 = parts[3].trim().parse().map_err(|_| err("bad size"))?;
            let deadline: usize = parts[4].trim().parse().map_err(|_| err("bad deadline"))?;
            let release: u64 = parts[5].trim().parse().map_err(|_| err("bad release slot"))?;
            if src == dst || size <= 0.0 || deadline == 0 {
                return Err(err("inconsistent request fields"));
            }
            requests.push(TransferRequest::new(
                FileId(id),
                DcId(src),
                DcId(dst),
                size,
                deadline,
                release,
            ));
        }
        Ok(Self::from_requests(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            num_dcs: 5,
            files_per_slot: (1, 4),
            size_gb: (10.0, 100.0),
            deadline_slots: (1, 3),
        }
    }

    #[test]
    fn uniform_respects_ranges() {
        let mut w = UniformWorkload::new(cfg(), 1);
        for slot in 0..50 {
            let batch = w.batch(slot);
            assert!((1..=4).contains(&batch.len()));
            for r in batch {
                assert!(r.src != r.dst);
                assert!(r.src.0 < 5 && r.dst.0 < 5);
                assert!((10.0..=100.0).contains(&r.size_gb));
                assert!((1..=3).contains(&r.deadline_slots));
                assert_eq!(r.release_slot, slot);
            }
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut a = UniformWorkload::new(cfg(), 7);
        let mut b = UniformWorkload::new(cfg(), 7);
        for slot in 0..10 {
            assert_eq!(a.batch(slot), b.batch(slot));
        }
        let mut c = UniformWorkload::new(cfg(), 8);
        let d: Vec<_> = (0..10).flat_map(|s| c.batch(s)).collect();
        let mut a2 = UniformWorkload::new(cfg(), 7);
        let e: Vec<_> = (0..10).flat_map(|s| a2.batch(s)).collect();
        assert_ne!(d, e, "different seeds should differ");
    }

    #[test]
    fn file_ids_are_unique() {
        let mut w = UniformWorkload::new(cfg(), 3);
        let ids: Vec<u64> = (0..30).flat_map(|s| w.batch(s)).map(|r| r.id.0).collect();
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let mut w = PoissonWorkload::new(cfg(), 3.0, 5);
        let total: usize = (0..2000).map(|s| w.batch(s).len()).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 3.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn diurnal_peak_exceeds_valley() {
        let w = DiurnalWorkload::new(cfg(), 8.0, 1.0, 288, 1);
        // Expected size at the sinusoid peak (quarter day) vs trough.
        assert!(w.expected_at(72) > w.expected_at(216));
        let mut w = w;
        let peak_total: usize = (0..50).map(|i| w.batch(72 + 288 * i).len()).sum();
        let valley_total: usize = (0..50).map(|i| w.batch(216 + 288 * i).len()).sum();
        assert!(peak_total > valley_total, "{peak_total} vs {valley_total}");
    }

    #[test]
    fn trace_round_trips_through_csv() {
        let mut w = UniformWorkload::new(cfg(), 9);
        let t = Trace::generate(&mut w, 10);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        let back = Trace::from_csv(&csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn trace_batches_partition_requests() {
        let mut w = UniformWorkload::new(cfg(), 2);
        let t = Trace::generate(&mut w, 12);
        let total: usize = (0..t.num_slots()).map(|s| t.batch(s).len()).sum();
        assert_eq!(total, t.len());
        assert!(t.total_volume() > 0.0);
    }

    #[test]
    fn trace_parse_errors_name_the_line() {
        let e =
            Trace::from_csv("id,src,dst,size_gb,deadline_slots,release_slot\n1,2\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = Trace::from_csv("0,1,1,5.0,2,0\n").unwrap_err();
        assert!(e.message.contains("inconsistent"));
    }
}
