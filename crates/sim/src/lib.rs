//! # postcard-sim — the time-slotted simulator
//!
//! Reproduces the evaluation of the Postcard paper (Sec. VII): a complete
//! graph of datacenters with uniformly random link prices, uniformly random
//! file batches every slot, and an online controller per approach, run for
//! many slots over many seeded repetitions.
//!
//! * [`Workload`] / [`UniformWorkload`] / [`PoissonWorkload`] /
//!   [`DiurnalWorkload`] — batch generators ([`UniformWorkload`] is the
//!   paper's);
//! * [`Trace`] — a materialized workload that can be replayed against every
//!   approach (paired comparisons) and saved/loaded as CSV;
//! * [`Scenario`] — presets for the paper's four settings (Fig. 4–7) at
//!   paper scale and at a laptop-scale reduction;
//! * [`Approach`] — the schedulers under comparison;
//! * [`run_scenario`] — the multi-run driver producing
//!   [`ApproachSummary`] statistics (mean cost per slot ± 95 % CI);
//! * [`run_scenario_service`] — the same driver routed through the
//!   crash-safe service runtime (optionally sharded), and
//!   [`TenantScenario`] — block-diagonal multi-tenant instances for the
//!   sharded runtime's equivalence tests and benches;
//! * [`report`] — plain-text tables in the shape of the paper's figures.
//!
//! # Example
//!
//! Run a miniature Fig. 6 (throttled capacity) comparison:
//!
//! ```
//! use postcard_sim::{run_scenario, Approach, Scenario};
//!
//! # fn main() -> Result<(), postcard_core::PostcardError> {
//! let scenario = Scenario::fig6().tiny(); // 4 DCs, 10 slots, 2 runs
//! let summaries = run_scenario(&scenario, &Approach::paper_pair(), 1)?;
//! assert_eq!(summaries.len(), 2);
//! assert!(summaries.iter().all(|s| s.avg_cost.mean > 0.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod diurnal;
pub mod report;
mod runner;
mod scenario;
mod service;
mod stats;
mod tenant;
mod workload;

pub use diurnal::{compare_billing, BillingComparison, DiurnalPreset};
pub use runner::{
    run_scenario, run_trace, Approach, ApproachSummary, ParseApproachError, RunResult,
};
pub use scenario::Scenario;
pub use service::{run_scenario_service, run_trace_service, trace_to_arrivals, ServiceRunResult};
pub use stats::{mean, sample_stddev, ConfidenceInterval, Summary};
pub use tenant::TenantScenario;
pub use workload::{
    DiurnalWorkload, PoissonWorkload, Trace, TraceParseError, UniformWorkload, Workload,
    WorkloadConfig,
};
