//! Plain-text report tables in the shape of the paper's figures.

use crate::runner::ApproachSummary;
use crate::scenario::Scenario;

/// Renders one scenario's results as an aligned text table:
///
/// ```text
/// fig6 (c_ij = 30 GB/slot, max T = 3) — avg cost per slot, 40 slots × 5 runs
/// approach     avg cost/slot      95% CI         final    rej%
/// postcard           1234.56   ± 45.67         1300.00    0.0%
/// flow-lp            1500.12   ± 50.00         1600.00    1.2%
/// ```
pub fn render_table(scenario: &Scenario, summaries: &[ApproachSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} (c_ij = {} GB/slot, max T = {}) — avg cost per slot, {} slots x {} runs\n",
        scenario.name,
        scenario.capacity_gb,
        scenario.deadline_slots.1,
        scenario.num_slots,
        scenario.num_runs
    ));
    out.push_str(&format!(
        "{:<28}{:>16}{:>12}{:>14}{:>9}{:>8}\n",
        "approach", "avg cost/slot", "95% CI", "final", "$/GB", "rej%"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<28}{:>16.2}{:>12}{:>14.2}{:>9.2}{:>7.1}%\n",
            s.approach.name(),
            s.avg_cost.mean,
            format!("± {:.2}", s.avg_cost.half_width),
            s.final_cost.mean,
            s.cost_per_gb.mean,
            100.0 * s.rejection_rate
        ));
    }
    out
}

/// Renders the winner comparison line the paper's prose reports: which
/// approach had the lower mean cost and by what factor.
pub fn render_verdict(summaries: &[ApproachSummary]) -> String {
    let Some(best) = summaries
        .iter()
        .min_by(|a, b| a.avg_cost.mean.partial_cmp(&b.avg_cost.mean).expect("finite costs"))
    else {
        return "no results".into();
    };
    let mut out = format!("winner: {}", best.approach.name());
    if best.rejection_rate > 0.05 {
        out.push_str(&format!(
            " (caution: it rejected {:.1}% of files — compare the $/GB column)",
            100.0 * best.rejection_rate
        ));
    }
    for s in summaries {
        if s.approach != best.approach && best.avg_cost.mean > 0.0 {
            out.push_str(&format!(
                "; vs {}: x{:.3}",
                s.approach.name(),
                s.avg_cost.mean / best.avg_cost.mean
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Approach, RunResult};
    use crate::stats::ConfidenceInterval;

    fn summary(approach: Approach, mean: f64) -> ApproachSummary {
        ApproachSummary {
            approach,
            runs: vec![RunResult {
                approach,
                run: 0,
                num_slots: 10,
                avg_cost_per_slot: mean,
                final_cost_per_slot: mean,
                accepted: 10,
                rejected: 0,
                accepted_volume: 100.0,
                rejected_volume: 0.0,
                p95_cost_per_slot: mean,
            }],
            avg_cost: ConfidenceInterval { mean, half_width: 1.0 },
            final_cost: ConfidenceInterval { mean, half_width: 1.0 },
            cost_per_gb: ConfidenceInterval { mean: mean / 10.0, half_width: 0.1 },
            p95_cost: ConfidenceInterval { mean, half_width: 1.0 },
            rejection_rate: 0.0,
        }
    }

    #[test]
    fn table_contains_all_approaches() {
        let s = Scenario::fig6().tiny();
        let table = render_table(
            &s,
            &[summary(Approach::Postcard, 100.0), summary(Approach::FlowLp, 150.0)],
        );
        assert!(table.contains("postcard"));
        assert!(table.contains("flow-lp"));
        assert!(table.contains("30 GB/slot"));
        assert!(table.contains("100.00"));
    }

    #[test]
    fn verdict_names_winner_and_factor() {
        let v =
            render_verdict(&[summary(Approach::Postcard, 100.0), summary(Approach::FlowLp, 150.0)]);
        assert!(v.starts_with("winner: postcard"));
        assert!(v.contains("x1.5"));
    }

    #[test]
    fn verdict_empty() {
        assert_eq!(render_verdict(&[]), "no results");
    }
}
