//! Multi-tenant evaluation scenarios for the sharded runtime.
//!
//! A tenant is a cluster of datacenters with its own traffic. The network
//! is block-diagonal: each tenant's datacenters form a complete digraph
//! with seeded prices, and **no link crosses tenants**, so the workload is
//! tenant-disjoint by construction. On such instances the sharded
//! runtime's reconciliation pass never finds a shared-link conflict and
//! the merged objective must match the unsharded solve — the property the
//! equivalence tests and the `shard-baseline` bench are built on.
//!
//! Requests carry their owner in the [`FileId`] high bits
//! ([`FileId::for_tenant`]), which is exactly what
//! `postcard serve --shards N --shard-by tenant` partitions on.

use crate::workload::Trace;
use postcard_net::{DcId, FileId, Network, NetworkBuilder, TransferRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A block-diagonal multi-tenant setting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantScenario {
    /// Display name (e.g. `"quad"`).
    pub name: String,
    /// Number of tenants (= shard count under `--shard-by tenant`).
    pub tenants: usize,
    /// Datacenters per tenant cluster.
    pub dcs_per_tenant: usize,
    /// Uniform per-link capacity (GB/slot) inside every cluster.
    pub capacity_gb: f64,
    /// Uniform price range `a_ij ~ U[lo, hi]` ($/GB).
    pub price_range: (f64, f64),
    /// Batch-size range per tenant per slot.
    pub files_per_tenant_slot: (usize, usize),
    /// File-size range (GB).
    pub size_gb: (f64, f64),
    /// Deadline range (slots).
    pub deadline_slots: (usize, usize),
    /// Slots per run.
    pub num_slots: u64,
}

impl TenantScenario {
    /// The four-tenant setting used by the equivalence tests and the
    /// `shard-baseline` bench: 4 clusters of 3 datacenters, ample capacity,
    /// paper-style prices and deadlines.
    pub fn quad() -> Self {
        Self {
            name: "quad".into(),
            tenants: 4,
            dcs_per_tenant: 3,
            capacity_gb: 100.0,
            price_range: (1.0, 10.0),
            files_per_tenant_slot: (1, 2),
            size_gb: (10.0, 40.0),
            deadline_slots: (1, 3),
            num_slots: 8,
        }
    }

    /// Total datacenter count across all clusters.
    pub fn num_dcs(&self) -> usize {
        self.tenants * self.dcs_per_tenant
    }

    /// The datacenter ids of one tenant's cluster.
    pub fn dcs_of(&self, tenant: usize) -> std::ops::Range<usize> {
        let lo = tenant * self.dcs_per_tenant;
        lo..lo + self.dcs_per_tenant
    }

    /// Samples the block-diagonal network: a complete digraph *within* each
    /// tenant's cluster, no links between clusters.
    pub fn network(&self, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = self.price_range;
        let mut b = NetworkBuilder::new(self.num_dcs());
        for tenant in 0..self.tenants {
            for i in self.dcs_of(tenant) {
                for j in self.dcs_of(tenant) {
                    if i != j {
                        b = b.link(DcId(i), DcId(j), rng.gen_range(lo..=hi), self.capacity_gb);
                    }
                }
            }
        }
        b.build()
    }

    /// Samples a tenant-tagged trace: every slot, every tenant releases a
    /// uniform batch whose endpoints stay inside its own cluster and whose
    /// ids carry the tenant in their high bits.
    pub fn trace(&self, seed: u64) -> Trace {
        assert!(self.dcs_per_tenant >= 2, "a cluster needs at least two datacenters");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = vec![0u64; self.tenants];
        let mut requests = Vec::new();
        for slot in 0..self.num_slots {
            for (tenant, seq) in seqs.iter_mut().enumerate() {
                let count =
                    rng.gen_range(self.files_per_tenant_slot.0..=self.files_per_tenant_slot.1);
                for _ in 0..count {
                    let base = tenant * self.dcs_per_tenant;
                    let src = base + rng.gen_range(0..self.dcs_per_tenant);
                    let mut dst = base + rng.gen_range(0..self.dcs_per_tenant);
                    while dst == src {
                        dst = base + rng.gen_range(0..self.dcs_per_tenant);
                    }
                    let size = rng.gen_range(self.size_gb.0..=self.size_gb.1);
                    let deadline = rng.gen_range(self.deadline_slots.0..=self.deadline_slots.1);
                    let id = FileId::for_tenant(tenant as u16, *seq);
                    *seq += 1;
                    requests.push(TransferRequest::new(
                        id,
                        DcId(src),
                        DcId(dst),
                        size,
                        deadline,
                        slot,
                    ));
                }
            }
        }
        Trace::from_requests(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_block_diagonal() {
        let s = TenantScenario::quad();
        let net = s.network(3);
        assert_eq!(net.num_dcs(), 12);
        for l in net.links() {
            assert_eq!(
                l.from.0 / s.dcs_per_tenant,
                l.to.0 / s.dcs_per_tenant,
                "link {:?} -> {:?} crosses tenant clusters",
                l.from,
                l.to
            );
        }
        // Every cluster is internally complete.
        let per_cluster = s.dcs_per_tenant * (s.dcs_per_tenant - 1);
        assert_eq!(net.num_links(), s.tenants * per_cluster);
    }

    #[test]
    fn trace_is_tenant_tagged_and_cluster_local() {
        let s = TenantScenario::quad();
        let t = s.trace(9);
        assert!(!t.is_empty());
        for r in t.requests() {
            let tenant = r.id.tenant() as usize;
            assert!(tenant < s.tenants);
            assert!(s.dcs_of(tenant).contains(&r.src.0), "{r:?}");
            assert!(s.dcs_of(tenant).contains(&r.dst.0), "{r:?}");
            assert_ne!(r.src, r.dst);
        }
        // All tenants release traffic.
        for tenant in 0..s.tenants {
            assert!(t.requests().iter().any(|r| r.id.tenant() as usize == tenant));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = TenantScenario::quad();
        assert_eq!(s.network(5), s.network(5));
        assert_eq!(s.trace(5), s.trace(5));
        assert_ne!(s.trace(5), s.trace(6));
    }
}
